#!/usr/bin/env python3
"""Generate and analyse a Paraver L1-miss trace.

Coyote's third output (besides statistics and execution time) is "a
trace of L1 misses [that] can be analyzed using the Paraver Visualization
Tools ... by identifying access patterns or analyzing how and when the
L2 banks, NoC, or memory are stressed".  This example writes a genuine
``.prv``/``.pcf`` pair, parses it back, and runs the analyses
programmatically.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import spmv_csr_gather_reduce
from repro.paraver import (
    bank_pressure,
    kind_breakdown,
    l2_hit_rate,
    latency_by_outcome,
    parse_prv,
    per_core_counts,
    stride_histogram,
    temporal_profile,
)

CORES = 8


def main() -> None:
    config = SimulationConfig.for_cores(CORES, trace_misses=True)
    workload = spmv_csr_gather_reduce(num_rows=128, nnz_per_row=8,
                                      num_cores=CORES)
    simulation = Simulation(config, workload.program)
    results = simulation.run()
    assert workload.verify(simulation.memory)

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "spmv_trace"
        prv_path, pcf_path = simulation.write_trace(base)
        print(f"wrote {prv_path.name} "
              f"({prv_path.stat().st_size} bytes) + {pcf_path.name}")
        records, duration, cores = parse_prv(prv_path)

    print(f"\ntrace: {len(records)} L1 misses over {duration} cycles on "
          f"{cores} cores")

    print("\nmiss kinds:")
    for kind, count in kind_breakdown(records).items():
        print(f"  {kind.name:7s} {count}")

    print("\nL2 bank pressure (misses serviced per bank):")
    for bank, count in bank_pressure(records).items():
        bar = "#" * (60 * count // max(bank_pressure(records).values()))
        print(f"  bank{bank}: {count:5d} {bar}")

    print(f"\nL2 hit rate among L1 misses: {l2_hit_rate(records):.1%}")
    print("miss latency by L2 outcome:")
    for outcome, summary in latency_by_outcome(records).items():
        print(f"  {outcome:8s} n={summary.count:5d} "
              f"min={summary.minimum:4d} mean={summary.mean:7.1f} "
              f"max={summary.maximum:4d}")

    print("\nper-core miss counts:", per_core_counts(records))

    print("\ntop line-address strides (lines, count):")
    for stride, count in stride_histogram(records):
        print(f"  stride {stride:+6d}: {count}")
    print("(a dominant +1 stride = dense sweep; scattered strides = the "
          "x-gather)")

    bins = temporal_profile(records, duration, bins=15)
    print("\nmisses completing per time bin:")
    peak = max(bins) or 1
    for index, count in enumerate(bins):
        print(f"  t{index:02d} {'#' * (50 * count // peak)} {count}")


if __name__ == "__main__":
    main()
