#!/usr/bin/env python3
"""§IV hardware/software co-design study: compression + MCPU aggregation.

The paper's §IV describes exactly this workflow: before committing an
optimisation to FPGA logic, use Coyote to ask whether it pays off.  Two
candidate optimisations for sparse workloads are evaluated here:

1. **Value compression** (after Willcock & Lumsdaine): replace the
   float64 non-zero stream with u16 dictionary codes — 4x less value
   traffic, one extra gather per strip.
2. **MCPU vector-request aggregation** (ACME §I-A): the misses of one
   vector instruction travel as a single NoC message handled at the
   memory controller.

Each is swept against memory bandwidth to find where it wins.
"""

from __future__ import annotations

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import (
    dense_vector,
    quantise_matrix,
    random_csr,
    spmv_csr_compressed,
    spmv_csr_gather_accum,
)

CORES = 8
ROWS = 96
NNZ = 8


def run(workload, **config_kwargs):
    config = SimulationConfig.for_cores(CORES, **config_kwargs)
    simulation = Simulation(config, workload.program)
    results = simulation.run()
    assert workload.verify(simulation.memory)
    mem_reads = sum(sample.value for sample in results.hierarchy_samples
                    if sample.name == "reads" and ".mc" in sample.path)
    noc = results.hierarchy_value("memhier.noc.messages")
    return results.cycles, int(mem_reads), int(noc)


def main() -> None:
    matrix = random_csr(ROWS, ROWS, NNZ, seed=51)
    x = dense_vector(ROWS, seed=52)
    quantised, _dictionary, _codes = quantise_matrix(matrix, levels=16,
                                                     seed=64)

    print("1) Value compression vs memory bandwidth")
    print(f"{'bandwidth':>10s} {'variant':>14s} {'cycles':>8s} "
          f"{'mem reads':>10s}")
    for name, cycles_per_request in (("ample", 2), ("scarce", 24)):
        base = run(spmv_csr_gather_accum(num_cores=CORES,
                                         matrix=quantised, x=x),
                   mem_cycles_per_request=cycles_per_request)
        comp = run(spmv_csr_compressed(num_cores=CORES, matrix=quantised,
                                       x=x, levels=16, seed=51),
                   mem_cycles_per_request=cycles_per_request)
        print(f"{name:>10s} {'uncompressed':>14s} {base[0]:8d} "
              f"{base[1]:10d}")
        print(f"{name:>10s} {'compressed':>14s} {comp[0]:8d} "
              f"{comp[1]:10d}")
        winner = "compressed" if comp[0] < base[0] else "uncompressed"
        print(f"{'':>10s} -> {winner} wins at {name} bandwidth")

    print()
    print("2) MCPU aggregation (long vectors, VLEN=2048)")
    print(f"{'mode':>16s} {'cycles':>8s} {'NoC msgs':>9s}")
    for aggregation in (False, True):
        cycles, _reads, noc = run(
            spmv_csr_gather_accum(num_cores=CORES, matrix=quantised,
                                  x=x),
            vlen_bits=2048, mcpu_aggregation=aggregation)
        mode = "mcpu-aggregated" if aggregation else "per-line"
        print(f"{mode:>16s} {cycles:8d} {noc:9d}")

    print()
    print("Conclusion: compression pays only when the memory interface")
    print("is the bottleneck; aggregation slashes NoC traffic for long")
    print("vectors — the first-order answers Coyote exists to provide")
    print("before any FPGA implementation effort (paper §IV).")


if __name__ == "__main__":
    main()
