#!/usr/bin/env python3
"""Chaos smoke: a sweep with poison points, run under supervision.

Long campaigns die of boring causes — one wedged point, one crash —
unless the runtime treats failure as a first-class outcome.  This
example builds a deliberately hostile sweep (one point loops forever,
one kills its worker) and runs it under a
:class:`~repro.api.SupervisorPolicy`: heartbeats every 50 ms, a 2 s
wall-clock budget per attempt, one retry with seeded backoff.  The
poison points end up *quarantined* — structured failure records with
their full attempt history — while the healthy points complete
normally, and the campaign exits cleanly.  CI runs this as the
``chaos-smoke`` job.
"""

import os
import time

from repro.api import QuarantinedPoint, RetryPolicy, Sweep, SupervisorPolicy
from repro.kernels import vector_axpy

WEDGE, CRASH = 31, 35  # poison noc.latency values (any int is legal)


def chaos_factory(settings):
    mode = settings.get("noc.latency")
    if mode == WEDGE:
        while True:
            time.sleep(0.05)
    if mode == CRASH:
        os._exit(9)
    return vector_axpy(length=32, num_cores=2)


def main() -> None:
    sweep = Sweep(base_cores=2,
                  axes={"noc.latency": [2, WEDGE, CRASH, 6]})
    policy = SupervisorPolicy(
        point_timeout_seconds=2.0,
        heartbeat_interval_seconds=0.05,
        retry=RetryPolicy(max_attempts=2, base_delay=0.05, max_delay=0.1),
        term_grace_seconds=0.5,
        seed=11)
    table = sweep.run(chaos_factory, workers=2, on_error="skip",
                      policy=policy)

    quarantined = table.quarantined()
    assert len(quarantined) == 2, [p.error_kind for p in table.points]
    for point in quarantined:
        assert isinstance(point.error, QuarantinedPoint)
        print(f"quarantined {point.settings}: "
              f"{[(r.attempt, r.outcome) for r in point.error.attempts]}")
    healthy = [point for point in table.points if not point.failed]
    assert len(healthy) == 2
    for point in healthy:
        print(f"completed   {point.settings}: "
              f"{point.results.cycles} cycles")
    aggregate = table.aggregate()
    print(f"campaign: {aggregate['succeeded']} ok, "
          f"{aggregate['quarantined']} quarantined, "
          f"{table.workers} worker(s) — terminated cleanly")


if __name__ == "__main__":
    main()
