#!/usr/bin/env python3
"""Strong-scaling study of the vector stencil kernel.

Runs the same 3-point Jacobi stencil problem on 1..16 cores and reports
simulated cycles, speedup, and where the time goes (RAW stalls vs fetch
stalls) — the kind of first-order software question Coyote answers
before any FPGA work (§IV).
"""

from __future__ import annotations

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import vector_stencil

LENGTH = 512
ITERATIONS = 2
CORE_COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    print(f"Vector stencil strong scaling: {LENGTH} points, "
          f"{ITERATIONS} sweeps")
    header = (f"{'cores':>5s} {'cycles':>9s} {'speedup':>8s} "
              f"{'instr':>8s} {'raw-stall':>10s} {'fetch-stall':>11s}")
    print(header)
    print("-" * len(header))

    baseline_cycles = None
    for cores in CORE_COUNTS:
        config = SimulationConfig.for_cores(cores)
        workload = vector_stencil(length=LENGTH, iterations=ITERATIONS,
                                  num_cores=cores)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        assert workload.verify(simulation.memory), \
            f"stencil verification failed at {cores} cores"
        if baseline_cycles is None:
            baseline_cycles = results.cycles
        speedup = baseline_cycles / results.cycles
        print(f"{cores:5d} {results.cycles:9d} {speedup:8.2f} "
              f"{results.instructions:8d} {results.raw_stall_cycles:10d} "
              f"{results.fetch_stall_cycles:11d}")

    print()
    print("Speedup saturates as the per-core strip shrinks relative to")
    print("the barrier and boundary work, and as more cores contend for")
    print("the same memory controllers.")


if __name__ == "__main__":
    main()
