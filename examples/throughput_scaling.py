#!/usr/bin/env python3
"""Figure 3 (quick version): simulation throughput vs simulated cores.

Reproduces the *shape* of the paper's Figure 3 — aggregate simulation
throughput (host MIPS) as a function of the number of simulated cores,
for scalar Matmul and scalar SpMV, with Spike-style interleaving
disabled (one instruction per core per cycle, as Coyote requires).

Absolute numbers are far below the paper's 6 MIPS because the substrate
is CPython rather than C++; the paper's *mechanism* still applies: with
interleaving off, the per-cycle orchestration overhead is fixed, so
aggregate throughput grows as more simulated cores share each cycle.
The full sweep to 128 cores lives in benchmarks/test_fig3_throughput.py.
"""

from __future__ import annotations

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import scalar_matmul, scalar_spmv

CORE_COUNTS = (1, 2, 4, 8, 16, 32)


def run_point(make_workload, cores: int) -> float:
    workload = make_workload(cores)
    config = SimulationConfig.for_cores(cores)
    simulation = Simulation(config, workload.program)
    results = simulation.run()
    assert workload.verify(simulation.memory)
    return results.host_mips


def main() -> None:
    print("Aggregate simulation throughput (host MIPS) vs simulated "
          "cores")
    print(f"{'cores':>5s} {'matmul':>10s} {'spmv':>10s}")
    for cores in CORE_COUNTS:
        matmul_mips = run_point(
            lambda n: scalar_matmul(size=16, num_cores=n), cores)
        spmv_mips = run_point(
            lambda n: scalar_spmv(num_rows=64, nnz_per_row=8,
                                  num_cores=n), cores)
        print(f"{cores:5d} {matmul_mips:10.4f} {spmv_mips:10.4f}")
    print()
    print("Expect a rising curve: each simulated cycle costs a fixed")
    print("orchestration overhead, amortised across more active cores as")
    print("the system grows — the same effect the paper traces to")
    print("disabling Spike's interleaving optimisation.")


if __name__ == "__main__":
    main()
