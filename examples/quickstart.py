#!/usr/bin/env python3
"""Quickstart: simulate a vector matmul on a 4-core tile.

Demonstrates the three-step public API: build a configuration, pick a
kernel workload, run the simulation — then inspect the outputs the paper
lists (miss rates, dependency stalls, execution time) and check the
kernel's numerical result against the numpy reference.
"""

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import vector_matmul


def main() -> None:
    # 1. Configure: 4 cores in one VAS-style tile, default memory system
    #    (shared banked L2, set-interleaved mapping, crossbar NoC).
    config = SimulationConfig.for_cores(4)

    # 2. A workload: 16x16 double-precision matmul, rows split across the
    #    4 harts, assembled from genuine RV64+RVV assembly.
    workload = vector_matmul(size=16, num_cores=4)

    # 3. Run.
    simulation = Simulation(config, workload.program)
    results = simulation.run()

    print("=== Coyote quickstart: vector matmul, 4 cores ===")
    print(results.summary())
    print()
    print(f"simulated cycles per core-instruction: "
          f"{results.cycles * results.num_cores / results.instructions:.2f}")
    print(f"L2 bank load balance: {results.bank_utilisation()}")
    print(f"result matches numpy: {workload.verify(simulation.memory)}")


if __name__ == "__main__":
    main()
