#!/usr/bin/env python3
"""The design-space sweep API in one screen.

Coyote's purpose is "the fast comparison of different designs"; the
``repro.api.sweep`` front door turns that into a declarative call: name
the kernel and the axes, read the table.  ``workers=N`` fans the points
out to a process pool — the resulting table is bit-identical to the
serial one, so parallelism is purely a wall-clock knob.
"""

from repro.api import sweep


def main() -> None:
    table = sweep(
        "spmv-csr-gather-accum", cores=16, size=64,
        axes={
            "l2_mode": ["shared", "private"],
            "mapping_policy": ["set-interleaving", "page-to-bank"],
            "noc.latency": [2, 12],
        },
        workers=2, on_error="skip")

    print(table.to_text(metrics=("cycles", "l1d_miss_rate",
                                 "raw_stall_cycles")))
    best = table.best("cycles")
    print()
    print(f"best design point: {best.settings} "
          f"({best.results.cycles} cycles)")
    aggregate = table.aggregate(("cycles",))
    print(f"campaign: {aggregate['succeeded']}/{aggregate['points']} "
          f"points succeeded across {table.workers} worker(s)")


if __name__ == "__main__":
    main()
