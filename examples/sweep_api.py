#!/usr/bin/env python3
"""The design-space sweep API in one screen.

Coyote's purpose is "the fast comparison of different designs"; the
`Sweep` helper turns that into a declarative call: name the axes, give a
workload, read the table.
"""

from repro.coyote import Sweep
from repro.kernels import spmv_csr_gather_accum


def main() -> None:
    sweep = Sweep(
        base_cores=16,
        axes={
            "l2_mode": ["shared", "private"],
            "mapping_policy": ["set-interleaving", "page-to-bank"],
            "noc_latency": [2, 12],
        })
    table = sweep.run(
        lambda: spmv_csr_gather_accum(num_rows=64, nnz_per_row=8,
                                      num_cores=16))

    print(table.format(metrics=("cycles", "l1d_miss_rate",
                                "raw_stall_cycles")))
    best = table.best("cycles")
    print()
    print(f"best design point: {best.settings} "
          f"({best.results.cycles} cycles)")


if __name__ == "__main__":
    main()
