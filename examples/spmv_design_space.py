#!/usr/bin/env python3
"""Design-space exploration with SpMV — the paper's motivating use case.

Coyote exists to compare "disparate design points within reasonable
time" (§III).  This example sweeps the two L2 design axes the paper
makes configurable — sharing mode (fully-shared vs tile-private) and
address-to-bank mapping (set-interleaving vs page-to-bank) — and crosses
them with three sparse-matrix structures (uniform random, clustered,
banded), reporting cycles and L2 bank load balance for each point.
"""

from __future__ import annotations

import numpy as np

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import (
    banded_csr,
    clustered_csr,
    dense_vector,
    random_csr,
    spmv_csr_gather_accum,
)

# 16 cores = 2 VAS tiles, so "private" (per-tile) L2 genuinely differs
# from "shared" (system-wide) L2.
CORES = 16
ROWS = 64
NNZ_PER_ROW = 8


def matrices():
    yield "uniform", random_csr(ROWS, ROWS, NNZ_PER_ROW, seed=1)
    yield "clustered", clustered_csr(ROWS, ROWS, NNZ_PER_ROW,
                                     cluster_width=16, seed=2)
    yield "banded", banded_csr(ROWS, bandwidth=4, seed=3)


def imbalance(bank_requests: dict[str, int]) -> float:
    """Max/mean ratio of per-bank request counts (1.0 = perfect)."""
    counts = list(bank_requests.values())
    if not counts or sum(counts) == 0:
        return 0.0
    return max(counts) / (sum(counts) / len(counts))


def main() -> None:
    print(f"SpMV design-space exploration: {CORES} cores, "
          f"{ROWS}x{ROWS} matrices, {NNZ_PER_ROW} nnz/row")
    header = (f"{'matrix':10s} {'l2 mode':8s} {'mapping':17s} "
              f"{'cycles':>8s} {'l1d miss':>9s} {'imbalance':>9s}")
    print(header)
    print("-" * len(header))

    for matrix_name, matrix in matrices():
        x = dense_vector(matrix.num_cols, seed=7)
        for l2_mode in ("shared", "private"):
            for mapping in ("set-interleaving", "page-to-bank"):
                config = SimulationConfig.for_cores(
                    CORES, l2_mode=l2_mode, mapping_policy=mapping)
                workload = spmv_csr_gather_accum(
                    num_cores=CORES, matrix=matrix, x=x)
                simulation = Simulation(config, workload.program)
                results = simulation.run()
                assert workload.verify(simulation.memory), \
                    f"verification failed: {matrix_name}/{l2_mode}/{mapping}"
                print(f"{matrix_name:10s} {l2_mode:8s} {mapping:17s} "
                      f"{results.cycles:8d} "
                      f"{results.l1d_miss_rate():9.2%} "
                      f"{imbalance(results.bank_utilisation()):9.2f}")

    print()
    print("Reading the table: set-interleaving spreads consecutive lines")
    print("across banks (imbalance near 1); page-to-bank keeps pages")
    print("bank-local, which punishes dense sweeps but can help when a")
    print("tile mostly touches its own pages in private mode.")


if __name__ == "__main__":
    main()
