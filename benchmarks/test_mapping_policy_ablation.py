"""Ablation: address-to-bank data mapping policies (paper §III-A).

"Two different well-known data mapping policies have been implemented
... page-to-bank and set-interleaving."  A dense unit-stride sweep shows
the policies' contrast most sharply: set-interleaving spreads consecutive
lines over every bank while page-to-bank sends 64 consecutive lines to
the same bank; sparse gathers land in between.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import (
    dense_vector,
    random_csr,
    spmv_csr_gather_reduce,
    stream_triad,
)

CORES = 8
POLICIES = ["set-interleaving", "page-to-bank"]


def imbalance(bank_requests: dict[str, int]) -> float:
    counts = list(bank_requests.values())
    total = sum(counts)
    return max(counts) / (total / len(counts)) if total else 0.0


@pytest.mark.parametrize("policy", POLICIES)
def test_mapping_dense_stream(benchmark, policy):
    config = SimulationConfig.for_cores(CORES, mapping_policy=policy)
    results = bench_coyote(
        benchmark,
        lambda: stream_triad(length=2048, num_cores=CORES),
        config, label=f"map-{policy}-triad")
    benchmark.extra_info["bank_imbalance"] = round(
        imbalance(results.bank_utilisation()), 3)
    print(f"\n[mapping][triad] {policy:17s} cycles={results.cycles} "
          f"imbalance={imbalance(results.bank_utilisation()):.2f}")


@pytest.mark.parametrize("policy", POLICIES)
def test_mapping_sparse_gather(benchmark, policy):
    matrix = random_csr(64, 64, 8, seed=31)
    x = dense_vector(64, seed=32)
    config = SimulationConfig.for_cores(CORES, mapping_policy=policy)
    results = bench_coyote(
        benchmark,
        lambda: spmv_csr_gather_reduce(num_cores=CORES, matrix=matrix,
                                       x=x),
        config, label=f"map-{policy}-spmv")
    benchmark.extra_info["bank_imbalance"] = round(
        imbalance(results.bank_utilisation()), 3)
    print(f"\n[mapping][spmv]  {policy:17s} cycles={results.cycles} "
          f"imbalance={imbalance(results.bank_utilisation()):.2f}")
