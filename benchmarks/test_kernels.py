"""The §III-A kernel suite, end-to-end under the full Coyote model.

"Four different kernels have been adapted to baremetal simulation in
Spike and can be executed using Coyote ... scalar matrix multiplication,
vector matrix multiplication, vector SpMV (three different
implementations of the algorithm) and vector stencil."

Each bench runs one kernel on an 8-core tile, verifies the numerical
output against numpy, and records simulated cycles/IPC — the per-kernel
"execution time of the simulated application" output.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import (
    dense_relu_layer,
    fft_radix2,
    histogram,
    mlp_inference,
    scalar_matmul,
    scalar_spmv,
    spmv_csr_gather_accum,
    spmv_csr_gather_reduce,
    spmv_ell,
    stream_triad,
    vector_axpy,
    vector_dot,
    vector_matmul,
    vector_stencil,
)

CORES = 8

KERNEL_FACTORIES = {
    "scalar-matmul": lambda: scalar_matmul(size=16, num_cores=CORES),
    "vector-matmul": lambda: vector_matmul(size=16, num_cores=CORES),
    "scalar-spmv": lambda: scalar_spmv(num_rows=64, nnz_per_row=8,
                                       num_cores=CORES),
    "spmv-csr-gather-reduce":
        lambda: spmv_csr_gather_reduce(num_rows=64, nnz_per_row=8,
                                       num_cores=CORES),
    "spmv-csr-gather-accum":
        lambda: spmv_csr_gather_accum(num_rows=64, nnz_per_row=8,
                                      num_cores=CORES),
    "spmv-ell": lambda: spmv_ell(num_rows=64, nnz_per_row=8,
                                 num_cores=CORES),
    "vector-stencil": lambda: vector_stencil(length=512, iterations=2,
                                             num_cores=CORES),
    "vector-axpy": lambda: vector_axpy(length=1024, num_cores=CORES),
    "stream-triad": lambda: stream_triad(length=1024, num_cores=CORES),
    "vector-dot": lambda: vector_dot(length=1024, num_cores=CORES),
    "fft-radix2": lambda: fft_radix2(length=128, num_cores=CORES),
    "nn-dense-relu": lambda: dense_relu_layer(in_dim=48, out_dim=48,
                                              num_cores=CORES),
    "mlp-inference": lambda: mlp_inference(dims=(32, 48, 32, 16),
                                           num_cores=CORES),
    "histogram": lambda: histogram(length=1024, num_bins=64,
                                   num_cores=CORES),
}


@pytest.mark.parametrize("kernel", sorted(KERNEL_FACTORIES),
                         ids=sorted(KERNEL_FACTORIES))
def test_kernel_suite(benchmark, kernel):
    config = SimulationConfig.for_cores(CORES)
    results = bench_coyote(benchmark, KERNEL_FACTORIES[kernel], config,
                           label=f"kernel-{kernel}")
    print(f"\n[kernel] {kernel:24s} cycles={results.cycles:7d} "
          f"instr={results.instructions:7d} ipc={results.ipc:.2f} "
          f"l1d_miss={results.l1d_miss_rate():.2%}")
