"""Ablation: Spike's interleaving optimisation (paper §III-A analysis).

The paper traces Figure 3's low-core-count bottleneck to *disabling*
Spike's interleaving: "Interleaving speeds up simulation in the original
Spike implementation by executing several instructions on the same core
back to back, before switching to the next core."  Coyote must run with
interleaving off (one instruction per core per cycle) to exercise the
memory hierarchy correctly.

This bench measures the raw functional ISS (no timing model) at
different interleave batch sizes, quantifying what the lockstep
requirement costs on our substrate.
"""

from __future__ import annotations

import pytest

from repro.kernels import scalar_spmv
from repro.spike import SpikeSimulator

CORES = 8
ROWS_PER_CORE = 24


@pytest.mark.parametrize("interleave", [1, 4, 16, 64, 256])
def test_iss_interleaving(benchmark, interleave):
    """Raw-ISS throughput vs interleave batch size."""
    state = {}

    def target():
        workload = scalar_spmv(num_rows=ROWS_PER_CORE * CORES,
                               nnz_per_row=8, num_cores=CORES)
        simulator = SpikeSimulator(workload.program, num_cores=CORES,
                                   interleave=interleave)
        state["instructions"] = simulator.run()
        assert workload.verify(simulator.machine.memory)

    result = benchmark.pedantic(target, rounds=1, iterations=1,
                                warmup_rounds=0)
    instructions = state["instructions"]
    seconds = benchmark.stats.stats.mean
    mips = instructions / seconds / 1e6 if seconds else 0.0
    benchmark.extra_info.update({
        "label": f"interleave-{interleave}",
        "instructions": instructions,
        "iss_mips": round(mips, 4),
    })
    print(f"\n[interleave] batch={interleave:4d} "
          f"iss_mips={mips:.4f} instructions={instructions}")
