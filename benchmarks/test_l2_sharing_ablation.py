"""Ablation: fully-shared vs tile-private L2 (paper §III-A).

"The L2 can be configured as fully-shared across the system or private
to the cores of each tile."  On a 16-core / 2-tile system, shared mode
gives each core 4 candidate banks (more capacity, more NoC sharing);
private mode confines each tile's traffic to its own 2 banks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import (
    dense_vector,
    random_csr,
    spmv_csr_gather_accum,
    stream_triad,
)

CORES = 16


@pytest.mark.parametrize("l2_mode", ["shared", "private"])
def test_l2_sharing_spmv(benchmark, l2_mode):
    """Gathering SpMV under each sharing mode."""
    matrix = random_csr(96, 96, 8, seed=21)
    x = dense_vector(96, seed=22)
    config = SimulationConfig.for_cores(CORES, l2_mode=l2_mode)
    results = bench_coyote(
        benchmark,
        lambda: spmv_csr_gather_accum(num_cores=CORES, matrix=matrix,
                                      x=x),
        config, label=f"l2-{l2_mode}-spmv")
    print(f"\n[l2-mode][spmv]  {l2_mode:7s} cycles={results.cycles} "
          f"banks={results.bank_utilisation()}")


@pytest.mark.parametrize("l2_mode", ["shared", "private"])
def test_l2_sharing_triad(benchmark, l2_mode):
    """Dense streaming under each sharing mode."""
    config = SimulationConfig.for_cores(CORES, l2_mode=l2_mode)
    results = bench_coyote(
        benchmark,
        lambda: stream_triad(length=1024, num_cores=CORES),
        config, label=f"l2-{l2_mode}-triad")
    print(f"\n[l2-mode][triad] {l2_mode:7s} cycles={results.cycles} "
          f"banks={results.bank_utilisation()}")
