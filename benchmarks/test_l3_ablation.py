"""Ablation (extension): an optional L3 between L2 and memory.

§III-A: "Deeper memory hierarchies or more heterogeneous systems can
currently be modelled".  This bench demonstrates the claim: a reuse-heavy
workload whose working set exceeds the (shrunken) L2 but fits the L3
gains from the extra level; a streaming workload with no reuse does not.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import scalar_matmul, stream_triad
from repro.spike.simulator import L1Config

CORES = 4
SMALL_L2 = 4096  # bytes per bank: force L2 capacity misses
# Shrink the L1 too, so reuse actually reaches the L2/L3 levels.
SMALL_L1 = L1Config(icache_bytes=2048, dcache_bytes=2048,
                    associativity=4)


@pytest.mark.parametrize("l3_enable", [False, True],
                         ids=["l2-only", "l2+l3"])
def test_l3_with_reuse(benchmark, l3_enable):
    """Matmul re-reads B constantly: the L3 catches L2 capacity
    misses."""
    config = SimulationConfig.for_cores(
        CORES, l2_bank_bytes=SMALL_L2, l3_enable=l3_enable,
        l1=SMALL_L1)
    results = bench_coyote(
        benchmark,
        lambda: scalar_matmul(size=32, num_cores=CORES),
        config, label=f"l3-{l3_enable}-matmul")
    reads = sum(sample.value for sample in results.hierarchy_samples
                if sample.name == "reads" and ".mc" in sample.path)
    print(f"\n[l3][matmul] l3={l3_enable!s:5s} cycles={results.cycles:7d} "
          f"dram_reads={int(reads)}")


@pytest.mark.parametrize("l3_enable", [False, True],
                         ids=["l2-only", "l2+l3"])
def test_l3_without_reuse(benchmark, l3_enable):
    """Streaming has no reuse: the L3 can only add latency."""
    config = SimulationConfig.for_cores(
        CORES, l2_bank_bytes=SMALL_L2, l3_enable=l3_enable,
        l1=SMALL_L1)
    results = bench_coyote(
        benchmark,
        lambda: stream_triad(length=2048, num_cores=CORES),
        config, label=f"l3-{l3_enable}-triad")
    print(f"\n[l3][triad]  l3={l3_enable!s:5s} "
          f"cycles={results.cycles:7d}")
