"""Ablation (extension): bank port throughput x bank count.

§IV lists "bank composition" among the memory-architecture knobs to
explore.  With idealised banks (the paper's default) the bank count only
affects mapping; with a single port per bank (one request accepted every
N cycles), splitting the L2 into more banks buys real aggregate
throughput — the trade-off this sweep quantifies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import stream_triad

CORES = 8


@pytest.mark.parametrize("ports", [0, 4],
                         ids=["ideal-bank", "1req-per-4cyc"])
@pytest.mark.parametrize("banks", [1, 2, 8])
def test_bank_composition(benchmark, banks, ports):
    config = SimulationConfig.for_cores(
        CORES, banks_per_tile=banks, l2_cycles_per_request=ports)
    results = bench_coyote(
        benchmark,
        lambda: stream_triad(length=2048, num_cores=CORES),
        config, label=f"banks{banks}-ports{ports}")
    conflicts = sum(
        sample.value for sample in results.hierarchy_samples
        if sample.name == "port_conflict_cycles")
    print(f"\n[banks] count={banks} port={'ideal' if not ports else ports} "
          f"cycles={results.cycles:6d} conflict_cycles={int(conflicts)}")
