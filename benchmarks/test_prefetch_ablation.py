"""Ablation (extension): memory-controller stream prefetching.

Prefetching is one of the "different data management policies such as
prefetching, streaming, etc." the paper lists as next steps.  Our
memory controller implements a simple sequential stream prefetcher;
a dense sweep should benefit, while random gathers should not.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import (
    dense_vector,
    random_csr,
    spmv_csr_gather_reduce,
    stream_triad,
)

CORES = 8


@pytest.mark.parametrize("depth", [0, 2, 4])
def test_prefetch_dense_stream(benchmark, depth):
    config = SimulationConfig.for_cores(CORES, prefetch_depth=depth)
    results = bench_coyote(
        benchmark,
        lambda: stream_triad(length=2048, num_cores=CORES),
        config, label=f"prefetch-{depth}-triad")
    print(f"\n[prefetch][triad] depth={depth} cycles={results.cycles}")


@pytest.mark.parametrize("depth", [0, 4])
def test_prefetch_sparse_gather(benchmark, depth):
    matrix = random_csr(64, 64, 8, seed=41)
    x = dense_vector(64, seed=42)
    config = SimulationConfig.for_cores(CORES, prefetch_depth=depth)
    results = bench_coyote(
        benchmark,
        lambda: spmv_csr_gather_reduce(num_cores=CORES, matrix=matrix,
                                       x=x),
        config, label=f"prefetch-{depth}-spmv")
    print(f"\n[prefetch][spmv]  depth={depth} cycles={results.cycles}")
