"""Ablation (extension): MCPU-style vector request aggregation.

ACME's MCPUs (paper §I-A) "operate on vectors, both dense (unit stride)
and sparse with the help of vector index registers for scatter/gather
operations" — the memory controller sees one vector-level request
instead of per-line traffic.  With aggregation on, the misses of one
vector instruction travel as a single NoC message handled at the
controller; with it off (the paper's base Coyote model), each line is a
separate L2 request.

Long vectors (VLEN = 2048 -> 32 doubles, 4+ lines per unit-stride load,
up to 32 lines per gather) make the difference visible.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import (
    dense_vector,
    random_csr,
    spmv_csr_gather_accum,
    stream_triad,
)

CORES = 8
VLEN = 2048


@pytest.mark.parametrize("aggregation", [False, True],
                         ids=["per-line", "mcpu-aggregated"])
def test_aggregation_dense_stream(benchmark, aggregation):
    config = SimulationConfig.for_cores(CORES, vlen_bits=VLEN,
                                        mcpu_aggregation=aggregation)
    results = bench_coyote(
        benchmark,
        lambda: stream_triad(length=4096, num_cores=CORES),
        config, label=f"mcpu-{aggregation}-triad")
    noc = int(results.hierarchy_value("memhier.noc.messages"))
    print(f"\n[mcpu][triad] aggregated={aggregation!s:5s} "
          f"cycles={results.cycles:6d} noc_messages={noc}")


@pytest.mark.parametrize("aggregation", [False, True],
                         ids=["per-line", "mcpu-aggregated"])
def test_aggregation_sparse_gather(benchmark, aggregation):
    matrix = random_csr(128, 128, 24, seed=61)
    x = dense_vector(128, seed=62)
    config = SimulationConfig.for_cores(CORES, vlen_bits=VLEN,
                                        mcpu_aggregation=aggregation)
    results = bench_coyote(
        benchmark,
        lambda: spmv_csr_gather_accum(num_cores=CORES, matrix=matrix,
                                      x=x),
        config, label=f"mcpu-{aggregation}-spmv")
    noc = int(results.hierarchy_value("memhier.noc.messages"))
    print(f"\n[mcpu][spmv]  aggregated={aggregation!s:5s} "
          f"cycles={results.cycles:6d} noc_messages={noc}")
