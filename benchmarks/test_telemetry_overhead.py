"""Telemetry overhead — enabled vs disabled on the Figure 3 workload.

The observability subsystem promises near-zero cost when off: the
orchestrator hoists every hook into loop locals that stay ``None``, so
the disabled run pays a handful of local ``is None`` tests per cycle.
This bench runs the same fig3-style scalar-matmul throughput workload
twice — once with the default (disabled) ``TelemetryConfig`` and once
with the sampler + histograms + host profiler on — so the pair can be
compared in one benchmark report.

Run just this pair with::

    pytest benchmarks/test_telemetry_overhead.py --benchmark-only -q
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig, TelemetryConfig
from repro.kernels import scalar_matmul

CORES = 8
MATMUL_SIZE = 24
SAMPLE_INTERVAL = 1000

TELEMETRY_MODES = {
    "disabled": TelemetryConfig(),
    "enabled": TelemetryConfig(sample_interval=SAMPLE_INTERVAL,
                               histograms=True, host_profile=True),
}


@pytest.mark.parametrize("mode", sorted(TELEMETRY_MODES))
def test_telemetry_overhead(benchmark, mode):
    """Same workload, telemetry off vs on; compare the two rows."""
    telemetry = TELEMETRY_MODES[mode]
    config = SimulationConfig.for_cores(CORES, telemetry=telemetry)
    results = bench_coyote(
        benchmark,
        lambda: scalar_matmul(size=MATMUL_SIZE, num_cores=CORES),
        config, label=f"telemetry-{mode}")
    benchmark.extra_info["telemetry"] = mode

    # Telemetry must never perturb the simulated outcome, only host time.
    assert results.cycles > 0
    if telemetry.enabled:
        assert results.timeseries is not None
        assert results.timeseries.total_delta("cores.instructions") > 0
        assert results.latency is not None
        assert results.host_profile is not None
    else:
        assert results.timeseries is None
        assert results.latency is None
        assert results.host_profile is None
    print(f"\n[telemetry][{mode}] cores={CORES} "
          f"host_mips={results.host_mips:.4f} cycles={results.cycles}")


def test_telemetry_does_not_change_simulation():
    """Cycle counts and counters are bit-identical with telemetry on."""
    from benchmarks.conftest import run_coyote

    def run(telemetry):
        config = SimulationConfig.for_cores(4, telemetry=telemetry)
        return run_coyote(scalar_matmul(size=12, num_cores=4), config)

    plain = run(TelemetryConfig())
    instrumented = run(TelemetryConfig(sample_interval=256,
                                       histograms=True, host_profile=True))
    assert instrumented.cycles == plain.cycles
    assert instrumented.instructions == plain.instructions
    assert {s.full_name: s.value for s in instrumented.hierarchy_samples} \
        == {s.full_name: s.value for s in plain.hierarchy_samples}
