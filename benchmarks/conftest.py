"""Shared helpers for the benchmark harness.

Each benchmark times a full simulation run on the host (that is what
pytest-benchmark measures) and attaches the *simulated* metrics — cycles,
instructions, aggregate host MIPS — as ``extra_info`` so the paper's
tables and figures can be read straight out of the benchmark report.
"""

from __future__ import annotations

import pytest

from repro.coyote import Simulation, SimulationConfig


def run_coyote(workload, config: SimulationConfig):
    """Run one workload under the full Coyote model, verifying output."""
    simulation = Simulation(config, workload.program)
    results = simulation.run()
    assert results.succeeded(), f"{workload.name}: non-zero exit"
    assert workload.verify(simulation.memory), \
        f"{workload.name}: output mismatch"
    return results


def bench_coyote(benchmark, make_workload, config: SimulationConfig,
                 label: str = ""):
    """Benchmark a Coyote run; returns the last run's results.

    The workload is rebuilt per round because a Simulation is single-use.
    """
    state = {}

    def target():
        workload = make_workload()
        state["results"] = run_coyote(workload, config)

    benchmark.pedantic(target, rounds=1, iterations=1, warmup_rounds=0)
    results = state["results"]
    benchmark.extra_info.update({
        "label": label,
        "sim_cycles": results.cycles,
        "sim_instructions": results.instructions,
        "host_mips": round(results.host_mips, 4),
        "ipc": round(results.ipc, 3),
        "l1d_miss_rate": round(results.l1d_miss_rate(), 4),
        "raw_stall_cycles": results.raw_stall_cycles,
    })
    return results
