"""Ablation: maximum in-flight L2 misses per bank (paper §III-A).

"the maximum number of in-flight misses" is one of the L2's input
parameters.  A tiny MSHR file serialises misses behind the bank
(back-pressure); growing it exposes memory-level parallelism until the
memory channels saturate.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import stream_triad

CORES = 8


@pytest.mark.parametrize("max_in_flight", [1, 2, 4, 8, 32])
def test_mshr_sweep(benchmark, max_in_flight):
    config = SimulationConfig.for_cores(
        CORES, l2_max_in_flight=max_in_flight)
    results = bench_coyote(
        benchmark,
        lambda: stream_triad(length=2048, num_cores=CORES),
        config, label=f"mshr-{max_in_flight}")
    stalls = results.hierarchy_value(
        "memhier.tile0.bank0.mshr_stalls")
    print(f"\n[mshr] max_in_flight={max_in_flight:3d} "
          f"cycles={results.cycles} bank0_mshr_stalls={int(stalls)}")
