"""Ablation: NoC model and latency (paper §III-A + future work).

The paper models the NoC as "a highly idealized crossbar, that uses
fixed, configurable latencies" and calls more realistic NoC modelling
work in progress.  This bench sweeps the crossbar latency and also runs
the mesh extension (XY routing, per-hop latency) for comparison.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import spmv_csr_gather_accum

CORES = 8
ROWS = 64


@pytest.mark.parametrize("latency", [2, 6, 12, 24])
def test_crossbar_latency_sweep(benchmark, latency):
    config = SimulationConfig.for_cores(
        CORES, **{"noc.kind": "crossbar", "noc.latency": latency})
    results = bench_coyote(
        benchmark,
        lambda: spmv_csr_gather_accum(num_rows=ROWS, nnz_per_row=8,
                                      num_cores=CORES),
        config, label=f"noc-crossbar-{latency}")
    print(f"\n[noc] crossbar latency={latency:2d} "
          f"cycles={results.cycles}")


def test_mesh_extension(benchmark):
    config = SimulationConfig.for_cores(
        CORES, **{"noc.kind": "mesh", "noc.columns": 4})
    results = bench_coyote(
        benchmark,
        lambda: spmv_csr_gather_accum(num_rows=ROWS, nnz_per_row=8,
                                      num_cores=CORES),
        config, label="noc-mesh")
    print(f"\n[noc] mesh (XY routing)    cycles={results.cycles}")
