"""Figure 3 — aggregate simulation throughput vs simulated cores.

The paper plots MIPS (host-side simulation throughput) for scalar Matmul
and scalar SpMV on 1..128 simulated cores, with Spike's interleaving
disabled — reaching ~1.5 MIPS at 1 core and ~6 MIPS at 128.

This bench regenerates the same series on our substrate.  The SpMV sweep
is weak-scaled (constant rows per core) so all cores stay busy across
the axis, matching the intent of an aggregate-throughput figure; the
Matmul sweep keeps the paper-style fixed problem (rows split across
cores; core counts beyond the row count leave the extras idle after
boot).  Absolute MIPS is ~3 orders of magnitude below the paper's C++
substrate; see EXPERIMENTS.md for the shape discussion.

Run just this figure with::

    pytest benchmarks/test_fig3_throughput.py --benchmark-only -q
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import scalar_matmul, scalar_spmv

CORE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)

MATMUL_SIZE = 24          # fixed problem, split across cores (paper style)
SPMV_ROWS_PER_CORE = 12   # weak scaling: constant per-core work
SPMV_NNZ = 8


@pytest.mark.parametrize("cores", CORE_COUNTS)
def test_fig3_matmul(benchmark, cores):
    """Figure 3 series 'Matmul': scalar matrix multiplication."""
    config = SimulationConfig.for_cores(cores)
    results = bench_coyote(
        benchmark,
        lambda: scalar_matmul(size=MATMUL_SIZE, num_cores=cores),
        config, label=f"fig3-matmul-{cores}c")
    print(f"\n[fig3][matmul] cores={cores:3d} "
          f"host_mips={results.host_mips:.4f} "
          f"instructions={results.instructions} cycles={results.cycles}")


@pytest.mark.parametrize("cores", CORE_COUNTS)
def test_fig3_spmv(benchmark, cores):
    """Figure 3 series 'SpMV': scalar CSR sparse matrix-vector."""
    config = SimulationConfig.for_cores(cores)
    rows = SPMV_ROWS_PER_CORE * cores
    results = bench_coyote(
        benchmark,
        lambda: scalar_spmv(num_rows=rows, nnz_per_row=SPMV_NNZ,
                            num_cores=cores),
        config, label=f"fig3-spmv-{cores}c")
    print(f"\n[fig3][spmv]   cores={cores:3d} "
          f"host_mips={results.host_mips:.4f} "
          f"instructions={results.instructions} cycles={results.cycles}")
