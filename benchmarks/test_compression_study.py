"""§IV co-design study: value compression for SpMV.

Reproduces the experiment §IV describes as Coyote's purpose: evaluate a
memory-interface optimisation (dictionary compression of non-zero
values, after Willcock & Lumsdaine / Grigoras et al.) before committing
it to FPGA logic.  The compressed kernel moves a u16 code stream plus a
small dictionary instead of the float64 value stream — 4x less value
traffic — at the cost of an extra gather per strip.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_coyote
from repro.coyote import SimulationConfig
from repro.kernels import (
    dense_vector,
    quantise_matrix,
    random_csr,
    spmv_csr_compressed,
    spmv_csr_gather_accum,
)

CORES = 8
ROWS = 96
NNZ = 8


def _shared_inputs():
    matrix = random_csr(ROWS, ROWS, NNZ, seed=51)
    x = dense_vector(ROWS, seed=52)
    # Quantise once so both kernels compute the same answer.
    quantised, _dictionary, _codes = quantise_matrix(matrix, levels=16,
                                                     seed=64)
    return quantised, x


@pytest.mark.parametrize("bandwidth", ["ample", "scarce"])
@pytest.mark.parametrize("variant", ["uncompressed", "compressed"])
def test_spmv_value_compression(benchmark, variant, bandwidth):
    quantised, x = _shared_inputs()
    # "scarce" models a bandwidth-starved memory interface (the regime
    # §IV targets): one line transfer every 24 cycles per controller.
    cycles_per_request = 2 if bandwidth == "ample" else 24
    config = SimulationConfig.for_cores(
        CORES, mem_cycles_per_request=cycles_per_request)
    if variant == "uncompressed":
        def make():
            return spmv_csr_gather_accum(num_cores=CORES,
                                         matrix=quantised, x=x)
    else:
        def make():
            return spmv_csr_compressed(num_cores=CORES, matrix=quantised,
                                       x=x, levels=16, seed=51)
    results = bench_coyote(benchmark, make, config,
                           label=f"compression-{variant}-{bandwidth}")
    mem_reads = sum(
        sample.value for sample in results.hierarchy_samples
        if sample.name == "reads" and ".mc" in sample.path)
    benchmark.extra_info["memory_line_reads"] = int(mem_reads)
    print(f"\n[compression] {bandwidth:6s} bw {variant:13s} "
          f"cycles={results.cycles:6d} "
          f"memory_line_reads={int(mem_reads)} "
          f"l1d_miss={results.l1d_miss_rate():.2%}")
