"""NoC saturation curves and crossbar fast-path overhead.

Two measurements, recorded into ``BENCH_noc.json`` at the repo root:

* **Saturation curves** — for each topology (crossbar, mesh-xy,
  mesh-adaptive, torus-xy, torus-adaptive), a standalone network of 16
  routers is driven with uniform-random (seeded, reproducible) traffic
  at increasing offered load; the curve records mean end-to-end latency
  and queueing per message at each injection rate.  The crossbar stays
  flat (it is contention-free by construction); mesh/torus bend upward
  as links saturate, with the torus and the adaptive policy saturating
  later — the qualitative shape real interconnects show.

* **Crossbar host overhead** — the redesign's only change on the
  default crossbar path is the physical-link port accounting.  The
  same full simulation is timed against an in-benchmark replica of the
  pre-redesign ``route()`` (pair-keyed, single increment) and the
  relative overhead recorded; the acceptance bar is < 2%.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.noc_contention
    PYTHONPATH=src python -m benchmarks.perf.noc_contention --quick
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.memhier.noc import CrossbarNoC, MeshNoC, NocConfig, make_noc
from repro.sparta.scheduler import Scheduler
from repro.sparta.unit import Unit

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_noc.json"

TOPOLOGIES = {
    "crossbar": NocConfig(),
    "mesh-xy": NocConfig(kind="mesh", routing="xy"),
    "mesh-adaptive": NocConfig(kind="mesh", routing="adaptive"),
    "torus-xy": NocConfig(kind="torus", routing="xy"),
    "torus-adaptive": NocConfig(kind="torus", routing="adaptive"),
}
ROUTERS = 16  # 4x4 grid (the crossbar just gets 16 endpoints)


def _drain(payload):
    """Delivery sink for synthetic traffic."""


def measure_point(config: NocConfig, rate: int, cycles: int,
                  seed: int = 1234) -> dict:
    """Drive one network at ``rate`` messages/cycle for ``cycles``.

    Sources and destinations are uniform-random under a dedicated,
    seeded PRNG, so every topology sees the same offered traffic and
    repeat runs are bit-identical.
    """
    scheduler = Scheduler()
    root = Unit("top", scheduler=scheduler)
    noc = make_noc(config, "noc", root)
    endpoints = [f"e{i}" for i in range(ROUTERS)]
    for name in endpoints:
        noc.attach(name, _drain)
    rng = random.Random(seed)
    latencies: list[int] = []
    noc.latency_observer = latencies.append

    for cycle in range(cycles):
        scheduler.advance_to(cycle + 1)
        for _ in range(rate):
            source, destination = rng.sample(endpoints, 2)
            noc.route(source, destination, None)
    scheduler.run_until_idle()

    sent = rate * cycles
    assert len(latencies) == sent, "traffic lost in the network"
    point = {
        "offered_rate": rate,
        "messages": sent,
        "mean_latency": round(sum(latencies) / sent, 3),
        "max_latency": max(latencies),
    }
    if isinstance(noc, MeshNoC):
        point["queue_cycles_per_message"] = round(
            noc.stats._counters["queue_cycles"].value / sent, 3)
    return point


def saturation_curves(rates: list[int], cycles: int) -> dict:
    curves: dict[str, list[dict]] = {}
    for label, config in TOPOLOGIES.items():
        curve = []
        for rate in rates:
            point = measure_point(config, rate, cycles)
            curve.append(point)
            queue = point.get("queue_cycles_per_message", 0.0)
            print(f"  {label:<15s} rate={rate:<3d} "
                  f"mean latency {point['mean_latency']:7.2f}  "
                  f"queue/message {queue:6.2f}")
        curves[label] = curve
    return curves


# -- crossbar fast-path overhead ------------------------------------------


def _legacy_route(self, source, destination, payload):
    """The pre-redesign ``CrossbarNoC.route``: link accounting keyed by
    ``(source, destination)`` pair, one increment per message."""
    endpoints = self._endpoints
    handler = endpoints.get(destination)
    if handler is None:
        raise Exception(f"unknown NoC endpoint {destination!r}")
    if source not in endpoints:
        raise Exception(f"unknown NoC endpoint {source!r}")
    self._messages.value += 1
    link = (source, destination)
    self._link_counts[link] = self._link_counts.get(link, 0) + 1
    latency = self.route_latency(source, destination)
    observer = self.latency_observer
    hook = self.fault_hook
    if hook is None:
        if observer is not None:
            observer(latency)
        self.scheduler.schedule(handler, latency, (payload,))
        return
    for delay, item in hook(source, destination, payload, latency):
        if observer is not None:
            observer(delay)
        self.scheduler.schedule(handler, delay, (item,))


def _time_crossbar_run(kernel: str, cores: int, size: int) -> float:
    workload = make_workload(kernel, cores=cores, size=size)
    config = SimulationConfig.for_cores(workload.num_cores)
    simulation = Simulation(config, workload.program)
    started = time.perf_counter()
    simulation.run()
    return time.perf_counter() - started


def crossbar_overhead(kernel: str, cores: int, size: int,
                      repeats: int) -> dict:
    """Best-of-N wall time of the default crossbar run, current vs the
    pre-redesign route(); returns the relative overhead."""
    current_route = CrossbarNoC.route
    current = []
    legacy = []
    for _ in range(repeats):
        current.append(_time_crossbar_run(kernel, cores, size))
        CrossbarNoC.route = _legacy_route
        try:
            legacy.append(_time_crossbar_run(kernel, cores, size))
        finally:
            CrossbarNoC.route = current_route
    best_current, best_legacy = min(current), min(legacy)
    overhead = (best_current - best_legacy) / best_legacy
    return {
        "kernel": f"{kernel} size={size} cores={cores}",
        "repeats": repeats,
        "wall_seconds_current": round(best_current, 6),
        "wall_seconds_legacy_route": round(best_legacy, 6),
        "overhead_vs_legacy": round(overhead, 4),
        "within_2_percent": overhead < 0.02,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="NoC saturation curves + crossbar overhead check.")
    parser.add_argument("--rates", default="1,2,4,8,16",
                        help="comma-separated injection rates "
                             "(messages/cycle)")
    parser.add_argument("--cycles", type=int, default=2000,
                        help="injection window length per point")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats for the overhead check")
    parser.add_argument("--quick", action="store_true",
                        help="small CI-friendly settings")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="don't append to BENCH_noc.json")
    args = parser.parse_args(argv)

    rates = sorted({int(token) for token in args.rates.split(",")})
    cycles = 300 if args.quick else args.cycles
    repeats = 2 if args.quick else args.repeats

    print(f"saturation: {ROUTERS} routers, rates {rates}, "
          f"{cycles} cycles per point")
    curves = saturation_curves(rates, cycles)

    # Sanity: the model must actually bend under load.
    crossbar_flat = (curves["crossbar"][0]["mean_latency"]
                     == curves["crossbar"][-1]["mean_latency"])
    mesh_bends = (curves["mesh-xy"][-1]["mean_latency"]
                  > curves["mesh-xy"][0]["mean_latency"])
    if not crossbar_flat or not mesh_bends:
        print("FAIL: saturation curves have the wrong shape",
              file=sys.stderr)
        return 1

    print("crossbar fast-path overhead (current vs pre-redesign route):")
    overhead = crossbar_overhead("scalar-matmul", cores=4,
                                 size=6 if args.quick else 16,
                                 repeats=repeats)
    print(f"  current {overhead['wall_seconds_current']:.3f}s  "
          f"legacy {overhead['wall_seconds_legacy_route']:.3f}s  "
          f"overhead {overhead['overhead_vs_legacy']:+.2%}")

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "routers": ROUTERS,
        "cycles_per_point": cycles,
        "saturation": curves,
        "crossbar_flat": crossbar_flat,
        "host_overhead": overhead,
    }
    if not args.no_trajectory:
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(entry)
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2)
                                   + "\n")
        print(f"trajectory appended to {TRAJECTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
