"""Hot-loop performance harness.

Runs a small set of representative workloads — a multi-core scalar
matmul (loop-overhead bound) and high-memory-latency SpMV / vector
matmul configurations (fast-forward bound) — and records host
cycles/second and wall time via the existing host profiler.  Each
workload is additionally timed with the trace-compiled fast path
disabled (``translate=False``), digest-checked against the translated
run, and reported as ``translate_speedup``.  Every run appends one
trajectory entry to ``BENCH_hotloop.json`` at the repo root, so the
hot loop's host performance over the project's history stays
inspectable.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.hotloop
    PYTHONPATH=src python -m benchmarks.perf.hotloop --compare-reference
    PYTHONPATH=src python -m benchmarks.perf.hotloop --quick \
        --check benchmarks/perf/baseline.json --tolerance 0.30
    PYTHONPATH=src python -m benchmarks.perf.hotloop --update-baseline

``--compare-reference`` additionally times the straight-line reference
loop (``Orchestrator.use_reference_loop``) and verifies both loops
produce identical results before reporting the speedup.

``--check`` compares measured cycles/second against a committed
baseline and exits non-zero when any workload regresses by more than
``--tolerance`` (a fraction; default 0.30).  The committed baseline is
deliberately conservative — about a third of a warm development-machine
run — so the CI gate catches order-of-magnitude regressions (an
accidentally quadratic loop, a lost fast-forward) rather than host
jitter.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import scalar_matmul, scalar_spmv, vector_matmul
from repro.telemetry.config import TelemetryConfig

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_hotloop.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _telemetry(profile: bool, guest: bool = False) -> TelemetryConfig:
    return TelemetryConfig(host_profile=profile, guest_profile=guest)


WORKLOADS = {
    # Loop-overhead bound: eight cores live most cycles.  Size 48 keeps
    # the per-core working set inside L1D while running long enough
    # (~690k instructions) for the translated fast path to dominate the
    # measurement instead of warm-up.
    "matmul-8core": (
        lambda: scalar_matmul(size=48, num_cores=8),
        lambda profile=False, guest=False, **kw: SimulationConfig.for_cores(
            8, telemetry=_telemetry(profile, guest), **kw),
    ),
    # Fast-forward bound: long all-stalled gaps between events.
    "spmv-1core-himem": (
        lambda: scalar_spmv(num_rows=24, num_cores=1),
        lambda profile=False, guest=False, **kw: SimulationConfig.for_cores(
            1, mem_latency=3000, telemetry=_telemetry(profile, guest), **kw),
    ),
    "spmv-2core-himem": (
        lambda: scalar_spmv(num_rows=24, num_cores=2),
        lambda profile=False, guest=False, **kw: SimulationConfig.for_cores(
            2, mem_latency=3000, telemetry=_telemetry(profile, guest), **kw),
    ),
    "vmatmul-1core-himem": (
        lambda: vector_matmul(size=12, num_cores=1),
        lambda profile=False, guest=False, **kw: SimulationConfig.for_cores(
            1, mem_latency=2000, telemetry=_telemetry(profile, guest), **kw),
    ),
}

QUICK_WORKLOADS = ("matmul-8core", "spmv-1core-himem")


def _results_digest(results) -> str:
    """Hash of the simulated outcome, excluding host-side timing."""
    data = results.to_dict()
    for key in ("wall_seconds", "host_mips", "host_profile",
                "guest_profile"):
        data.pop(key, None)
    payload = json.dumps(data, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def _timed_run(name: str, make_workload, config, reference: bool):
    """One timed simulation; returns ``(wall_seconds, results)``."""
    simulation = Simulation(config, make_workload().program)
    simulation.orchestrator.use_reference_loop = reference
    # Collect before starting the clock so this measurement is not
    # charged for garbage the previous (interleaved) series left
    # behind; GC stays enabled inside the timed region.
    gc.collect()
    start = time.perf_counter()
    results = simulation.run()
    wall = time.perf_counter() - start
    if not results.succeeded():
        raise SystemExit(f"{name}: non-zero exit")
    return wall, results


def run_workload(name: str, reps: int, reference: bool = False) -> dict:
    """Best-of-``reps`` timing of one workload; returns its record.

    Timing repetitions run with telemetry disabled so the measurement
    is of the bare hot loop; one extra run with the host profiler
    enabled captures the Spike/Sparta wall-time breakdown.  Each rep
    interleaves the translated, interpreter and guest-profiled series
    (rather than running each series back to back) so host frequency
    drift hits all three alike and the best-of ratios stay honest.
    All series must produce bit-identical simulated outcomes; any
    divergence aborts the harness.
    """
    make_workload, make_config = WORKLOADS[name]
    best = None
    interp_wall = None
    guest_wall = None
    for _ in range(reps):
        wall, results = _timed_run(name, make_workload, make_config(),
                                   reference)
        if best is None or wall < best["wall_seconds"]:
            best = {
                "wall_seconds": round(wall, 6),
                "timing_reps": reps,
                "cycles": results.cycles,
                "instructions": results.instructions,
                "cycles_per_sec": round(results.cycles / wall, 1),
                "host_mips": round(results.host_mips, 4),
                "digest": _results_digest(results),
            }
        if not reference:
            wall, results = _timed_run(
                name, make_workload, make_config(translate=False),
                reference)
            if _results_digest(results) != best["digest"]:
                raise SystemExit(
                    f"{name}: interpreter run diverged from translated")
            if interp_wall is None or wall < interp_wall:
                interp_wall = wall
        # Guest-profiling overhead: digest-checked against the
        # unprofiled run (profiling must observe, never steer).
        wall, results = _timed_run(name, make_workload,
                                   make_config(guest=True), reference)
        if _results_digest(results) != best["digest"]:
            raise SystemExit(
                f"{name}: guest-profiled run diverged from unprofiled")
        if guest_wall is None or wall < guest_wall:
            guest_wall = wall

    profiled = Simulation(make_config(profile=True),
                          make_workload().program)
    profiled.orchestrator.use_reference_loop = reference
    profile = profiled.run().host_profile or {}
    best["spike_seconds"] = round(profile.get("spike_seconds", 0.0), 6)
    best["sparta_seconds"] = round(profile.get("sparta_seconds", 0.0), 6)

    if interp_wall is not None:
        best["interpreter_wall_seconds"] = round(interp_wall, 6)
        best["interpreter_host_mips"] = round(
            best["instructions"] / interp_wall / 1e6, 4)
        best["translate_speedup"] = round(
            interp_wall / best["wall_seconds"], 3)
    best["profiled_wall_seconds"] = round(guest_wall, 6)
    best["profiled_overhead_pct"] = round(
        (guest_wall - best["wall_seconds"])
        / best["wall_seconds"] * 100, 1)
    return best


def run_suite(names, reps: int, compare_reference: bool) -> dict:
    records = {}
    for name in names:
        record = run_workload(name, reps)
        if compare_reference:
            reference = run_workload(name, reps, reference=True)
            if reference["digest"] != record["digest"]:
                raise SystemExit(
                    f"{name}: reference and optimised loops diverged")
            record["reference_wall_seconds"] = reference["wall_seconds"]
            record["speedup_vs_reference"] = round(
                reference["wall_seconds"] / record["wall_seconds"], 3)
        records[name] = record
        line = (f"{name}: {record['cycles']} cycles in "
                f"{record['wall_seconds']:.3f}s "
                f"({record['cycles_per_sec']:,.0f} cycles/s, "
                f"{record['host_mips']:.3f} MIPS, "
                f"translate {record['translate_speedup']:.2f}x, "
                f"profiled {record['profiled_overhead_pct']:+.1f}%)")
        if compare_reference:
            line += f"  speedup vs reference: " \
                    f"{record['speedup_vs_reference']:.2f}x"
        print(line)
    return records


def append_trajectory(records: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        history = json.loads(TRAJECTORY_PATH.read_text())
    history.append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host_cpus": os.cpu_count(),
        "workloads": records,
    })
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended trajectory entry -> {TRAJECTORY_PATH}")


def check_baseline(records: dict, baseline_path: Path,
                   tolerance: float) -> bool:
    baseline = json.loads(baseline_path.read_text())["workloads"]
    ok = True
    for name, record in records.items():
        reference = baseline.get(name)
        if reference is None:
            continue
        floor = reference["cycles_per_sec"] * (1.0 - tolerance)
        measured = record["cycles_per_sec"]
        verdict = "ok" if measured >= floor else "REGRESSED"
        print(f"check {name}: {measured:,.0f} cycles/s vs baseline "
              f"{reference['cycles_per_sec']:,.0f} "
              f"(floor {floor:,.0f}) -> {verdict}")
        if measured < floor:
            ok = False
    return ok


def update_baseline(records: dict, baseline_path: Path,
                    derate: float) -> None:
    baseline = {
        "note": (f"cycles/sec derated to {derate:.0%} of a measured "
                 f"best-of run; the CI gate fails below "
                 f"(1 - tolerance) of these values"),
        "workloads": {
            name: {"cycles_per_sec":
                   round(record["cycles_per_sec"] * derate, 1)}
            for name, record in records.items()
        },
    }
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline written -> {baseline_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per workload (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="run the two-workload CI subset")
    parser.add_argument("--compare-reference", action="store_true",
                        help="also time the reference loop and verify "
                             "identical results")
    parser.add_argument("--check", type=Path, metavar="BASELINE",
                        help="fail when cycles/sec regresses past the "
                             "tolerance vs this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression for --check")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline from this "
                             "run (derated)")
    parser.add_argument("--baseline-path", type=Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--no-trajectory", action="store_true",
                        help="do not append to BENCH_hotloop.json")
    args = parser.parse_args(argv)

    names = QUICK_WORKLOADS if args.quick else tuple(WORKLOADS)
    records = run_suite(names, args.reps, args.compare_reference)

    if not args.no_trajectory:
        append_trajectory(records)
    if args.update_baseline:
        update_baseline(records, args.baseline_path, derate=1 / 3)
    if args.check is not None:
        if not check_baseline(records, args.check, args.tolerance):
            print("performance regression detected", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
