"""Host-performance benchmarks for the simulation hot loop.

Unlike the ``benchmarks/test_*`` suite (which reproduces the paper's
*simulated* figures), this package measures the *host* cost of
simulation: cycles/second and wall time of the orchestrator's hot loop,
with an optional differential run against the straight-line reference
loop.  See ``benchmarks/perf/hotloop.py``.
"""
