"""Parallel-sweep scaling harness.

Times one design-space campaign (a 2-axis, >= 8-point sweep of a
multi-core scalar matmul) at several worker counts and records the
wall-clock speedup of each against the ``workers=1`` reference into
``BENCH_sweep.json`` at the repo root.  Every timed run also checks the
differential guarantee: the fanned-out table's canonical dict must be
byte-identical to the serial one.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.sweep_scaling
    PYTHONPATH=src python -m benchmarks.perf.sweep_scaling --quick
    PYTHONPATH=src python -m benchmarks.perf.sweep_scaling \
        --workers 1,2,4,8 --size 16

Speedup scales with the host's *available* cores: the recorded entry
includes ``host_cpus`` so a single-core CI container's flat curve is
not mistaken for an engine regression.  On an unloaded 4-core host the
expected ``workers=4`` speedup for the default campaign is >= 2x.

On a single-CPU host the multi-worker series are not timed at all:
their entries carry ``"skipped_reason": "single-cpu host"`` so a CI
container's numbers can't be mistaken for an engine regression.

A ``service_cache`` series times the same campaign submitted twice to
the durable campaign service (``repro.service``): cold (every point
simulated, hit rate 0) and warm (an identical resubmission served from
the content-addressed result cache, hit rate 1), recording the
wall-clock payoff of cross-campaign caching.

A ``service_cluster`` series drains the campaign through the
multi-node cluster tier (`coyote-sim cluster`): an in-process
dispatcher granting fenced leases to real node-executor subprocesses
over the shared-filesystem transport, recording wall clock and the
grant/rebalance counters.  Like the worker series it is skipped (with
a recorded reason) on a single-CPU host.

The harness also times the largest worker count once more under a
:class:`~repro.api.SupervisorPolicy` (0.2 s heartbeats, generous
timeouts, no retries needed) and records the supervisor's wall-clock
overhead as the ``supervisor`` entry.  Read that number against
``host_cpus`` too: on an oversubscribed or single-core host the
heartbeat threads and the parent's deadline sweeps compete with the
simulation for the same core, so the measured overhead is an *upper*
bound on what a proper multi-core host would see.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.coyote.sweep import Sweep
from repro.kernels import scalar_matmul
from repro.resilience.supervisor import SupervisorPolicy

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_sweep.json"

# The campaign: 2 axes x (2*4) = 8 cartesian points.
AXES = {
    "l2_mode": ["shared", "private"],
    "noc.latency": [2, 4, 6, 8],
}
DIFFERENTIAL_METRICS = ("cycles", "instructions", "l1d_miss_rate")


def host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_sweep(cores: int) -> Sweep:
    return Sweep(base_cores=cores, axes=AXES)


def time_campaign(sweep: Sweep, factory, workers: int,
                  policy: SupervisorPolicy | None = None
                  ) -> tuple[float, dict]:
    started = time.perf_counter()
    table = sweep.run(factory, workers=workers, on_error="skip",
                      policy=policy)
    elapsed = time.perf_counter() - started
    return elapsed, table.to_dict(DIFFERENTIAL_METRICS)


def time_service_cache(cores: int, size: int, workers: int) -> dict:
    """Time the same campaign submitted to the durable service twice.

    The cold submission simulates every point; the warm resubmission of
    an identical sweep should be served entirely from the
    content-addressed result cache.  Records wall seconds and the cache
    hit rate of each phase.
    """
    from repro.service.service import CampaignService

    def submit_and_run(service: CampaignService) -> dict:
        started = time.perf_counter()
        job = service.submit("scalar-matmul", AXES, cores=cores,
                             size=size)
        service.run()
        elapsed = time.perf_counter() - started
        status = service.status(job)
        return {
            "wall_seconds": round(elapsed, 6),
            "cache_hit_rate": round(status.cache_hits / status.total, 4)
            if status.total else 0.0,
        }

    with tempfile.TemporaryDirectory(prefix="sweep-scaling-") as scratch:
        root = Path(scratch) / "service"
        with CampaignService(root, workers=workers) as service:
            cold = submit_and_run(service)
        with CampaignService(root, workers=workers) as service:
            warm = submit_and_run(service)
    return {"workers": workers, "cold": cold, "warm": warm}


def time_service_cluster(cores: int, size: int, nodes: int,
                         workers: int) -> dict:
    """Time the same campaign drained by the multi-node cluster tier.

    The dispatcher runs in-process; ``nodes`` node executors run as
    real CLI subprocesses over the shared-filesystem transport, each
    with ``workers`` forked workers.  Records wall seconds, the grant
    and rebalance counters, and whether the drained table matched the
    serial reference shape (the cluster's own differential).
    """
    import subprocess

    from repro.service.cluster import ClusterDispatcher

    if host_cpus() == 1:
        # A cluster on one CPU measures scheduler contention, not the
        # tier's scaling; mirror the worker-series convention.
        return {"skipped_reason": "single-cpu host"}
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="sweep-scaling-") as scratch:
        root = Path(scratch) / "cluster"
        children = []
        started = time.perf_counter()
        try:
            with ClusterDispatcher(root, grace_seconds=600.0) \
                    as dispatcher:
                job = dispatcher.submit("scalar-matmul", AXES,
                                        cores=cores, size=size)
                for rank in range(nodes):
                    children.append(subprocess.Popen(
                        [sys.executable, "-m", "repro.coyote.cli",
                         "cluster", "--node", "--root", str(root),
                         "--node-id", f"bench-{rank}",
                         "--workers", str(workers),
                         "--heartbeat-seconds", "0.2",
                         "--log-level", "warning"], env=env))
                code = dispatcher.serve(poll_seconds=0.02, drain=True)
                elapsed = time.perf_counter() - started
                status = dispatcher.status(job)
                counters = dict(dispatcher.monitor.counters)
        finally:
            for child in children:
                if child.poll() is None:
                    child.terminate()
            for child in children:
                try:
                    child.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    child.kill()
                    child.wait()
    return {
        "nodes": nodes,
        "workers_per_node": workers,
        "wall_seconds": round(elapsed, 6),
        "exit_code": code,
        "done": status.done,
        "complete": status.complete,
        "grants": counters.get("grants", 0),
        "rebalanced": counters.get("rebalanced", 0),
        "stale_writes": counters.get("stale_writes", 0),
        "degradations": counters.get("degradations", 0),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark parallel-sweep scaling vs worker count.")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts to time "
                             "(the 1 reference is always included)")
    parser.add_argument("--cores", type=int, default=4,
                        help="simulated cores per point")
    parser.add_argument("--size", type=int, default=12,
                        help="matmul problem size per point")
    parser.add_argument("--quick", action="store_true",
                        help="smaller problem (CI-friendly)")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="don't append to BENCH_sweep.json")
    args = parser.parse_args(argv)

    counts = sorted({int(token) for token in args.workers.split(",")}
                    | {1})
    cores = args.cores
    size = 8 if args.quick else args.size

    def factory():
        return scalar_matmul(size=size, num_cores=cores)

    sweep = build_sweep(cores)
    points = len(sweep.points())
    print(f"campaign: {points} points, scalar-matmul size={size} "
          f"x {cores} cores, host cpus {host_cpus()}")

    results: dict[str, dict] = {}
    reference_seconds = None
    reference_table = None
    single_cpu = host_cpus() == 1
    for workers in counts:
        if workers > 1 and single_cpu:
            # A multi-worker series on one CPU measures scheduler
            # contention, not engine scaling; record why it's absent
            # instead of a misleading flat curve.
            results[str(workers)] = {"skipped_reason": "single-cpu host"}
            print(f"  workers={workers:<3d} skipped: single-cpu host")
            continue
        elapsed, table = time_campaign(sweep, factory, workers)
        if workers == 1:
            reference_seconds = elapsed
            reference_table = table
        elif table != reference_table:
            print(f"FAIL: workers={workers} table diverged from the "
                  f"serial reference", file=sys.stderr)
            return 1
        speedup = (reference_seconds / elapsed
                   if reference_seconds and elapsed else 1.0)
        results[str(workers)] = {
            "wall_seconds": round(elapsed, 6),
            "speedup_vs_serial": round(speedup, 3),
        }
        print(f"  workers={workers:<3d} {elapsed:8.2f}s  "
              f"speedup {speedup:5.2f}x")

    # Supervisor overhead: the same campaign at the widest pool, with
    # heartbeats on.  The differential must hold here too — supervision
    # is a lifecycle wrapper, never a results change.
    widest = max(w for w in counts if not (w > 1 and single_cpu))
    supervised_policy = SupervisorPolicy(point_timeout_seconds=3600.0,
                                         heartbeat_interval_seconds=0.2)
    supervised_seconds, supervised_table = time_campaign(
        sweep, factory, widest, policy=supervised_policy)
    if supervised_table != reference_table:
        print("FAIL: supervised table diverged from the serial "
              "reference", file=sys.stderr)
        return 1
    baseline_seconds = results[str(widest)]["wall_seconds"]
    overhead = ((supervised_seconds - baseline_seconds) / baseline_seconds
                if baseline_seconds else 0.0)
    print(f"  supervised (workers={widest}, 0.2s heartbeats) "
          f"{supervised_seconds:8.2f}s  overhead {overhead:+7.1%}")

    service_cache = time_service_cache(cores, size, widest)
    for phase in ("cold", "warm"):
        stats = service_cache[phase]
        print(f"  service {phase:<5s} {stats['wall_seconds']:8.2f}s  "
              f"cache hit rate {stats['cache_hit_rate']:5.1%}")

    cluster_nodes = max(2, min(widest, host_cpus() - 1))
    service_cluster = time_service_cluster(cores, size, cluster_nodes, 1)
    if "skipped_reason" in service_cluster:
        print(f"  service cluster skipped: "
              f"{service_cluster['skipped_reason']}")
    else:
        print(f"  service cluster ({service_cluster['nodes']} nodes x "
              f"{service_cluster['workers_per_node']} worker) "
              f"{service_cluster['wall_seconds']:8.2f}s  "
              f"{service_cluster['grants']} grants, "
              f"{service_cluster['rebalanced']} rebalanced")
        if not service_cluster["complete"] \
                or service_cluster["exit_code"] != 0:
            print("FAIL: cluster drain did not complete",
                  file=sys.stderr)
            return 1

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "points": points,
        "axes": {name: [str(v) for v in values]
                 for name, values in AXES.items()},
        "kernel": f"scalar-matmul size={size} cores={cores}",
        "host_cpus": host_cpus(),
        "workers": results,
        "supervisor": {
            "workers": widest,
            "heartbeat_interval_seconds": 0.2,
            "wall_seconds": round(supervised_seconds, 6),
            "overhead_vs_unsupervised": round(overhead, 4),
        },
        "service_cache": service_cache,
        "service_cluster": service_cluster,
        "differential_identical": True,
    }
    if not args.no_trajectory:
        trajectory = []
        if TRAJECTORY_PATH.exists():
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        trajectory.append(entry)
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"trajectory appended to {TRAJECTORY_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
