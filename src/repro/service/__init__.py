"""Durable campaign service: crash-consistent job store, lease-based
recovery, and an integrity-checked result cache.

Long campaigns outlive processes.  This package turns sweep execution
into a service rooted in one directory that survives being killed at
any instant (docs/RESILIENCE.md, "Campaign service"):

* :mod:`repro.service.journal` — the append-only JSONL event journal
  with checksummed snapshot compaction; queue state is a pure fold over
  events, so recovery is replay and a torn final line is simply an
  event that never committed.
* :mod:`repro.service.store` — the job store folding that journal into
  queue state: submitted jobs, point lifecycles, wall-clock leases.
* :mod:`repro.service.cache` — the content-addressed result cache
  keyed by (config digest, kernel digest, seed); checksummed entries,
  corrupt ones quarantined aside and recomputed, overlapping sweeps
  served from disk.
* :mod:`repro.service.service` — :class:`CampaignService` itself: the
  lease-based executor (heartbeat renewal, seeded retries, poison-point
  quarantine), the bounded submission queue, the spool inbox, and the
  SIGTERM/SIGINT drain behind ``coyote-sim serve``.
* :mod:`repro.service.transport` — pluggable cluster messaging
  (in-process deques, atomic filesystem spools) plus the seeded
  :class:`ServiceFaultPlan` layer that injects drop/delay/duplicate/
  partition faults deterministically.
* :mod:`repro.service.cluster` — the multi-node tier behind
  ``coyote-sim cluster``: :class:`ClusterDispatcher` (fenced lease
  grants, node health registry, rebalancing, graceful cluster→local
  degradation) coordinating :class:`ClusterNode` executors.

The canonical import surface is :mod:`repro.api`
(``submit/status/result/cancel``); the blessed names below are
re-exported from there (lazily, to stay cycle-free).
"""

import importlib

# Names served from the repro.api facade (the canonical path).
_API_NAMES = frozenset({
    "CampaignService",
    "ClusterDispatcher",
    "ClusterNode",
    "JobNotFoundError",
    "JobStatus",
    "QueueFullError",
    "ServiceError",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "StaleWriteError",
})

# Internal-but-stable names that stay below the facade.
_LOCAL_NAMES = {
    "FaultyTransport": "repro.service.transport",
    "FilesystemTransport": "repro.service.transport",
    "InProcessTransport": "repro.service.transport",
    "Journal": "repro.service.journal",
    "JobStore": "repro.service.store",
    "NodeRegistry": "repro.service.cluster",
    "ResultCache": "repro.service.cache",
    "Transport": "repro.service.transport",
    "config_digest": "repro.service.cache",
    "kernel_digest": "repro.service.cache",
    "new_job_id": "repro.service.service",
    "point_key": "repro.service.cache",
    "result_key": "repro.service.cache",
    "spool_submission": "repro.service.service",
}

__all__ = sorted(_API_NAMES | set(_LOCAL_NAMES))


def __getattr__(name: str):
    if name in _API_NAMES:
        api = importlib.import_module("repro.api")
        value = getattr(api, name)
    elif name in _LOCAL_NAMES:
        value = getattr(importlib.import_module(_LOCAL_NAMES[name]), name)
    else:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value  # cache: subsequent lookups skip this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
