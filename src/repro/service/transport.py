"""Pluggable cluster transports and deterministic service faults.

The cluster tier (:mod:`repro.service.cluster`) exchanges small JSON
messages between one dispatcher and N node executors.  Two transports
cover the deployment shapes:

* :class:`InProcessTransport` — per-destination deques in one process.
  The test transport: no filesystem, no timing, fully deterministic.
* :class:`FilesystemTransport` — one spool directory per destination
  under a shared root.  Messages are written with the same atomic
  mkstemp + ``os.replace`` idiom as the result cache, so a reader can
  never observe a torn message; names embed a per-sender sequence
  number so each sender's messages arrive in order.

Faults are injected *between* the endpoints, never inside them:
:class:`FaultyTransport` wraps any transport and applies a seeded
:class:`ServiceFaultPlan` (mirroring the simulator's
``repro.resilience.faults`` plan shape — ``{"seed": N, "faults":
[...]}`` — see ``examples/service_fault_plan.json``).  Fault decisions
draw from one ``random.Random(seed)`` and windows are measured in
*operations* (sends), not wall time, so a chaos campaign replays
bit-identically.  Kinds:

``drop``       the message vanishes.
``delay``      delivery is deferred for ``extra`` further sends.
``duplicate``  the message is delivered twice.
``partition``  messages crossing the boundary of ``nodes`` are dropped
               while the window is open (both directions).

The protocol above this layer is built to survive all four: grants are
leased (a dropped grant expires and is rebalanced), completions are
fenced (a duplicated or stale completion is rejected before it reaches
the journal), and heartbeats are idempotent.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.service.store import ServiceError

SERVICE_FAULT_KINDS = ("drop", "delay", "duplicate", "partition")

# An effectively-unbounded op window end (mirrors FaultSpec's default).
_FOREVER = 1 << 62


class TransportError(ServiceError):
    """A cluster-transport usage or delivery error."""


@dataclass
class ServiceFaultSpec:
    """One transport fault: what to do, to which flows, and when.

    ``start``/``end`` bound an operation-count window (each ``send`` is
    one operation).  ``src``/``dst`` name endpoints, ``"*"`` matching
    any; ``nodes`` lists the isolated group of a ``partition``.
    """

    kind: str
    probability: float = 1.0
    start: int = 0
    end: int = _FOREVER
    src: str = "*"
    dst: str = "*"
    extra: int = 3
    nodes: list[str] = field(default_factory=list)

    def validate(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(
                f"unknown service fault kind {self.kind!r} "
                f"(expected one of {SERVICE_FAULT_KINDS})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.start < 0 or self.end < self.start:
            raise ValueError(
                f"fault window [{self.start}, {self.end}) is invalid")
        if self.extra < 0:
            raise ValueError(f"extra must be >= 0, got {self.extra}")
        if self.kind == "partition" and not self.nodes:
            raise ValueError(
                "a partition fault needs a non-empty 'nodes' group")

    def matches(self, op: int, src: str, dst: str) -> bool:
        if not self.start <= op < self.end:
            return False
        if self.kind == "partition":
            # Crossing the partition boundary, either direction.
            return (src in self.nodes) != (dst in self.nodes)
        if self.src != "*" and self.src != src:
            return False
        if self.dst != "*" and self.dst != dst:
            return False
        return True


@dataclass
class ServiceFaultPlan:
    """A named, replayable transport-fault campaign: specs plus seed.

    The service-tier sibling of
    :class:`~repro.resilience.faults.FaultPlan`, sharing its JSON
    document shape and lifecycle (``load``/``to_dict``/``save``/
    ``validate``).
    """

    faults: list[ServiceFaultSpec] = field(default_factory=list)
    seed: int | None = None

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate()
        if self.seed is not None and (not isinstance(self.seed, int)
                                      or self.seed < 0):
            raise ValueError(
                f"fault plan seed must be a non-negative integer, "
                f"got {self.seed!r}")

    @classmethod
    def load(cls, path: str | Path) -> "ServiceFaultPlan":
        document = json.loads(Path(path).read_text())
        if not isinstance(document, dict) or "faults" not in document:
            raise ValueError(f"{path}: service fault plan must be an "
                             f"object with a 'faults' list")
        plan = cls(faults=[ServiceFaultSpec(**entry)
                           for entry in document["faults"]],
                   seed=document.get("seed"))
        try:
            plan.validate()
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: {exc}") from exc
        return plan

    def to_dict(self) -> dict:
        document: dict = {"faults": [asdict(spec) for spec in self.faults]}
        if self.seed is not None:
            document["seed"] = self.seed
        return document

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


class Transport:
    """The cluster messaging contract: ordered-per-sender datagrams.

    ``send`` never blocks and never confirms delivery; ``receive``
    drains every message currently queued for one endpoint.  The
    cluster protocol assumes nothing stronger — messages may be lost,
    delayed or duplicated (and under a :class:`FaultyTransport`,
    deliberately are).
    """

    def send(self, dst: str, message: dict) -> None:
        raise NotImplementedError

    def receive(self, endpoint: str) -> list[dict]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any transport resources (optional)."""


class InProcessTransport(Transport):
    """Per-destination deques in one process — the test transport."""

    def __init__(self):
        self._queues: dict[str, list[dict]] = {}

    def send(self, dst: str, message: dict) -> None:
        # JSON round-trip: the in-process transport must reject exactly
        # what the filesystem transport would, and a receiver must
        # never share mutable state with the sender.
        try:
            encoded = json.dumps(message, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise TransportError(
                f"message to {dst!r} is not JSON-serialisable: "
                f"{exc}") from exc
        self._queues.setdefault(dst, []).append(json.loads(encoded))

    def receive(self, endpoint: str) -> list[dict]:
        messages = self._queues.get(endpoint, [])
        self._queues[endpoint] = []
        return messages


class FilesystemTransport(Transport):
    """Atomic spool files under ``root/mail/<dst>/`` on a shared tree.

    Each sender stamps its messages with a private monotonic sequence
    number embedded in the file name, so a receiver's sorted directory
    scan yields every sender's messages in send order.  Files appear
    atomically (mkstemp + ``os.replace``) and are unlinked once read;
    a crash between read and unlink re-delivers — which the fenced
    protocol above absorbs by design.
    """

    def __init__(self, root: str | Path, sender: str):
        self.root = Path(root)
        self.sender = sender
        self._mail = self.root / "mail"
        self._seq = 0

    def _box(self, endpoint: str) -> Path:
        box = self._mail / endpoint
        box.mkdir(parents=True, exist_ok=True)
        return box

    def send(self, dst: str, message: dict) -> None:
        try:
            body = json.dumps(message, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise TransportError(
                f"message to {dst!r} is not JSON-serialisable: "
                f"{exc}") from exc
        box = self._box(dst)
        self._seq += 1
        name = f"{self.sender}-{self._seq:010d}.msg"
        fd, scratch = tempfile.mkstemp(dir=box, prefix=".send-",
                                       suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            handle.write(body)
        os.replace(scratch, box / name)

    def receive(self, endpoint: str) -> list[dict]:
        box = self._box(endpoint)
        messages = []
        for path in sorted(box.glob("*.msg")):
            try:
                messages.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                # A concurrently-unlinked or unreadable message: skip.
                # (Torn messages cannot exist — os.replace is atomic.)
                continue
            path.unlink(missing_ok=True)
        return messages


class FaultyTransport(Transport):
    """A transport wrapper that injects a seeded fault plan.

    Deterministic: the fault clock is the count of ``send`` operations
    (never wall time) and every probabilistic decision draws from one
    ``random.Random(plan.seed)``, so the same message sequence under
    the same plan yields the same faults.  Counters expose what fired.
    """

    def __init__(self, inner: Transport, plan: ServiceFaultPlan):
        plan.validate()
        self.inner = inner
        self.plan = plan
        self._rng = random.Random(plan.seed or 0)
        self.op = 0
        # (release_op, dst, message) for in-flight delayed deliveries.
        self._delayed: list[tuple[int, str, dict]] = []
        self.counters = {"sent": 0, "dropped": 0, "delayed": 0,
                         "duplicated": 0, "partitioned": 0}

    def _flush_delayed(self) -> None:
        matured = [entry for entry in self._delayed
                   if entry[0] <= self.op]
        self._delayed = [entry for entry in self._delayed
                         if entry[0] > self.op]
        for _release, dst, message in matured:
            self.inner.send(dst, message)

    def send(self, dst: str, message: dict) -> None:
        src = str(message.get("node", message.get("src", "dispatcher")))
        self.op += 1
        self.counters["sent"] += 1
        deliveries = 1
        delay_ops = 0
        for spec in self.plan.faults:
            if not spec.matches(self.op, src, dst):
                continue
            if spec.probability < 1.0 \
                    and self._rng.random() >= spec.probability:
                continue
            if spec.kind == "partition":
                self.counters["partitioned"] += 1
                deliveries = 0
                break
            if spec.kind == "drop":
                self.counters["dropped"] += 1
                deliveries = 0
                break
            if spec.kind == "delay":
                self.counters["delayed"] += 1
                delay_ops = max(delay_ops, spec.extra)
            elif spec.kind == "duplicate":
                self.counters["duplicated"] += 1
                deliveries = 2
        for _copy in range(deliveries):
            if delay_ops:
                self._delayed.append((self.op + delay_ops, dst,
                                      message))
            else:
                self.inner.send(dst, message)
        self._flush_delayed()

    def receive(self, endpoint: str) -> list[dict]:
        self._flush_delayed()
        return self.inner.receive(endpoint)

    def close(self) -> None:
        # Deliver whatever is still in flight, then close the inner
        # transport: a closing wrapper must not strand messages a test
        # expects to audit.
        self._delayed, pending = [], self._delayed
        for _release, dst, message in pending:
            self.inner.send(dst, message)
        self.inner.close()
