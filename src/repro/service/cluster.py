"""The multi-node cluster tier: one dispatcher, N node executors.

:class:`ClusterDispatcher` scales the durable campaign service past
one host.  It owns the authoritative journal/store/cache at the
cluster root (exactly the single-node layout, so every existing tool —
``coyote-sim jobs``, ``repro.api.status/result`` — reads a cluster
root unchanged) and coordinates :class:`ClusterNode` executors over a
pluggable :class:`~repro.service.transport.Transport`: shared
filesystem between processes/hosts, in-process deques for
deterministic tests.

Robust by construction:

* **Grants are fenced leases.**  The dispatcher claims each point on a
  node's behalf; the claim mints a monotonic fencing token which rides
  the grant and must be echoed on every ``complete``/``failure``.  A
  SIGSTOP'd zombie node that wakes after its lease was reaped and
  re-granted sends a stale token; the store rejects the write *before*
  journaling (:class:`~repro.service.store.StaleWriteError`), records
  a durable ``stale_write`` event, and the journal keeps exactly one
  ``complete`` per point.
* **Nodes are leased too.**  A node registry tracks per-node
  heartbeats against a wall-clock deadline; a silent node is declared
  dead, its leases reaped, and its points rebalanced to live nodes
  under the existing seeded
  :class:`~repro.resilience.supervisor.RetryPolicy` backoff.
* **The transport is allowed to misbehave.**  Every message may be
  dropped, delayed, duplicated, or partitioned away (see
  :class:`~repro.service.transport.FaultyTransport`); lost grants
  expire, duplicate completes are rejected by the fence, and the
  campaign still drains to a :class:`~repro.coyote.sweep.SweepTable`
  bit-identical to a serial sweep.
* **Degradation is graceful, not silent.**  A cluster whose nodes all
  die (or never arrive) steps down cluster → single-node — the
  dispatcher runs the remaining points itself through the inherited
  PR-5/PR-8 forked-worker machinery — and, if it cannot even fork,
  single-node → serial in-process execution.  Each step logs a
  :class:`~repro.resilience.supervisor.DegradationEvent`, surfaced on
  the final table's host-side ``degradations`` field.

The node tier deliberately owns nothing durable: a node never touches
the journal and writes only content-addressed cache entries (same key
=> same bytes, atomic replace), so a zombie's cache write is harmless
and all authority stays with the dispatcher's fenced journal.
"""

from __future__ import annotations

import os
import secrets
import socket
import tempfile
import time
from multiprocessing import connection
from pathlib import Path
from typing import Any, Callable

import multiprocessing

from repro.coyote.parallel import _worker_main
from repro.coyote.sweep import SweepPoint, SweepTable, run_point
from repro.kernels import instantiate
from repro.resilience import supervisor as supervision
from repro.resilience.supervisor import DegradationEvent
from repro.service.cache import ResultCache
from repro.service.service import CampaignService
from repro.service.store import (
    DONE_STATES,
    ServiceError,
    StaleWriteError,
)
from repro.service.transport import (
    FaultyTransport,
    FilesystemTransport,
    ServiceFaultPlan,
    Transport,
)
from repro.telemetry.campaign import ClusterMonitor

__all__ = [
    "ClusterDispatcher",
    "ClusterNode",
    "NodeRegistry",
    "DISPATCHER_ENDPOINT",
]

# The dispatcher's transport mailbox name.
DISPATCHER_ENDPOINT = "dispatcher"

_POLL_SECONDS = 0.05


def new_node_id() -> str:
    """A fresh node id: host-qualified, collision-resistant."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{secrets.token_hex(3)}")


class NodeRegistry:
    """Liveness of every node, judged by heartbeat wall-clock age.

    A node is ``alive`` from registration (or its first heartbeat)
    until it stays silent past ``deadline_seconds``; :meth:`reap`
    flips such nodes to dead exactly once and returns them, so the
    dispatcher rebalances each dead node's leases exactly once.  A
    dead node that speaks again (a woken zombie) is simply
    re-registered — its *old* leases are gone and its old fencing
    tokens are dead, so re-admission is safe.
    """

    def __init__(self, deadline_seconds: float,
                 clock: Callable[[], float] = time.time):
        if deadline_seconds <= 0:
            raise ValueError(f"deadline_seconds must be > 0, "
                             f"got {deadline_seconds}")
        self.deadline_seconds = deadline_seconds
        self._clock = clock
        self.nodes: dict[str, dict] = {}

    def register(self, node: str, workers: int = 1) -> bool:
        """Admit (or re-admit) a node; True when it was unknown."""
        fresh = node not in self.nodes or not self.nodes[node]["alive"]
        self.nodes[node] = {"workers": workers,
                            "last_seen": self._clock(),
                            "alive": True}
        return fresh

    def heartbeat(self, node: str) -> bool:
        """Refresh a node's deadline; False when the node is unknown
        or was already declared dead (the caller should re-register
        it)."""
        info = self.nodes.get(node)
        if info is None or not info["alive"]:
            return False
        info["last_seen"] = self._clock()
        return True

    def alive(self) -> list[str]:
        return [node for node, info in self.nodes.items()
                if info["alive"]]

    def age(self, node: str) -> float:
        info = self.nodes[node]
        return self._clock() - info["last_seen"]

    def reap(self) -> list[str]:
        """Declare overdue nodes dead (once each) and return them."""
        now = self._clock()
        dead = []
        for node, info in self.nodes.items():
            if info["alive"] and \
                    now - info["last_seen"] > self.deadline_seconds:
                info["alive"] = False
                dead.append(node)
        return dead


class _NodeRunning:
    """Node-side state of one in-flight granted point."""

    def __init__(self, grant: dict, process, conn,
                 stderr_path: str | None):
        self.grant = grant
        self.process = process
        self.conn = conn
        self.stderr_path = stderr_path


class ClusterNode:
    """One node-local executor: leases work, runs it, reports fenced.

    The node half of the cluster protocol.  It registers with the
    dispatcher, heartbeats on a wall-clock cadence (which renews every
    lease it holds, dispatcher-side), requests work when it has idle
    worker slots, runs each granted point in a forked child process
    (the same PR-5 worker as the single-node service), writes results
    into the shared content-addressed cache, and reports completion
    with the grant's fencing token echoed back.

    The node holds no durable state and takes no locks: killing it at
    any instant loses nothing but its in-flight leases, which expire
    and rebalance.
    """

    def __init__(self, root: str | Path, node_id: str | None = None,
                 transport: Transport | None = None, *,
                 workers: int = 1, heartbeat_seconds: float = 0.5,
                 clock: Callable[[], float] = time.time,
                 mp_context: str | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.root = Path(root)
        self.node_id = node_id or new_node_id()
        self.transport = transport if transport is not None \
            else FilesystemTransport(self.root, self.node_id)
        self.workers = workers
        self.heartbeat_seconds = heartbeat_seconds
        self.cache = ResultCache(self.root / "cache")
        self._clock = clock
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(mp_context)
        self._inflight: dict[Any, _NodeRunning] = {}
        self._queued: list[dict] = []
        self._registered = False
        self._shutdown = False
        self._last_beat = float("-inf")
        self._last_request = float("-inf")

    # -- outbound ----------------------------------------------------------

    def _send(self, message: dict) -> None:
        message.setdefault("node", self.node_id)
        self.transport.send(DISPATCHER_ENDPOINT, message)

    def _register(self) -> None:
        self._send({"type": "register", "workers": self.workers})
        self._registered = True

    def _held_leases(self) -> list[list]:
        """The (job, index) pairs this node knows it holds — queued or
        running.  Heartbeats carry this list so the dispatcher renews
        exactly these leases: a grant the transport dropped is *not*
        in it, so its lease expires on schedule and rebalances instead
        of being renewed forever by an oblivious node."""
        held = [[grant["job"], grant["index"]]
                for grant in self._queued]
        held += [[running.grant["job"], running.grant["index"]]
                 for running in self._inflight.values()]
        return held

    def _beat(self) -> None:
        now = self._clock()
        if now - self._last_beat >= self.heartbeat_seconds:
            self._last_beat = now
            self._send({"type": "heartbeat",
                        "held": self._held_leases()})

    def _request_work(self) -> None:
        slots = self.workers - len(self._inflight) - len(self._queued)
        if slots <= 0 or self._shutdown:
            return
        now = self._clock()
        if now - self._last_request >= self.heartbeat_seconds:
            self._last_request = now
            self._send({"type": "request", "slots": slots})

    # -- inbound -----------------------------------------------------------

    def _drain_mailbox(self) -> bool:
        progressed = False
        for message in self.transport.receive(self.node_id):
            kind = message.get("type")
            if kind == "grant":
                if not self._shutdown:
                    self._queued.append(message)
                    progressed = True
                # A grant after shutdown is ignored; its lease expires
                # and the point rebalances.
            elif kind == "shutdown":
                self._shutdown = True
                progressed = True
        return progressed

    # -- execution ---------------------------------------------------------

    def _workload_factory(self, spec: dict) -> Callable:
        kernel, cores, size = spec["kernel"], spec["cores"], spec["size"]

        def make_workload():
            return instantiate(kernel, cores, size)

        return make_workload

    def _spawn(self, grant: dict) -> None:
        spec = grant["spec"]
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        fd, stderr_path = tempfile.mkstemp(prefix="coyote-node-",
                                           suffix=".stderr")
        os.close(fd)
        try:
            process = self._context.Process(
                target=_worker_main,
                args=(child_conn, grant["index"], grant["settings"],
                      spec["cores"], spec["overrides"],
                      self._workload_factory(spec),
                      spec["require_verified"], 0.0, stderr_path),
                daemon=True)
            process.start()
        except BaseException:
            parent_conn.close()
            child_conn.close()
            os.unlink(stderr_path)
            raise
        child_conn.close()
        self._inflight[parent_conn] = _NodeRunning(
            grant, process, parent_conn, stderr_path)

    def _fill_slots(self) -> bool:
        progressed = False
        while self._queued and len(self._inflight) < self.workers:
            grant = self._queued.pop(0)
            try:
                self._spawn(grant)
            except OSError:
                # Fork pressure: run the point in-process instead of
                # silently dropping the grant on the floor.
                point = run_point(
                    grant["settings"], grant["spec"]["cores"],
                    grant["spec"]["overrides"],
                    self._workload_factory(grant["spec"]),
                    require_verified=grant["spec"]["require_verified"])
                self._report(grant, point)
            progressed = True
        return progressed

    def _retire(self, running: _NodeRunning) -> str:
        process = running.process
        if process.is_alive():
            process.terminate()
            process.join(2.0)
            if process.is_alive():
                process.kill()
                process.join()
        else:
            process.join()
        try:
            running.conn.close()
        except OSError:
            pass
        self._inflight.pop(running.conn, None)
        tail = supervision.read_stderr_tail(running.stderr_path)
        if running.stderr_path is not None:
            try:
                os.unlink(running.stderr_path)
            except OSError:
                pass
            running.stderr_path = None
        return tail

    def _report(self, grant: dict, point: SweepPoint) -> None:
        cache_key = None
        if point.results is not None and grant.get("cache_key"):
            if self.cache.put(grant["cache_key"], point):
                cache_key = grant["cache_key"]
        self._send({"type": "complete", "job": grant["job"],
                    "index": grant["index"], "fence": grant.get("fence"),
                    "cache_key": cache_key, "verified": point.verified,
                    "failure": point.failure_record()})

    def _pump(self) -> bool:
        if not self._inflight:
            return False
        progressed = False
        for conn in connection.wait(list(self._inflight),
                                    _POLL_SECONDS):
            running = self._inflight.get(conn)
            if running is None:
                continue
            try:
                message = conn.recv()
            except EOFError:
                tail = self._retire(running)
                grant = running.grant
                self._send({"type": "failure", "job": grant["job"],
                            "index": grant["index"],
                            "fence": grant.get("fence"),
                            "outcome": "crash",
                            "exit_code": running.process.exitcode,
                            "stderr_tail": tail})
                progressed = True
                continue
            if message[0] == "hb":
                continue  # the node heartbeats for itself
            _tag, _index, point = message
            self._retire(running)
            self._report(running.grant, point)
            progressed = True
        return progressed

    # -- the node loop -----------------------------------------------------

    def step(self) -> bool:
        """One protocol turn; returns True when anything progressed.

        Exposed so deterministic tests can interleave dispatcher and
        node turns explicitly instead of racing threads.
        """
        if not self._registered:
            self._register()
        self._beat()
        progressed = self._drain_mailbox()
        progressed |= self._fill_slots()
        progressed |= self._pump()
        self._request_work()
        return progressed

    @property
    def idle(self) -> bool:
        return not self._inflight and not self._queued

    def run(self, *, max_seconds: float | None = None,
            stop: Callable[[], bool] | None = None) -> None:
        """Serve until the dispatcher says shutdown (or ``stop``)."""
        deadline = (time.monotonic() + max_seconds
                    if max_seconds is not None else None)
        try:
            while True:
                if stop is not None and stop():
                    break
                if deadline is not None and time.monotonic() > deadline:
                    break
                progressed = self.step()
                if self._shutdown and self.idle:
                    break
                if not progressed and not self._inflight:
                    time.sleep(_POLL_SECONDS)
        finally:
            for running in list(self._inflight.values()):
                self._retire(running)
            self.transport.close()


class ClusterDispatcher(CampaignService):
    """The cluster-level coordinator over N node executors.

    A :class:`~repro.service.service.CampaignService` that *grants*
    points to remote nodes over a transport instead of (only) running
    them locally.  All single-node behaviour is inherited — journal
    ownership, inbox ingestion, bounded queue, cache-hit service,
    expired-lease reaping, retry/quarantine policy — and stays the
    degradation target: when every node is dead or none ever arrives,
    the dispatcher runs the remaining points itself (forked workers;
    serial in-process if even forking fails).

    ``fence=False`` disables fencing *enforcement* (tokens are still
    minted) to demonstrate the legacy at-least-once behaviour; leave
    it on.
    """

    def __init__(self, root: str | Path,
                 transport: Transport | None = None, *,
                 fault_plan: ServiceFaultPlan | None = None,
                 node_deadline_seconds: float | None = None,
                 grace_seconds: float = 5.0, fence: bool = True,
                 local_workers: int = 1,
                 clock: Callable[[], float] = time.time,
                 monitor: ClusterMonitor | None = None,
                 **service_kwargs: Any):
        monitor = monitor if monitor is not None else ClusterMonitor()
        super().__init__(root, workers=local_workers, monitor=monitor,
                         **service_kwargs)
        base = transport if transport is not None \
            else FilesystemTransport(self.root, DISPATCHER_ENDPOINT)
        if fault_plan is not None:
            base = FaultyTransport(base, fault_plan)
        self.transport = base
        self.fence_enabled = fence
        self.grace_seconds = grace_seconds
        self._clock = clock
        if node_deadline_seconds is None:
            node_deadline_seconds = self.lease_seconds
        self.registry = NodeRegistry(node_deadline_seconds, clock=clock)
        self.degradations: list[DegradationEvent] = []
        # "cluster" -> "local" (forked workers) -> "serial".
        self._tier = "cluster"
        self._started = clock()
        self._ever_had_nodes = False

    def _now(self) -> float:
        return self._clock()

    # -- transport protocol ------------------------------------------------

    def _pump_transport(self) -> bool:
        progressed = False
        for message in self.transport.receive(DISPATCHER_ENDPOINT):
            handler = getattr(
                self, f"_on_{message.get('type', 'unknown')}", None)
            if handler is None:
                continue  # unknown message kinds are dropped
            handler(message)
            progressed = True
        return progressed

    def _on_register(self, message: dict) -> None:
        node = str(message["node"])
        workers = int(message.get("workers", 1))
        if self.registry.register(node, workers):
            self.monitor.node_registered(node, workers)
        self._ever_had_nodes = True

    def _on_heartbeat(self, message: dict) -> None:
        node = str(message["node"])
        if not self.registry.heartbeat(node):
            # A node we never met, or one already declared dead (a
            # woken zombie): admit it fresh.  Its old leases are gone;
            # its old fences protect the journal.
            self._on_register(message)
            return
        held_keys = set()
        for entry in message.get("held") or []:
            if isinstance(entry, (list, tuple)) and len(entry) >= 2:
                held_keys.add((str(entry[0]), int(entry[1])))
        self.monitor.node_heartbeat(node, self.registry.age(node),
                                    len(held_keys))
        # A heartbeat renews exactly the leases the node acknowledges.
        # A lease the node does not know about (its grant was dropped
        # in transit) is deliberately left to expire and rebalance.
        for job_id, point in self._node_leases(node):
            if (job_id, point["index"]) not in held_keys:
                continue
            fence = (point["lease"] or {}).get("fence")
            try:
                self.store.renew(job_id, point["index"], self._now(),
                                 self.lease_seconds, fence=fence)
            except StaleWriteError:
                self.monitor.stale_write(job_id, point["index"])

    def _on_request(self, message: dict) -> None:
        node = str(message["node"])
        if node not in self.registry.alive():
            return  # no grants for the silent or unknown
        slots = max(0, int(message.get("slots", 1)))
        for _slot in range(slots):
            if not self._grant(node):
                break

    def _on_complete(self, message: dict) -> None:
        node = str(message.get("node", "?"))
        job_id, index = message["job"], int(message["index"])
        fence = message.get("fence")
        try:
            point = self.store.jobs[job_id]["points"][index]
        except (KeyError, IndexError):
            return  # a completion for a job this root never had
        if fence is None and point["state"] in DONE_STATES:
            # Unfenced duplicate delivery: drop it without journaling
            # (with fencing on, the fence check below handles this and
            # records the rejection durably).
            return
        try:
            self.store.complete(
                job_id, index, cache_key=message.get("cache_key"),
                verified=message.get("verified"),
                failure=message.get("failure"), cached=False,
                fence=fence)
        except StaleWriteError:
            self.monitor.stale_write(job_id, index)
            self.monitor.grant_settled(node, job_id, index, "stale")
            return
        self.monitor.completed(job_id, index, cached=False)
        self.monitor.grant_settled(node, job_id, index, "complete")
        self._not_before.pop((job_id, index), None)

    def _on_failure(self, message: dict) -> None:
        node = str(message.get("node", "?"))
        job_id, index = message["job"], int(message["index"])
        try:
            point = self.store.jobs[job_id]["points"][index]
        except (KeyError, IndexError):
            return
        self.monitor.grant_settled(node, job_id, index,
                                   message.get("outcome", "failure"))
        self._record_failure(job_id, index, point["settings"],
                             str(message.get("outcome", "crash")),
                             message.get("exit_code"),
                             str(message.get("stderr_tail", "")),
                             fence=message.get("fence"))

    def _grant(self, node: str) -> bool:
        claimed = self.store.claim(node, self._now(),
                                   self.lease_seconds,
                                   eligible=self._eligible)
        if claimed is None:
            return False
        job_id, point = claimed
        index = point["index"]
        fence = (point["lease"] or {}).get("fence")
        self.monitor.claimed(job_id, index)
        key = self._cache_key(job_id, point["settings"])
        cached = self.cache.get(key) if key is not None else None
        if cached is not None:
            # Cache hits are served dispatcher-side; the node never
            # sees the point.
            self.store.complete(job_id, index, cache_key=key,
                                verified=cached.verified,
                                failure=cached.failure_record(),
                                cached=True, fence=fence)
            self.monitor.completed(job_id, index, cached=True)
            return True
        spec = self.store.jobs[job_id]["spec"]
        self.transport.send(node, {
            "type": "grant", "src": DISPATCHER_ENDPOINT,
            "job": job_id, "index": index,
            "settings": point["settings"], "spec": spec,
            "fence": fence if self.fence_enabled else None,
            "cache_key": key,
            "lease_seconds": self.lease_seconds})
        self.monitor.granted(node, job_id, index, fence)
        return True

    def _node_leases(self, node: str) -> list[tuple[str, dict]]:
        held = []
        for job_id in self.store.jobs_in_order():
            for point in self.store.jobs[job_id]["points"]:
                lease = point["lease"]
                if point["state"] == "leased" and lease is not None \
                        and lease.get("worker") == node:
                    held.append((job_id, point))
        return held

    # -- node death and rebalancing ----------------------------------------

    def _reap_dead_nodes(self) -> bool:
        progressed = False
        for node in self.registry.reap():
            leases = self._node_leases(node)
            self.monitor.node_dead(node, self.registry.age(node),
                                   len(leases))
            for job_id, point in leases:
                index = point["index"]
                self.monitor.grant_settled(node, job_id, index,
                                           "node-lost")
                self.monitor.rebalanced(node, job_id, index)
                # Charged as an attempt: a lost node's in-flight work
                # is indistinguishable from a wedged point, so the
                # seeded RetryPolicy governs the re-dispatch (and a
                # point that keeps killing nodes quarantines).
                self._record_failure(job_id, index, point["settings"],
                                     "node-lost", None, "")
            progressed = True
        return progressed

    # -- degradation ladder ------------------------------------------------

    def _note_degradation(self, to_tier: str, reason: str) -> None:
        from_workers = (len(self.registry.nodes)
                        if self._tier == "cluster" else self.workers)
        to_workers = self.workers if to_tier == "local" else 0
        event = DegradationEvent(reason=reason,
                                 from_workers=from_workers,
                                 to_workers=to_workers,
                                 pool_failures=len(self.degradations))
        self.degradations.append(event)
        self.monitor.degraded(event)
        self._tier = to_tier

    def _should_degrade(self) -> bool:
        if self._tier != "cluster" or not self.store.has_work():
            return False
        if self.registry.alive():
            return False
        if self._ever_had_nodes:
            return True  # had a fleet, lost it
        return self._now() - self._started > self.grace_seconds

    def _spawn(self, job_id: str, point: dict,
               cache_key: str | None, fence: int | None = None) -> None:
        try:
            super()._spawn(job_id, point, cache_key, fence)
        except OSError as exc:
            if self._tier == "local":
                self._note_degradation(
                    "serial", f"cannot fork local workers: {exc}")
            raise

    def _serial_tick(self) -> bool:
        """The last rung: one point, in-process, no children at all."""
        claimed = self.store.claim(self.worker_id, self._now(),
                                   self.lease_seconds,
                                   eligible=self._eligible)
        if claimed is None:
            return False
        job_id, point = claimed
        index = point["index"]
        fence = (point["lease"] or {}).get("fence")
        self.monitor.claimed(job_id, index)
        key = self._cache_key(job_id, point["settings"])
        cached = self.cache.get(key) if key is not None else None
        if cached is not None:
            result = cached
            served_from_cache = True
        else:
            spec = self.store.jobs[job_id]["spec"]
            result = run_point(point["settings"], spec["cores"],
                               spec["overrides"],
                               self._workload_factory(job_id),
                               require_verified=spec["require_verified"])
            served_from_cache = False
        cache_key = None
        if result.results is not None and key is not None:
            if served_from_cache or self.cache.put(key, result):
                cache_key = key
        try:
            self.store.complete(job_id, index, cache_key=cache_key,
                                verified=result.verified,
                                failure=result.failure_record(),
                                cached=served_from_cache, fence=fence)
        except StaleWriteError:
            self.monitor.stale_write(job_id, index)
            return True
        self.monitor.completed(job_id, index, cached=served_from_cache)
        return True

    def _local_tick(self) -> bool:
        if self._tier == "serial":
            return self._serial_tick()
        progressed = self._fill_slots()
        progressed |= self._pump()
        return progressed

    # -- the dispatcher loop -----------------------------------------------

    def step(self) -> bool:
        """One dispatcher turn; the unit deterministic tests drive."""
        self.ingest_inbox()
        self._recover_dead_leases()
        progressed = self._pump_transport()
        progressed |= self._reap_dead_nodes()
        self._reap_expired()
        if self._should_degrade():
            self._note_degradation(
                "local",
                "no live nodes; dispatcher running points itself"
                if self._ever_had_nodes else
                f"no node registered within {self.grace_seconds:.1f}s; "
                f"dispatcher running points itself")
        if self._tier != "cluster":
            progressed |= self._local_tick()
        self.monitor.observe_queue(self.store.outstanding_points(),
                                   self.store.active_leases())
        return progressed

    def run(self, *, max_seconds: float | None = None,
            stop: Callable[[], bool] | None = None) -> int:
        """Drive the cluster until the queue drains; returns
        completions this call (the cluster spelling of
        :meth:`CampaignService.run`)."""
        self._require_open()
        before = self.monitor.counters["completions"]
        deadline = (time.monotonic() + max_seconds
                    if max_seconds is not None else None)
        while True:
            if stop is not None and stop():
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            progressed = self.step()
            if not self._inflight and not self.store.has_work():
                break
            if not progressed and not self._inflight:
                time.sleep(_POLL_SECONDS)
        return self.monitor.counters["completions"] - before

    def shutdown_nodes(self) -> None:
        """Tell every node (alive or not) to finish and exit."""
        for node in list(self.registry.nodes):
            try:
                self.transport.send(node, {"type": "shutdown",
                                           "src": DISPATCHER_ENDPOINT})
            except ServiceError:
                continue

    def result(self, job_id: str, *, wait: bool = False) -> SweepTable:
        table = super().result(job_id, wait=wait)
        table.degradations = list(self.degradations)
        return table

    def close(self) -> None:
        if self._opened:
            self.shutdown_nodes()
            self.transport.close()
        super().close()

