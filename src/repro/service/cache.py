"""Content-addressed result cache keyed by (config, kernel, seed).

Identical sweep points are common when many users explore overlapping
design spaces; the simulator is deterministic, so an identical point is
an identical result.  The cache serves such points from disk instead of
re-simulating — and doubles as the service's result store: a completed
point's :class:`~repro.coyote.sweep.SweepPoint` lives here, addressed
by the digest of everything that determines it:

* **config digest** — sha256 over the canonical JSON of the point's
  full :class:`~repro.coyote.config.SimulationConfig` (the same
  ``base + settings`` recipe :func:`~repro.coyote.sweep.run_point`
  builds), so *any* knob that could steer the simulation is in the key;
* **kernel digest** — sha256 over the assembled program (segment bases
  and bytes, entry point, name, core count), so two workloads are only
  "the same" when their loaded images are byte-identical;
* **seed** — the resilience fault seed, spelled into the key
  explicitly (it is also inside the config digest) because seeded
  campaigns are the canonical replay unit.

Integrity is checked, not hoped: every entry is written atomically
(temp file + ``os.replace``) under a header carrying the payload's
sha256 and length.  A corrupt or truncated entry is detected on read,
moved aside into ``quarantine/`` (never served, never fatal), counted,
and the point is recomputed.  At-least-once execution makes duplicate
writes possible; they are idempotent — same key, same bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.coyote.config import SimulationConfig
from repro.coyote.sweep import SweepPoint

CACHE_FORMAT = 1
_ENTRY_MAGIC = b"coyote-result"


def config_digest(config: SimulationConfig) -> str:
    """Canonical digest of everything a configuration could change."""
    canonical = json.dumps(config.to_dict(), sort_keys=True,
                           separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


def kernel_digest(workload) -> str:
    """Digest of a workload's loaded image (program + identity)."""
    digest = hashlib.sha256()
    digest.update(workload.name.encode())
    digest.update(str(workload.num_cores).encode())
    program = workload.program
    digest.update(str(program.entry).encode())
    for segment in sorted(program.segments, key=lambda s: s.base):
        digest.update(str(segment.base).encode())
        digest.update(bytes(segment.data))
    return digest.hexdigest()


def result_key(config_hex: str, kernel_hex: str, seed: int) -> str:
    """The cache key of one (config, kernel, seed) triple."""
    return hashlib.sha256(
        f"{config_hex}:{kernel_hex}:{seed}".encode()).hexdigest()


def point_key(settings: dict[str, Any], base_cores: int,
              base_overrides: dict[str, Any], workload) -> str:
    """The cache key of one sweep point, built the same way
    :func:`~repro.coyote.sweep.run_point` builds its configuration."""
    config = SimulationConfig.for_cores(
        base_cores, **{**base_overrides, **settings})
    return result_key(config_digest(config), kernel_digest(workload),
                      config.resilience.fault_seed)


class ResultCache:
    """Checksummed, atomically-written result store under one root."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0

    def _entry_path(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.res"

    def get(self, key: str) -> SweepPoint | None:
        """The cached point, or ``None`` (miss, or corrupt-and-aside).

        A corrupt entry — bad magic, short payload, checksum mismatch,
        unreadable pickle — is moved into ``quarantine/`` and reported
        as a miss; it is never served and never raises.
        """
        path = self._entry_path(key)
        try:
            with path.open("rb") as handle:
                header = handle.readline(256)
                body = handle.read()
        except OSError:
            self.misses += 1
            return None
        parts = header.split()
        if (len(parts) != 4 or parts[0] != _ENTRY_MAGIC
                or not self._body_ok(parts, body)):
            self._quarantine(path, key)
            self.misses += 1
            return None
        try:
            point = pickle.loads(body)
        except Exception:
            self._quarantine(path, key)
            self.misses += 1
            return None
        if not isinstance(point, SweepPoint):
            self._quarantine(path, key)
            self.misses += 1
            return None
        self.hits += 1
        return point

    @staticmethod
    def _body_ok(parts: list[bytes], body: bytes) -> bool:
        try:
            expected_length = int(parts[3])
        except ValueError:
            return False
        if len(body) != expected_length:
            return False
        return hashlib.sha256(body).hexdigest().encode("ascii") == parts[2]

    def _quarantine(self, path: Path, key: str) -> None:
        self.corrupt += 1
        for attempt in range(1000):
            target = self.quarantine_dir / f"{key}.{attempt}.corrupt"
            if not target.exists():
                break
        try:
            os.replace(path, target)
        except OSError:
            # Removal is an acceptable fallback: never serve it again.
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, key: str, point: SweepPoint) -> bool:
        """Atomically store one point; returns False when unpicklable.

        Only deterministic outcomes belong here: callers must not cache
        points that failed without results (crashes, timeouts — those
        are host facts, not simulation facts).
        """
        try:
            body = pickle.dumps(point, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        digest = hashlib.sha256(body).hexdigest()
        fd, scratch = tempfile.mkstemp(dir=path.parent,
                                       prefix=".put-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(b"%s %d %s %d\n" % (
                    _ENTRY_MAGIC, CACHE_FORMAT,
                    digest.encode("ascii"), len(body)))
                handle.write(body)
            os.replace(scratch, path)
        except BaseException:
            try:
                os.unlink(scratch)
            except OSError:
                pass
            raise
        self.writes += 1
        return True

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "writes": self.writes}
