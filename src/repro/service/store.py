"""The durable job store: campaign queue state as a fold over events.

One :class:`JobStore` owns the service's whole queue: every submitted
job (a sweep campaign), every point's lifecycle state, and every lease.
All state is JSON-serialisable and reconstructed purely by replaying
the journal, so the store survives a hard kill at any write boundary
(see :mod:`repro.service.journal`).

Point lifecycle::

    pending --claim--> leased --complete--> done
       ^                  |
       |                  +--attempt (crash/timeout, retries left)--+
       |                  +--release (graceful drain)---------------+
       |                  +--attempt final----> quarantined
       +--invalidate (corrupt cache entry at result assembly)-- done

Leases are wall-clock (absolute epoch seconds, persisted), so a lease
taken by a crashed or wedged executor expires on its own and the point
is reclaimed by whichever service process observes the expiry —
at-least-once execution, made safe by the content-addressed result
cache (duplicate completions are idempotent: the first one wins).

Every lease grant also mints a **fencing token**: a store-wide
monotonic integer recorded on the ``claim`` event and persisted through
snapshot compaction.  Executors echo the token back on ``complete`` /
``attempt`` / ``renew`` / ``release``; a token that no longer matches
the point's *current* lease (the lease was reaped and re-granted, or
the point already settled) raises :class:`StaleWriteError` *before*
anything is journaled, and the rejection itself is recorded as a
durable ``stale_write`` event.  This is what stops a SIGSTOP'd zombie
executor that wakes after its lease was rebalanced from committing a
stale result: with fencing, the journal carries exactly one
``complete`` per point.

The store makes no policy decisions: *when* to retry versus quarantine
is the service's call (it consults the existing seeded
:class:`~repro.resilience.supervisor.RetryPolicy`); the store only
applies recorded transitions, identically live and during replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.coyote.errors import SimulationError
from repro.service.journal import Journal

# Terminal point states (nothing left to execute).
DONE_STATES = ("done", "quarantined", "cancelled")


class ServiceError(SimulationError):
    """A campaign-service usage or lifecycle error."""


class QueueFullError(ServiceError):
    """The bounded submission queue is full; the submit was rejected.

    Backpressure by rejection: a full service refuses new campaigns
    loudly instead of wedging every caller behind an unbounded queue.
    """


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in this service."""


class StaleWriteError(ServiceError):
    """A fenced write carried a token that is no longer current.

    Raised *before* journaling, so a zombie executor (SIGSTOP'd past
    its lease, reaped, then resumed) can never append a ``complete`` or
    ``attempt`` for a lease it no longer holds.  The rejection is
    recorded separately as a ``stale_write`` journal event so operators
    can audit how often fencing fired.
    """


@dataclass
class JobStatus:
    """One job's queue-state summary (all counts are points)."""

    job_id: str
    state: str                  # "active" | "cancelled"
    total: int
    pending: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0             # done but with a failure record
    quarantined: int = 0
    cancelled: int = 0
    cache_hits: int = 0

    @property
    def complete(self) -> bool:
        """No point has execution left (done/quarantined/cancelled)."""
        return self.pending == 0 and self.leased == 0

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id, "state": self.state,
            "total": self.total, "pending": self.pending,
            "leased": self.leased, "done": self.done,
            "failed": self.failed, "quarantined": self.quarantined,
            "cancelled": self.cancelled, "cache_hits": self.cache_hits,
            "complete": self.complete,
        }


class JobStore:
    """Queue state over a :class:`~repro.service.journal.Journal`.

    ``max_queue`` bounds the number of points with execution still
    outstanding (pending + leased) across all jobs; a submit that would
    exceed it raises :class:`QueueFullError` without journaling
    anything.
    """

    def __init__(self, journal: Journal, *, max_queue: int = 4096,
                 compact_every: int = 512):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.journal = journal
        self.max_queue = max_queue
        self.compact_every = compact_every
        self.jobs: dict[str, dict] = {}
        self.fence_counter = 0
        self.stale_writes = 0

    # -- recovery ----------------------------------------------------------

    def open(self, *, readonly: bool = False) -> "JobStore":
        """Load the snapshot, replay the journal, ready for appends.

        ``readonly=True`` reconstructs state without opening the
        journal for writing — the lock-free path behind status reads
        while another process is serving.
        """
        state, events = self.journal.load(readonly=readonly)
        if state is not None:
            self.jobs = state["jobs"]
            # Pre-fencing snapshots carry neither counter; default 0.
            self.fence_counter = state.get("fence", 0)
            self.stale_writes = state.get("stale_writes", 0)
        for event in events:
            self._apply(event)
        return self

    def state_dict(self) -> dict:
        return {"jobs": self.jobs, "fence": self.fence_counter,
                "stale_writes": self.stale_writes}

    def compact(self) -> None:
        self.journal.compact(self.state_dict())

    def close(self) -> None:
        self.journal.close()

    def _record(self, type: str, **fields: Any) -> dict:
        event = self.journal.append(type, **fields)
        self._apply(event)
        if self.compact_every and self.journal.appends >= self.compact_every:
            self.compact()
        return event

    # -- event application (the single replay/live path) -------------------

    def _apply(self, event: dict) -> None:
        handler = getattr(self, f"_apply_{event['type']}", None)
        if handler is None:
            raise ServiceError(
                f"unknown journal event type {event['type']!r}")
        handler(event)

    def _apply_submit(self, event: dict) -> None:
        points = [
            {"index": index, "settings": settings, "state": "pending",
             "attempts": [], "lease": None, "cache_key": None,
             "verified": None, "failure": None, "cached": False}
            for index, settings in enumerate(event["points"])]
        self.jobs[event["job"]] = {
            "spec": event["spec"], "state": "active",
            "order": event["seq"], "points": points}

    def _apply_claim(self, event: dict) -> None:
        point = self._point(event["job"], event["index"])
        fence = event.get("fence")
        point["state"] = "leased"
        point["lease"] = {"worker": event["worker"],
                          "expires": event["expires"],
                          "fence": fence}
        if fence is not None:
            self.fence_counter = max(self.fence_counter, fence)

    def _apply_stale_write(self, event: dict) -> None:
        self.stale_writes += 1

    def _apply_renew(self, event: dict) -> None:
        point = self._point(event["job"], event["index"])
        if point["lease"] is not None:
            point["lease"]["expires"] = event["expires"]

    def _stale_fenced(self, point: dict, event: dict) -> bool:
        """True when a fenced event no longer matches the live lease.

        Commands reject stale fences before journaling, so this only
        fires on replay of journals written by pre-fencing code paths
        or hand-edited journals — defence in depth, same outcome:
        stale writes never mutate a settled or re-leased point.
        """
        fence = event.get("fence")
        if fence is None:
            return False
        lease = point["lease"]
        return lease is None or lease.get("fence") != fence

    def _apply_attempt(self, event: dict) -> None:
        point = self._point(event["job"], event["index"])
        if point["state"] in DONE_STATES:
            return  # stale observation of an already-settled point
        if self._stale_fenced(point, event):
            return
        point["attempts"].append({
            "outcome": event["outcome"],
            "exit_code": event.get("exit_code"),
            "stderr_tail": event.get("stderr_tail", "")})
        point["lease"] = None
        if event["final"]:
            point["state"] = "quarantined"
            point["failure"] = event.get("failure")
        else:
            point["state"] = "pending"

    def _apply_complete(self, event: dict) -> None:
        point = self._point(event["job"], event["index"])
        if point["state"] in DONE_STATES:
            return  # at-least-once: later duplicate completions no-op
        if self._stale_fenced(point, event):
            return
        point["state"] = "done"
        point["lease"] = None
        point["cache_key"] = event.get("cache_key")
        point["verified"] = event.get("verified")
        point["failure"] = event.get("failure")
        point["cached"] = bool(event.get("cached"))

    def _apply_release(self, event: dict) -> None:
        point = self._point(event["job"], event["index"])
        if point["state"] == "leased":
            point["state"] = "pending"
            point["lease"] = None

    def _apply_invalidate(self, event: dict) -> None:
        point = self._point(event["job"], event["index"])
        if point["state"] == "done":
            point["state"] = "pending"
            point["cache_key"] = None
            point["verified"] = None
            point["failure"] = None
            point["cached"] = False

    def _apply_cancel(self, event: dict) -> None:
        job = self._job(event["job"])
        job["state"] = "cancelled"
        for point in job["points"]:
            if point["state"] == "pending":
                point["state"] = "cancelled"
            # Leased points settle when their attempt finishes or the
            # lease expires; the claim loop stops handing out new ones.

    # -- commands (journal, then apply) ------------------------------------

    def submit(self, job_id: str, spec: dict,
               points: list[dict]) -> str:
        """Enqueue one job under ``job_id``.  Bounded: raises
        :class:`QueueFullError` when the new points would overflow.
        Re-submitting an id the store already knows is an idempotent
        no-op (crash-safe inbox ingestion relies on this)."""
        if job_id in self.jobs:
            return job_id
        outstanding = self.outstanding_points()
        if outstanding + len(points) > self.max_queue:
            raise QueueFullError(
                f"submission of {len(points)} point(s) rejected: "
                f"{outstanding} outstanding, queue bound is "
                f"{self.max_queue}",
                outstanding=outstanding, max_queue=self.max_queue)
        self._record("submit", job=job_id, spec=spec, points=points)
        return job_id

    def claim(self, worker: str, now: float, lease_seconds: float,
              eligible: Callable[[str, dict], bool] | None = None,
              ) -> tuple[str, dict] | None:
        """Lease the next pending point (submission order, then index).

        Returns ``(job_id, point_record)`` or ``None`` when nothing is
        claimable.  ``eligible`` lets the caller veto points (retry
        backoff windows live with the service, not the store).
        """
        for job_id in self.jobs_in_order():
            job = self.jobs[job_id]
            if job["state"] != "active":
                continue
            for point in job["points"]:
                if point["state"] != "pending":
                    continue
                if eligible is not None and not eligible(job_id, point):
                    continue
                self._record("claim", job=job_id,
                             index=point["index"], worker=worker,
                             expires=now + lease_seconds,
                             fence=self.fence_counter + 1)
                return job_id, point
        return None

    def check_fence(self, job_id: str, index: int,
                    fence: int | None) -> None:
        """Reject a write whose fencing token is no longer current.

        ``fence=None`` skips the check (unfenced legacy caller, or a
        store-authoritative transition like a dispatcher reap).  A
        mismatch journals a durable ``stale_write`` event and raises
        :class:`StaleWriteError` — the caller's write never reaches the
        journal.
        """
        if fence is None:
            return
        point = self._point(job_id, index)
        lease = point["lease"]
        held = None if lease is None else lease.get("fence")
        if point["state"] == "leased" and held == fence:
            return
        self._record("stale_write", job=job_id, index=index,
                     fence=fence, held=held, state=point["state"])
        raise StaleWriteError(
            f"stale fenced write on {job_id}[{index}]: token {fence} "
            f"but point is {point['state']!r} under fence {held}",
            job=job_id, index=index, fence=fence, held=held,
            state=point["state"])

    def renew(self, job_id: str, index: int, now: float,
              lease_seconds: float, *, fence: int | None = None) -> None:
        self.check_fence(job_id, index, fence)
        self._record("renew", job=job_id, index=index,
                     expires=now + lease_seconds)

    def complete(self, job_id: str, index: int, *,
                 cache_key: str | None, verified: bool | None,
                 failure: dict | None, cached: bool = False,
                 fence: int | None = None) -> None:
        self.check_fence(job_id, index, fence)
        self._record("complete", job=job_id, index=index,
                     cache_key=cache_key, verified=verified,
                     failure=failure, cached=cached, fence=fence)

    def attempt(self, job_id: str, index: int, *, outcome: str,
                exit_code: int | None, stderr_tail: str, final: bool,
                failure: dict | None = None,
                fence: int | None = None) -> None:
        self.check_fence(job_id, index, fence)
        self._record("attempt", job=job_id, index=index,
                     outcome=outcome, exit_code=exit_code,
                     stderr_tail=stderr_tail, final=final,
                     failure=failure, fence=fence)

    def release(self, job_id: str, index: int, *,
                fence: int | None = None) -> None:
        self.check_fence(job_id, index, fence)
        self._record("release", job=job_id, index=index)

    def invalidate(self, job_id: str, index: int) -> None:
        self._record("invalidate", job=job_id, index=index)

    def cancel(self, job_id: str) -> None:
        self._job(job_id)  # raise JobNotFoundError before journaling
        self._record("cancel", job=job_id)

    # -- queries -----------------------------------------------------------

    def _job(self, job_id: str) -> dict:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobNotFoundError(
                f"no job {job_id!r} in this service "
                f"(known: {sorted(self.jobs) or 'none'})") from None

    def _point(self, job_id: str, index: int) -> dict:
        return self._job(job_id)["points"][index]

    def outstanding_points(self) -> int:
        """Points still owed execution (pending + leased), all jobs."""
        return sum(1 for job in self.jobs.values()
                   for point in job["points"]
                   if point["state"] in ("pending", "leased"))

    def jobs_in_order(self) -> list[str]:
        """Job ids in submission order."""
        return sorted(self.jobs, key=lambda job_id:
                      self.jobs[job_id]["order"])

    def expired_leases(self, now: float) -> list[tuple[str, dict]]:
        """Every leased point whose wall-clock lease has lapsed."""
        lapsed = []
        for job_id in self.jobs_in_order():
            for point in self.jobs[job_id]["points"]:
                lease = point["lease"]
                if (point["state"] == "leased" and lease is not None
                        and lease["expires"] <= now):
                    lapsed.append((job_id, point))
        return lapsed

    def active_leases(self) -> int:
        return sum(1 for job in self.jobs.values()
                   for point in job["points"]
                   if point["state"] == "leased")

    def has_work(self) -> bool:
        return any(job["state"] == "active"
                   and any(point["state"] in ("pending", "leased")
                           for point in job["points"])
                   for job in self.jobs.values())

    def status(self, job_id: str) -> JobStatus:
        job = self._job(job_id)
        status = JobStatus(job_id=job_id, state=job["state"],
                           total=len(job["points"]))
        for point in job["points"]:
            state = point["state"]
            if state == "pending":
                status.pending += 1
            elif state == "leased":
                status.leased += 1
            elif state == "done":
                status.done += 1
                if point["failure"] is not None:
                    status.failed += 1
                if point["cached"]:
                    status.cache_hits += 1
            elif state == "quarantined":
                status.quarantined += 1
            elif state == "cancelled":
                status.cancelled += 1
        return status

    def job_ids(self) -> list[str]:
        return self.jobs_in_order()
