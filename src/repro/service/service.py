"""The durable campaign service: submit sweeps, survive anything.

:class:`CampaignService` turns ``repro.api.sweep()`` from a library
call into a crash-consistent job system rooted in one directory::

    root/
      journal.jsonl        the event journal (single writer, locked)
      journal.jsonl.snap   checksummed snapshot (compaction)
      inbox/               spooled submissions from other processes
      cache/               content-addressed, checksummed results

Execution model — at-least-once, made safe by idempotence:

* **Claims are leases.**  The executor claims a pending point under a
  wall-clock lease and renews it from the worker's heartbeats.  A
  service or executor that dies simply stops renewing; whoever opens
  the store next observes the expiry and reclaims the point.  A lease
  whose owner is *provably* dead (same host, PID gone) is released
  immediately without spending an attempt — a crashed service must
  not eat a point's retry budget; only a silent/wedged owner does.
* **Workers never touch the journal or the cache.**  A point runs in a
  child process (the PR-5 worker, heartbeats included); only the
  parent journals transitions and writes cache entries, so an orphaned
  worker left behind by a SIGKILLed service can corrupt nothing — it
  dies on its next pipe write, and at worst its work is recomputed.
* **Completions are idempotent.**  Results live in the
  content-addressed cache keyed by (config digest, kernel digest,
  seed); a point executed twice writes the same bytes under the same
  key, and the job store ignores duplicate ``complete`` events.
* **Failures flow into the existing machinery.**  Crashed or expired
  attempts are retried under the seeded
  :class:`~repro.resilience.supervisor.RetryPolicy`; a point that
  exhausts its budget is quarantined as a
  :class:`~repro.resilience.supervisor.QuarantinedPoint`, exactly like
  a supervised in-process sweep.

Cross-process shape: the serving process holds the journal lock; other
processes submit by spooling JSON files into ``inbox/`` (atomic,
unique names, no lock needed) and read status lock-free from the
snapshot + journal.  ``repro.api.submit/status/result/cancel`` and the
``coyote-sim serve`` / ``coyote-sim jobs`` CLI wrap exactly this.
"""

from __future__ import annotations

import json
import os
import secrets
import signal
import socket
import tempfile
import time
from multiprocessing import connection
from pathlib import Path
from typing import Any, Callable

import multiprocessing

from repro.coyote.config import SimulationConfig
from repro.coyote.parallel import RemoteError, _worker_main
from repro.coyote.sweep import Sweep, SweepPoint, SweepTable
from repro.kernels import KERNELS, instantiate
from repro.resilience import supervisor as supervision
from repro.resilience.locking import PathLock
from repro.resilience.supervisor import (
    AttemptRecord,
    QuarantinedPoint,
    RetryPolicy,
)
from repro.service.cache import (
    ResultCache,
    config_digest,
    kernel_digest,
    result_key,
)
from repro.service.journal import Journal
from repro.service.store import (
    JobNotFoundError,
    JobStatus,
    JobStore,
    QueueFullError,
    ServiceError,
    StaleWriteError,
)
from repro.telemetry.campaign import ServiceMonitor

__all__ = [
    "CampaignService",
    "JobNotFoundError",
    "JobStatus",
    "QueueFullError",
    "ServiceError",
    "StaleWriteError",
    "assemble_result",
    "build_spec",
    "new_job_id",
    "readonly_store",
    "spec_points",
    "spool_cancel",
    "spool_submission",
]

# Parent-side wait granularity for worker pipes.
_POLL_SECONDS = 0.05


def _service_worker_main(inherited_fds, *args) -> None:
    # A forked worker inherits the parent's journal-lock descriptor,
    # and flock follows the open file, not the process: an orphan left
    # behind by a SIGKILLed service would keep the root locked — and a
    # restarted service locked out — until the orphan happened to die.
    # Drop the inherited handles before doing any work.
    for fd in inherited_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    _worker_main(*args)


def new_job_id() -> str:
    """A fresh, collision-resistant job id (client-generated, so
    submissions can be spooled without coordinating a counter)."""
    return f"job-{secrets.token_hex(6)}"


def build_spec(kernel: str, axes: dict[str, list], *, cores: int = 8,
               size: int | None = None, require_verified: bool = True,
               **overrides: Any) -> dict:
    """Validate and canonicalise one submission into a JSON spec."""
    if kernel not in KERNELS:
        raise ServiceError(
            f"unknown kernel {kernel!r} (the service runs named "
            f"kernels only; expected one of {sorted(KERNELS)})")
    if not axes:
        raise ServiceError("a submission needs at least one axis")
    spec = {"kernel": kernel, "cores": cores, "size": size,
            "axes": {name: list(values)
                     for name, values in axes.items()},
            "overrides": dict(overrides),
            "require_verified": require_verified}
    try:
        json.dumps(spec)
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"submission is not JSON-serialisable (service sweeps "
            f"take plain axis values): {exc}") from exc
    return spec


def spec_points(spec: dict) -> list[dict]:
    """The cartesian settings dicts of one spec, in sweep order."""
    return Sweep(base_cores=spec["cores"], axes=spec["axes"],
                 **spec["overrides"]).points()


def spool_submission(root: str | Path, spec: dict,
                     job_id: str | None = None) -> str:
    """Atomically drop one submission into the service inbox.

    The lock-free submission path: any process may spool while a
    server is running; the server ingests the file into its journal.
    """
    root = Path(root)
    inbox = root / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    job_id = job_id or new_job_id()
    body = json.dumps({"job_id": job_id, "spec": spec},
                      sort_keys=True, indent=1)
    fd, scratch = tempfile.mkstemp(dir=inbox, prefix=".spool-",
                                   suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        handle.write(body)
    os.replace(scratch, inbox / f"{job_id}.json")
    return job_id


def spool_cancel(root: str | Path, job_id: str) -> None:
    """Ask a running server to cancel ``job_id`` (lock-free).

    The marker applies once the server next ingests its inbox; a
    marker for a job the server never learns about lingers harmlessly.
    """
    inbox = Path(root) / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    (inbox / f"{job_id}.cancel").touch()


def readonly_store(root: str | Path) -> "JobStore":
    """Reconstruct a service's queue state without taking its lock.

    The lock-free query path: replays the snapshot + journal without
    opening them for writing, so it is always safe while a server is
    live (a torn tail is skipped, not truncated).
    """
    store = JobStore(Journal(Path(root) / "journal.jsonl"))
    store.open(readonly=True)
    return store


def assemble_result(store: JobStore, cache: ResultCache,
                    job_id: str) -> tuple[SweepTable | None,
                                          list[tuple[int, str]]]:
    """Build a job's :class:`SweepTable` from the store + cache.

    Returns ``(table, corrupt)`` where ``corrupt`` lists the
    ``(index, cache_key)`` of completed points whose cache entry could
    not be served (the cache has already quarantined them aside); when
    any exist the table is ``None`` and those points need recomputing.
    Journal-write-free, so the read-only API path shares it.
    """
    job = store._job(job_id)
    points: list[SweepPoint] = []
    corrupt: list[tuple[int, str]] = []
    for record in job["points"]:
        settings = record["settings"]
        state = record["state"]
        if state == "done" and record["cache_key"] is not None:
            cached = cache.get(record["cache_key"])
            if cached is None:
                corrupt.append((record["index"], record["cache_key"]))
                continue
            points.append(cached)
        elif state == "done":
            points.append(_failure_point(settings, record))
        elif state == "quarantined":
            points.append(SweepPoint(
                settings, None, False,
                _quarantine_error(settings, record)))
        elif state == "cancelled":
            points.append(SweepPoint(
                settings, None, False,
                ServiceError(f"point {settings} was cancelled")))
        else:
            raise ServiceError(
                f"{job_id}[{record['index']}] is still {state}; "
                f"wait for the job to complete")
    if corrupt:
        return None, corrupt
    return SweepTable(axes=dict(job["spec"]["axes"]),
                      points=points), []


def _failure_point(settings: dict, record: dict) -> SweepPoint:
    failure = record["failure"] or {
        "kind": "ServiceError", "message": "point failed"}
    return SweepPoint(
        settings, None, bool(record["verified"]),
        RemoteError(failure["kind"], failure["message"]))


def _quarantine_error(settings: dict, record: dict) -> QuarantinedPoint:
    attempts = [
        AttemptRecord(attempt=number, outcome=entry["outcome"],
                      exit_code=entry.get("exit_code"),
                      signal=(-entry["exit_code"]
                              if entry.get("exit_code") is not None
                              and entry["exit_code"] < 0 else None),
                      stderr_tail=entry.get("stderr_tail", ""))
        for number, entry in enumerate(record["attempts"], start=1)]
    failure = record.get("failure") or {}
    message = failure.get("message") or (
        f"service point {settings} quarantined after "
        f"{len(attempts)} attempt(s)")
    return QuarantinedPoint(message, attempts=attempts)


class _Running:
    """Parent-side state of one in-flight worker attempt."""

    def __init__(self, job_id: str, index: int, settings: dict,
                 cache_key: str | None, process, conn,
                 stderr_path: str | None, fence: int | None = None):
        self.job_id = job_id
        self.index = index
        self.settings = settings
        self.cache_key = cache_key
        self.process = process
        self.conn = conn
        self.stderr_path = stderr_path
        self.fence = fence
        self.last_renew = time.monotonic()


class CampaignService:
    """One durable campaign service rooted in a directory.

    Use as a context manager (or call :meth:`open`/:meth:`close`):
    opening acquires the journal lock, replays the journal, recovers
    provably-dead leases, and ingests any spooled submissions.
    """

    def __init__(self, root: str | Path, *, workers: int = 1,
                 max_queue: int = 4096, lease_seconds: float = 30.0,
                 retry: RetryPolicy | None = None, seed: int = 0,
                 heartbeat_seconds: float = 0.2,
                 term_grace_seconds: float = 2.0,
                 compact_every: int = 512, fsync: bool = False,
                 monitor: ServiceMonitor | None = None,
                 mp_context: str | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be > 0, got {lease_seconds}")
        self.root = Path(root)
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=0.1, max_delay=5.0)
        self.retry.validate()
        self.seed = seed
        self.heartbeat_seconds = heartbeat_seconds
        self.term_grace_seconds = term_grace_seconds
        self.monitor = monitor if monitor is not None else ServiceMonitor()
        journal = Journal(self.root / "journal.jsonl", fsync=fsync)
        self.store = JobStore(journal, max_queue=max_queue,
                              compact_every=compact_every)
        self.cache = ResultCache(self.root / "cache")
        self.worker_id = (f"{socket.gethostname()}:{os.getpid()}:"
                          f"{secrets.token_hex(4)}")
        self._lock = PathLock(self.root / "journal.jsonl")
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(mp_context)
        self._inflight: dict[Any, _Running] = {}
        self._not_before: dict[tuple[str, int], float] = {}
        self._kernel_digests: dict[str, str | None] = {}
        self._opened = False
        # Test hook: called with the _Running record right after a
        # worker spawns (chaos tests SIGKILL executors mid-lease here).
        self._chaos_on_spawn: Callable[[_Running], None] | None = None

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "CampaignService":
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "inbox").mkdir(exist_ok=True)
        self._lock.acquire()
        try:
            self.store.open()
            self._opened = True
            self._recover_dead_leases()
            self.ingest_inbox()
        except BaseException:
            self._opened = False
            self._lock.release()
            raise
        return self

    def close(self) -> None:
        if not self._opened:
            return
        self._drain()
        self.store.compact()
        self.store.close()
        self._lock.release()
        self._opened = False

    def __enter__(self) -> "CampaignService":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if not self._opened:
            raise ServiceError("service is not open (use it as a "
                               "context manager or call open())")

    def _now(self) -> float:
        """Lease-clock wall time; subclasses may inject a test clock."""
        return time.time()

    # -- submission --------------------------------------------------------

    def submit(self, kernel: str, axes: dict[str, list], *,
               cores: int = 8, size: int | None = None,
               require_verified: bool = True,
               job_id: str | None = None, **overrides: Any) -> str:
        """Enqueue one sweep campaign; returns its job id.

        Raises :class:`QueueFullError` (backpressure by rejection)
        when the bounded queue cannot take the new points.
        """
        self._require_open()
        spec = build_spec(kernel, axes, cores=cores, size=size,
                          require_verified=require_verified, **overrides)
        points = spec_points(spec)
        job_id = job_id or new_job_id()
        try:
            self.store.submit(job_id, spec, points)
        except QueueFullError as exc:
            self.monitor.rejected(str(exc))
            raise
        self.monitor.submitted(job_id, len(points))
        return job_id

    def ingest_inbox(self) -> int:
        """Fold spooled submissions into the journal; returns count.

        Crash-safe: ingestion journals the submit *then* unlinks the
        spool file, and re-ingesting a known job id is a no-op.  A
        submission the bounded queue cannot take is renamed to
        ``<job>.rejected`` (visible to the submitter) instead of
        wedging the inbox.
        """
        self._require_open()
        ingested = 0
        inbox = self.root / "inbox"
        for path in sorted(inbox.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                job_id = payload["job_id"]
                spec = payload["spec"]
                points = spec_points(spec)
            except Exception:
                path.rename(path.with_suffix(".corrupt"))
                self.monitor.rejected(f"unreadable submission {path.name}")
                continue
            if job_id not in self.store.jobs:
                try:
                    self.store.submit(job_id, spec, points)
                except QueueFullError as exc:
                    path.rename(path.with_suffix(".rejected"))
                    self.monitor.rejected(str(exc))
                    continue
                self.monitor.submitted(job_id, len(points))
                ingested += 1
            path.unlink(missing_ok=True)
        # Cancel markers apply after submissions, so cancelling a job
        # whose spool file was ingested in the same pass works.
        for path in sorted(inbox.glob("*.cancel")):
            job_id = path.name[:-len(".cancel")]
            if job_id in self.store.jobs:
                if self.store.jobs[job_id]["state"] == "active":
                    self.store.cancel(job_id)
                path.unlink(missing_ok=True)
        return ingested

    # -- queries -----------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        self._require_open()
        self.ingest_inbox()
        return self.store.status(job_id)

    def cancel(self, job_id: str) -> JobStatus:
        """Stop executing a job's remaining points (in-flight leases
        settle on their own); returns the resulting status."""
        self._require_open()
        self.ingest_inbox()
        self.store.cancel(job_id)
        return self.store.status(job_id)

    # -- results -----------------------------------------------------------

    def result(self, job_id: str, *, wait: bool = False) -> SweepTable:
        """The job's :class:`SweepTable`, assembled from the cache.

        A corrupt cache entry discovered here is quarantined aside and
        its point re-queued; with ``wait=True`` the service then runs
        the missing points itself, otherwise a :class:`ServiceError`
        reports what was re-queued.  Tables are bit-identical to an
        in-process ``repro.api.sweep()`` of the same campaign.
        """
        self._require_open()
        for _attempt in range(4):
            if wait:
                self.run()
            status = self.store.status(job_id)
            if not status.complete:
                if wait:
                    continue
                raise ServiceError(
                    f"{job_id} is not complete ({status.pending} "
                    f"pending, {status.leased} leased of "
                    f"{status.total}); run `coyote-sim serve`")
            table, requeued = self._assemble(job_id)
            if not requeued:
                return table
            if not wait:
                raise ServiceError(
                    f"{requeued} cached result(s) for {job_id} were "
                    f"corrupt; the points were quarantined aside and "
                    f"re-queued — run `coyote-sim serve` to recompute")
        raise ServiceError(
            f"results for {job_id} remained incomplete after repeated "
            f"recovery attempts")

    def _assemble(self, job_id: str) -> tuple[SweepTable | None, int]:
        table, corrupt = assemble_result(self.store, self.cache, job_id)
        for index, key in corrupt:
            # Corrupt or missing entry: never served, never fatal —
            # the cache set it aside; re-queue the point to recompute.
            self.monitor.cache_corrupt(key)
            self.store.invalidate(job_id, index)
        return table, len(corrupt)

    # -- the executor ------------------------------------------------------

    def run(self, *, max_seconds: float | None = None,
            stop: Callable[[], bool] | None = None) -> int:
        """Execute queued points until none remain (or ``stop`` says
        so); returns the number of points completed this call.

        The node-local executor tier: claims points under leases,
        serves cache hits without simulating, runs misses in worker
        processes with heartbeat-renewed leases, retries or
        quarantines failures, and reclaims expired leases — including
        those left behind by a previous, killed service process.
        """
        self._require_open()
        before = self.monitor.counters["completions"]
        deadline = (time.monotonic() + max_seconds
                    if max_seconds is not None else None)
        while True:
            if stop is not None and stop():
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            self.ingest_inbox()
            self._recover_dead_leases()
            self._reap_expired()
            progressed = self._fill_slots()
            progressed |= self._pump()
            self.monitor.observe_queue(self.store.outstanding_points(),
                                       self.store.active_leases())
            if not self._inflight and not self.store.has_work():
                break
            if not progressed and not self._inflight:
                # Only backoff windows or foreign leases remain.
                time.sleep(_POLL_SECONDS)
        return self.monitor.counters["completions"] - before

    def _eligible(self, job_id: str, point: dict) -> bool:
        not_before = self._not_before.get((job_id, point["index"]))
        return not_before is None or not_before <= self._now()

    def _fill_slots(self) -> bool:
        progressed = False
        while len(self._inflight) < self.workers:
            claimed = self.store.claim(self.worker_id, self._now(),
                                       self.lease_seconds,
                                       eligible=self._eligible)
            if claimed is None:
                return progressed
            job_id, point = claimed
            index = point["index"]
            fence = (point["lease"] or {}).get("fence")
            self.monitor.claimed(job_id, index)
            progressed = True
            key = self._cache_key(job_id, point["settings"])
            cached = self.cache.get(key) if key is not None else None
            if cached is not None:
                # Served from disk: no simulation, lease settled now.
                self.store.complete(
                    job_id, index, cache_key=key,
                    verified=cached.verified,
                    failure=cached.failure_record(), cached=True,
                    fence=fence)
                self.monitor.completed(job_id, index, cached=True)
                continue
            try:
                self._spawn(job_id, point, key, fence)
            except OSError:
                # Fork pressure: give the point back and breathe.
                self.store.release(job_id, index, fence=fence)
                self.monitor.released(job_id, index)
                time.sleep(_POLL_SECONDS)
                return progressed
        return progressed

    def _cache_key(self, job_id: str, settings: dict) -> str | None:
        spec = self.store.jobs[job_id]["spec"]
        if job_id not in self._kernel_digests:
            try:
                workload = instantiate(spec["kernel"], spec["cores"],
                                       spec["size"])
                self._kernel_digests[job_id] = kernel_digest(workload)
            except Exception:
                # The worker will record the deterministic failure.
                self._kernel_digests[job_id] = None
        kernel_hex = self._kernel_digests[job_id]
        if kernel_hex is None:
            return None
        try:
            config = SimulationConfig.for_cores(
                spec["cores"], **{**spec["overrides"], **settings})
        except Exception:
            return None
        return result_key(config_digest(config), kernel_hex,
                          config.resilience.fault_seed)

    def _workload_factory(self, job_id: str) -> Callable:
        spec = self.store.jobs[job_id]["spec"]
        kernel, cores, size = spec["kernel"], spec["cores"], spec["size"]

        def make_workload():
            return instantiate(kernel, cores, size)

        return make_workload

    def _spawn(self, job_id: str, point: dict,
               cache_key: str | None,
               fence: int | None = None) -> None:
        spec = self.store.jobs[job_id]["spec"]
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        fd, stderr_path = tempfile.mkstemp(prefix="coyote-service-",
                                           suffix=".stderr")
        os.close(fd)
        try:
            # Only fork children inherit our descriptors (spawn starts
            # from a fresh process whose fd numbers mean other files).
            inherited = []
            if self._context.get_start_method() == "fork" \
                    and self._lock.fd is not None:
                inherited = [self._lock.fd]
            process = self._context.Process(
                target=_service_worker_main,
                args=(inherited, child_conn, point["index"],
                      point["settings"], spec["cores"],
                      spec["overrides"], self._workload_factory(job_id),
                      spec["require_verified"],
                      self.heartbeat_seconds, stderr_path),
                daemon=True)
            process.start()
        except BaseException:
            parent_conn.close()
            child_conn.close()
            os.unlink(stderr_path)
            raise
        child_conn.close()
        running = _Running(job_id, point["index"], point["settings"],
                           cache_key, process, parent_conn, stderr_path,
                           fence)
        self._inflight[parent_conn] = running
        if self._chaos_on_spawn is not None:
            self._chaos_on_spawn(running)

    def _pump(self) -> bool:
        if not self._inflight:
            return False
        progressed = False
        for conn in connection.wait(list(self._inflight),
                                    _POLL_SECONDS):
            running = self._inflight.get(conn)
            if running is None:
                continue
            try:
                message = conn.recv()
            except EOFError:
                self._worker_died(running, "crash")
                progressed = True
                continue
            if message[0] == "hb":
                self._heartbeat(running)
                continue
            _tag, _index, point = message
            self._worker_finished(running, point)
            progressed = True
        return progressed

    def _heartbeat(self, running: _Running) -> None:
        # Renew the lease at roughly a third of its term: enough slack
        # that one late heartbeat never expires a healthy worker, and
        # the journal is not flooded with renewals.
        now = time.monotonic()
        if now - running.last_renew >= self.lease_seconds / 3:
            running.last_renew = now
            try:
                self.store.renew(running.job_id, running.index,
                                 self._now(), self.lease_seconds,
                                 fence=running.fence)
            except StaleWriteError:
                # The lease lapsed and was reaped out from under this
                # worker; the expiry sweep will retire it.
                self.monitor.stale_write(running.job_id, running.index)

    def _retire(self, running: _Running) -> str:
        process = running.process
        if process.is_alive():
            process.terminate()
            process.join(self.term_grace_seconds)
            if process.is_alive():
                process.kill()
                process.join()
        else:
            process.join()
        try:
            running.conn.close()
        except OSError:
            pass
        self._inflight.pop(running.conn, None)
        tail = supervision.read_stderr_tail(running.stderr_path)
        if running.stderr_path is not None:
            try:
                os.unlink(running.stderr_path)
            except OSError:
                pass
            running.stderr_path = None
        return tail

    def _worker_finished(self, running: _Running,
                         point: SweepPoint) -> None:
        self._retire(running)
        cache_key = None
        if point.results is not None and running.cache_key is not None:
            # Deterministic outcome (including a verification failure
            # that kept its results): cacheable and shareable.
            if self.cache.put(running.cache_key, point):
                cache_key = running.cache_key
        try:
            self.store.complete(running.job_id, running.index,
                                cache_key=cache_key,
                                verified=point.verified,
                                failure=point.failure_record(),
                                cached=False, fence=running.fence)
        except StaleWriteError:
            # The lease was reaped while the result was in flight; the
            # point belongs to someone else now.  The cache write above
            # is harmless (same key, same bytes) but the journal stays
            # single-completion.
            self.monitor.stale_write(running.job_id, running.index)
            return
        self.monitor.completed(running.job_id, running.index,
                               cached=False)
        self._not_before.pop((running.job_id, running.index), None)

    def _worker_died(self, running: _Running, outcome: str) -> None:
        tail = self._retire(running)
        exit_code = running.process.exitcode
        self._record_failure(running.job_id, running.index,
                             running.settings, outcome, exit_code, tail,
                             fence=running.fence)

    def _record_failure(self, job_id: str, index: int, settings: dict,
                        outcome: str, exit_code: int | None,
                        tail: str, fence: int | None = None) -> None:
        attempts = len(self.store.jobs[job_id]["points"][index]
                       ["attempts"]) + 1
        final = attempts >= self.retry.max_attempts
        failure = None
        if final:
            suffix = (f" (exit code {exit_code})"
                      if exit_code is not None else "")
            failure = {"kind": "QuarantinedPoint",
                       "message": f"service point {settings} "
                                  f"quarantined after {attempts} "
                                  f"attempt(s); last outcome: "
                                  f"{outcome}{suffix}"}
        try:
            self.store.attempt(job_id, index, outcome=outcome,
                               exit_code=exit_code, stderr_tail=tail,
                               final=final, failure=failure, fence=fence)
        except StaleWriteError:
            self.monitor.stale_write(job_id, index)
            return
        if final:
            self.monitor.quarantined(job_id, index, attempts)
        else:
            backoff = self.retry.backoff_seconds(
                attempts, seed=self.seed, index=index)
            self._not_before[(job_id, index)] = self._now() + backoff
            self.monitor.retry(job_id, index, attempts, backoff)

    # -- lease recovery ----------------------------------------------------

    def _reap_expired(self) -> None:
        now = self._now()
        for job_id, point in self.store.expired_leases(now):
            index = point["index"]
            running = self._find_inflight(job_id, index)
            self.monitor.lease_expired(job_id, index)
            if running is not None:
                # Our own wedged worker: its heartbeats stopped long
                # enough for the lease to lapse.  Reap it.
                tail = self._retire(running)
                self._record_failure(job_id, index, point["settings"],
                                     "lease-expired",
                                     running.process.exitcode, tail)
            else:
                # A dead (or foreign, silent) executor's lease.
                self._record_failure(job_id, index, point["settings"],
                                     "lease-expired", None, "")

    def _recover_dead_leases(self) -> None:
        """Release leases whose owner is provably dead (same host,
        PID gone) without charging the point an attempt — a killed
        service is not the point's fault."""
        hostname = socket.gethostname()
        for job_id in self.store.jobs_in_order():
            for point in self.store.jobs[job_id]["points"]:
                lease = point["lease"]
                if point["state"] != "leased" or lease is None:
                    continue
                owner = str(lease.get("worker", ""))
                parts = owner.split(":")
                if len(parts) != 3 or parts[0] != hostname:
                    continue
                if owner == self.worker_id:
                    continue
                try:
                    pid = int(parts[1])
                except ValueError:
                    continue
                if not _pid_alive(pid):
                    self.store.release(job_id, point["index"])
                    self.monitor.released(job_id, point["index"])

    def _find_inflight(self, job_id: str,
                       index: int) -> _Running | None:
        for running in self._inflight.values():
            if running.job_id == job_id and running.index == index:
                return running
        return None

    def _drain(self) -> None:
        """Stop in-flight work gracefully: terminate workers, release
        their leases (no attempt charged), persist."""
        for running in list(self._inflight.values()):
            self._retire(running)
            try:
                self.store.release(running.job_id, running.index,
                                   fence=running.fence)
            except StaleWriteError:
                self.monitor.stale_write(running.job_id, running.index)
                continue
            self.monitor.released(running.job_id, running.index)

    # -- the long-running server loop --------------------------------------

    def serve(self, *, poll_seconds: float = 0.2, drain: bool = False,
              max_seconds: float | None = None) -> int:
        """Serve until signalled (or, with ``drain=True``, until the
        queue empties); returns an exit-taxonomy code.

        SIGTERM and SIGINT both drain gracefully — in-flight workers
        are stopped, their leases released, state compacted — then
        exit 0 (SIGTERM: clean shutdown) or 130 (SIGINT, the shell
        convention the CLI taxonomy already documents).
        """
        self._require_open()
        received: dict[str, int] = {}

        def handler(signum, frame):
            received["signal"] = signum

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, handler)
        deadline = (time.monotonic() + max_seconds
                    if max_seconds is not None else None)
        try:
            while "signal" not in received:
                self.run(stop=lambda: "signal" in received)
                if "signal" in received:
                    break
                if deadline is not None and time.monotonic() > deadline:
                    break
                if drain and not self.store.has_work() \
                        and not list((self.root / "inbox").glob("*.json")):
                    break
                time.sleep(poll_seconds)
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)
        self._drain()
        self.store.compact()
        if received.get("signal") == signal.SIGINT:
            return 130
        return 0


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
