"""Crash-consistent event journal: append-only JSONL plus snapshots.

The durable campaign service records every state transition (submit,
claim, heartbeat, complete, quarantine, ...) as one JSON line appended
to a journal file.  Recovery is replay: the full queue state is a pure
fold over the event stream, so a service killed at *any* write boundary
reconstructs exactly the state whose events reached the disk.

Two mechanisms make that safe:

* **Torn-tail tolerance.**  A hard kill mid-append leaves at most one
  partial line at the end of the file.  A strict prefix of a JSON
  document is never itself valid JSON (the closing brace comes last),
  so replay can tell "torn tail" (drop it — the event never committed)
  from "corrupt interior" (raise
  :class:`~repro.resilience.checkpoint.CampaignCorruptError` — the
  disk lied) without per-line checksums.

* **Sequence-numbered compaction.**  An unbounded journal would make
  recovery O(campaign history), so the state is periodically folded
  into a checksummed snapshot (atomic via temp file + ``os.replace``),
  after which the journal is atomically reset.  Every event carries a
  monotonic ``seq`` and the snapshot records the last seq it folded in;
  replay skips journal events already covered by the snapshot.  A kill
  between the two replaces is therefore harmless: the old journal's
  events are all ``<= snapshot.seq`` and replay ignores them.

Durability scope: flush-to-OS per append, which survives process kills
(SIGKILL included).  Pass ``fsync=True`` to also survive host power
loss at the cost of one ``fsync`` per event.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.resilience.checkpoint import CampaignCorruptError

JOURNAL_FORMAT = 1
_SNAPSHOT_MAGIC = b"coyote-snapshot"


class Journal:
    """One append-only JSONL event log with snapshot compaction.

    The owner (the job store) folds events into state; the journal only
    guarantees that what :meth:`append` returned is what :meth:`replay`
    yields after any crash.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False):
        self.path = Path(path)
        self.snapshot_path = self.path.with_name(
            self.path.name + ".snap")
        self.fsync = fsync
        self._handle = None
        self._seq = 0
        self.appends = 0

    @property
    def seq(self) -> int:
        """The sequence number of the most recent event."""
        return self._seq

    # -- recovery ----------------------------------------------------------

    def load(self, *, readonly: bool = False
             ) -> tuple[dict | None, list[dict]]:
        """Read ``(snapshot_state, events)`` and open for appending.

        ``snapshot_state`` is ``None`` when no snapshot exists; the
        events are exactly those not yet folded into the snapshot, in
        append order.  Also primes the internal sequence counter so new
        appends continue the history.  ``readonly=True`` only replays —
        it neither opens the file for appending nor truncates a torn
        tail, so a live writer is never disturbed.
        """
        state, snap_seq = self._read_snapshot()
        events = []
        last_seq = snap_seq
        for event in self._replay_lines(readonly=readonly):
            seq = event.get("seq")
            if not isinstance(seq, int):
                raise CampaignCorruptError(
                    f"{self.path}: journal event without a sequence "
                    f"number", path=self.path)
            if seq <= snap_seq:
                continue  # already folded into the snapshot
            if seq <= last_seq:
                raise CampaignCorruptError(
                    f"{self.path}: journal sequence went backwards "
                    f"({seq} after {last_seq})", path=self.path)
            last_seq = seq
            events.append(event)
        self._seq = max(snap_seq, last_seq)
        if not readonly:
            self._repair_missing_newline()
            self._open_for_append()
        return state, events

    def _repair_missing_newline(self) -> None:
        # A kill after an event's bytes but before its newline leaves a
        # complete, valid final line with no terminator; the event
        # committed, but a raw append would concatenate onto it.  Add
        # the missing terminator before reopening for appends.
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with self.path.open("rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")

    def _replay_lines(self, *, readonly: bool = False) -> Iterator[dict]:
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            lines = handle.read().split(b"\n")
        # A trailing newline yields one empty final chunk; drop it.
        if lines and lines[-1] == b"":
            lines.pop()
        for position, line in enumerate(lines):
            try:
                event = json.loads(line)
            except ValueError:
                if position == len(lines) - 1:
                    # Torn tail: the append never committed.  Truncate
                    # it away so the next append starts a clean line.
                    if not readonly:
                        self._truncate_tail(line)
                    return
                raise CampaignCorruptError(
                    f"{self.path}: journal line {position + 1} is not "
                    f"valid JSON (mid-file corruption)",
                    path=self.path) from None
            if not isinstance(event, dict):
                raise CampaignCorruptError(
                    f"{self.path}: journal line {position + 1} is not "
                    f"an event object", path=self.path)
            yield event

    def _truncate_tail(self, torn_line: bytes) -> None:
        size = self.path.stat().st_size
        keep = size - len(torn_line)
        # The torn line may or may not have been followed by nothing;
        # it is by construction the file's final bytes.
        with self.path.open("rb+") as handle:
            handle.truncate(max(0, keep))

    # -- appending ---------------------------------------------------------

    def _open_for_append(self) -> None:
        self.close()
        self._handle = self.path.open("ab")

    def append(self, type: str, **fields: Any) -> dict:
        """Durably append one event; returns it (with its ``seq``)."""
        if self._handle is None:
            raise CampaignCorruptError(
                f"{self.path}: journal is not open (call load() first)",
                path=self.path)
        self._seq += 1
        event = {"seq": self._seq, "type": type, **fields}
        line = json.dumps(event, sort_keys=True,
                          separators=(",", ":")).encode()
        self._handle.write(line + b"\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.appends += 1
        return event

    # -- compaction --------------------------------------------------------

    def compact(self, state: dict) -> None:
        """Fold ``state`` into a fresh snapshot and reset the journal.

        Crash-safe at every boundary: the snapshot replace and the
        journal reset are each atomic, and the seq guard makes the
        window between them harmless (see the module docstring).
        """
        body = json.dumps({"format": JOURNAL_FORMAT, "seq": self._seq,
                           "state": state},
                          sort_keys=True).encode()
        digest = hashlib.sha256(body).hexdigest()
        scratch = self.snapshot_path.with_name(
            self.snapshot_path.name + ".tmp")
        with scratch.open("wb") as handle:
            handle.write(b"%s %d %s\n" % (_SNAPSHOT_MAGIC,
                                          JOURNAL_FORMAT,
                                          digest.encode("ascii")))
            handle.write(body)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(scratch, self.snapshot_path)
        # Reset the journal atomically: replace it with an empty file.
        journal_scratch = self.path.with_name(self.path.name + ".tmp")
        journal_scratch.write_bytes(b"")
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        os.replace(journal_scratch, self.path)
        self._open_for_append()
        self.appends = 0

    def _read_snapshot(self) -> tuple[dict | None, int]:
        if not self.snapshot_path.exists():
            return None, 0
        with self.snapshot_path.open("rb") as handle:
            header = handle.readline(256)
            body = handle.read()
        parts = header.split()
        if len(parts) != 3 or parts[0] != _SNAPSHOT_MAGIC:
            raise CampaignCorruptError(
                f"{self.snapshot_path} is not a service snapshot",
                path=self.snapshot_path)
        if hashlib.sha256(body).hexdigest().encode("ascii") != parts[2]:
            raise CampaignCorruptError(
                f"{self.snapshot_path} failed its checksum (snapshot "
                f"is corrupt or truncated)", path=self.snapshot_path)
        payload = json.loads(body)
        if payload.get("format") != JOURNAL_FORMAT:
            raise CampaignCorruptError(
                f"{self.snapshot_path}: snapshot format "
                f"{payload.get('format')} is not supported",
                path=self.snapshot_path)
        return payload["state"], int(payload["seq"])

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
