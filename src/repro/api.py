"""The one front door to the Coyote reproduction.

Every supported entry point — running one simulation, sweeping a design
space (serially or across a worker pool), replaying a checkpoint,
building a configuration — is importable from here, and the blessed
types are re-exported under their canonical names:

>>> from repro.api import run, sweep
>>> outcome = run("scalar-matmul", cores=4, size=8)
>>> outcome.verified and outcome.results.succeeded()
True
>>> table = sweep("scalar-matmul", cores=4, size=8,
...               axes={"l2_mode": ["shared", "private"]}, workers=2)
>>> len(table.points)
2

``repro.coyote`` and ``repro.resilience`` re-export from this module,
so old import paths keep working; new code should import from
``repro.api``.  The stability contract (public vs internal, the
migration table from historical spellings) is documented in
``docs/API.md`` and enforced in CI by ``python -m
repro.tools.check_api``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.coyote.config import ConfigBuilder, SimulationConfig
from repro.coyote.errors import SimulationError
from repro.coyote.parallel import ParallelSweep, RemoteError, WorkerCrash
from repro.coyote.simulation import Simulation
from repro.coyote.stats import CoreStats, SimulationResults
from repro.coyote.sweep import (
    Sweep,
    SweepError,
    SweepPoint,
    SweepTable,
)
from repro.kernels import KERNELS, instantiate
from repro.memhier.noc import NocConfig, RoutingPolicy
from repro.resilience.checkpoint import (
    CampaignCorruptError,
    CheckpointError,
    load_checkpoint,
    restore_simulation,
    save_checkpoint,
)
from repro.resilience.config import FaultSpec, ResilienceConfig
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import (
    AttemptRecord,
    DegradationEvent,
    QuarantinedPoint,
    RetryPolicy,
    SupervisorPolicy,
)
from repro.resilience.locking import CampaignLockError
from repro.resilience.watchdog import DeadlockError
from repro.service.cache import ResultCache
from repro.service.cluster import ClusterDispatcher, ClusterNode
from repro.service.service import (
    CampaignService,
    assemble_result,
    build_spec,
    readonly_store,
    spec_points,
    spool_cancel,
    spool_submission,
)
from repro.service.store import (
    JobNotFoundError,
    JobStatus,
    QueueFullError,
    ServiceError,
    StaleWriteError,
)
from repro.service.transport import ServiceFaultPlan, ServiceFaultSpec
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.guestprof import CpiStack, GuestProfile, HotBlock

__all__ = [
    # entry points
    "run",
    "sweep",
    "replay",
    # the durable campaign service
    "submit",
    "status",
    "result",
    "cancel",
    "CampaignService",
    "JobStatus",
    "ServiceError",
    "QueueFullError",
    "JobNotFoundError",
    "CampaignCorruptError",
    "CampaignLockError",
    # the multi-node cluster tier
    "ClusterDispatcher",
    "ClusterNode",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "StaleWriteError",
    # simulation
    "Simulation",
    "SimulationConfig",
    "NocConfig",
    "RoutingPolicy",
    "ConfigBuilder",
    "SimulationResults",
    "CoreStats",
    "RunOutcome",
    # sweeping
    "Sweep",
    "ParallelSweep",
    "SweepPoint",
    "SweepTable",
    "SweepError",
    "WorkerCrash",
    "RemoteError",
    # supervised campaign runtime
    "SupervisorPolicy",
    "RetryPolicy",
    "QuarantinedPoint",
    "AttemptRecord",
    "DegradationEvent",
    # guest-side performance introspection
    "GuestProfile",
    "CpiStack",
    "HotBlock",
    # configuration of the optional subsystems
    "TelemetryConfig",
    "ResilienceConfig",
    "FaultSpec",
    "FaultPlan",
    # checkpoints
    "save_checkpoint",
    "load_checkpoint",
    "restore_simulation",
    # errors
    "SimulationError",
    "DeadlockError",
    "CheckpointError",
]


@dataclass
class RunOutcome:
    """What :func:`run` and :func:`replay` hand back.

    ``verified`` is ``None`` when no workload reference was available
    to check against (a replayed checkpoint without kernel metadata).
    """

    results: SimulationResults
    verified: bool | None
    simulation: Simulation
    workload: Any = None

    @property
    def succeeded(self) -> bool:
        """Clean exits and (when checkable) a verified output."""
        return bool(self.results.succeeded()
                    and (self.verified is None or self.verified))

    @property
    def guest_profile(self) -> GuestProfile | None:
        """The guest-side profile (``run(..., profile=True)``), or
        ``None`` when profiling was off or the run paused."""
        if self.results is None:
            return None
        return self.results.guest_profile


def _resolve_workload(kernel, cores: int, size: int | None):
    """A kernel name, a Workload object, or a zero-arg factory."""
    if isinstance(kernel, str):
        return instantiate(kernel, cores, size)
    if callable(kernel) and not hasattr(kernel, "program"):
        return kernel()
    return kernel


def run(kernel, cores: int = 8, *, size: int | None = None,
        config: SimulationConfig | None = None,
        pause_at: int | None = None, profile: bool = False,
        **overrides) -> RunOutcome:
    """Run one kernel end-to-end and verify its output.

    ``kernel`` is a name from :data:`repro.kernels.KERNELS`, a built
    workload object, or a zero-argument workload factory.  ``config``
    supplies a full :class:`SimulationConfig`; otherwise one is built
    as ``SimulationConfig.for_cores(cores, **overrides)``.  With
    ``pause_at`` the simulation stops at that cycle for checkpointing
    (``outcome.results`` is ``None``-free only for completed runs, so
    paused runs return ``verified=None`` and no results access).
    ``profile=True`` switches on the guest profiler; the finished
    :class:`GuestProfile` is ``outcome.guest_profile`` and the
    simulated outcome is bit-identical to an unprofiled run.

    The trace-compiled ISS fast path is on by default; pass
    ``translate=False`` (a ``SimulationConfig`` field, so also a
    keyword override here) to run the plain interpreter instead.  The
    two produce bit-identical simulated outcomes — the switch only
    trades host speed for debuggability.
    """
    workload = _resolve_workload(kernel, cores, size)
    if config is None:
        config = SimulationConfig.for_cores(cores, **overrides)
    elif overrides:
        raise ValueError(
            f"pass either a full config or keyword overrides, not both "
            f"(got overrides {sorted(overrides)})")
    if profile and not config.telemetry.guest_profile:
        # Copy-on-enable: never mutate a caller-owned config.
        config = replace(config, telemetry=replace(
            config.telemetry, guest_profile=True))
    simulation = Simulation(config, workload.program)
    results = simulation.run(pause_at=pause_at)
    if simulation.paused:
        return RunOutcome(results=None, verified=None,
                          simulation=simulation, workload=workload)
    verified = workload.verify(simulation.memory)
    return RunOutcome(results=results, verified=verified,
                      simulation=simulation, workload=workload)


def sweep(kernel, cores: int = 8, *, axes: dict[str, list],
          size: int | None = None, workers: int = 1,
          on_error: str = "raise", require_verified: bool = True,
          progress: bool = False, campaign_path=None,
          policy: SupervisorPolicy | None = None,
          **base_overrides) -> SweepTable:
    """Sweep configuration axes for one kernel; returns the table.

    The cartesian product of ``axes`` is simulated — in-process for
    ``workers=1``, fanned out to a worker pool for ``workers=N`` with
    bit-identical results — and every extra keyword is applied to each
    point's base configuration.  ``kernel`` accepts the same spellings
    as :func:`run`, plus a factory taking the point's settings dict.

    ``policy`` (a :class:`SupervisorPolicy`) opts the campaign into the
    supervised lifecycle: worker heartbeats, a per-point wall-clock
    timeout, an RSS ceiling, bounded retries with seeded backoff, and
    quarantine (:class:`QuarantinedPoint`) of points that exhaust them;
    repeated pool-level failures degrade the worker count gracefully
    (``table.degradations``) instead of aborting the campaign.
    """
    if isinstance(kernel, str):
        name = kernel

        def make_workload():
            return instantiate(name, cores, size)
    else:
        make_workload = kernel if callable(kernel) else lambda: kernel
    return Sweep(base_cores=cores, axes=axes, **base_overrides).run(
        make_workload, require_verified=require_verified,
        on_error=on_error, workers=workers, progress=progress,
        campaign_path=campaign_path, policy=policy)


def replay(checkpoint: str | Path, *,
           pause_at: int | None = None) -> RunOutcome:
    """Resume a checkpoint and run it to completion.

    When the checkpoint's metadata records the kernel (the CLI writes
    ``kernel``/``cores``/``size``), the finished output is verified
    against the rebuilt workload; otherwise ``verified`` is ``None``.
    """
    simulation, metadata = load_checkpoint(checkpoint)
    results = simulation.run(pause_at=pause_at)
    if simulation.paused:
        return RunOutcome(results=None, verified=None,
                          simulation=simulation)
    workload = None
    verified = None
    if metadata.get("kernel") in KERNELS:
        workload = instantiate(metadata["kernel"],
                               metadata.get("cores",
                                            results.num_cores),
                               metadata.get("size"))
        verified = workload.verify(simulation.memory)
    return RunOutcome(results=results, verified=verified,
                      simulation=simulation, workload=workload)


# -- the durable campaign service (docs/RESILIENCE.md) ----------------------
#
# submit/status/result/cancel are the async counterpart of sweep():
# a campaign is enqueued against a service *root* directory and executed
# by whichever process runs ``coyote-sim serve --root <root>`` — possibly
# this one (``result(..., wait=True)`` runs the queue itself when no
# server holds the lock).  State is crash-consistent (journal + snapshot)
# and results are served from the content-addressed cache, bit-identical
# to an in-process ``sweep()`` of the same campaign.


def submit(kernel: str, *, root: str | Path, axes: dict[str, list],
           cores: int = 8, size: int | None = None,
           require_verified: bool = True, job_id: str | None = None,
           **overrides) -> str:
    """Enqueue a sweep campaign with the service at ``root``.

    Returns the job id (pass it to :func:`status` / :func:`result` /
    :func:`cancel`).  When no server holds the root's lock the
    submission is journaled directly and the bounded queue is enforced
    here (:class:`QueueFullError`); when a server is live the
    submission is spooled into its inbox (the server enforces the bound
    at ingestion — a rejected job shows up as ``<job>.rejected``).
    """
    spec = build_spec(kernel, axes, cores=cores, size=size,
                      require_verified=require_verified, **overrides)
    try:
        with CampaignService(root) as service:
            return service.submit(kernel, axes, cores=cores, size=size,
                                  require_verified=require_verified,
                                  job_id=job_id, **overrides)
    except CampaignLockError:
        return spool_submission(root, spec, job_id)


def status(job_id: str, *, root: str | Path) -> JobStatus:
    """The job's queue-state summary, read lock-free.

    A submission still spooled in the inbox reports state
    ``"spooled"``; one the bounded queue rejected raises
    :class:`QueueFullError`.
    """
    root = Path(root)
    store = readonly_store(root)
    try:
        return store.status(job_id)
    except JobNotFoundError:
        spooled = root / "inbox" / f"{job_id}.json"
        if spooled.exists():
            points = len(spec_points(
                json.loads(spooled.read_text())["spec"]))
            return JobStatus(job_id=job_id, state="spooled",
                             total=points, pending=points)
        if (root / "inbox" / f"{job_id}.rejected").exists():
            raise QueueFullError(
                f"{job_id} was rejected by the service's bounded "
                f"queue (see {root / 'inbox'}/{job_id}.rejected)"
            ) from None
        raise


def result(job_id: str, *, root: str | Path, wait: bool = False,
           workers: int = 1) -> SweepTable:
    """The completed job's :class:`SweepTable`.

    Lock-free when the job is already complete and its cache entries
    are healthy.  ``wait=True`` takes the service lock and runs the
    queue in this process until the job finishes (including
    recomputing any corrupt cache entry); without it, an incomplete
    job or a corrupt entry raises :class:`ServiceError` with the
    recovery instruction.
    """
    if wait:
        with CampaignService(root, workers=workers) as service:
            return service.result(job_id, wait=True)
    root = Path(root)
    store = readonly_store(root)
    job_status = store.status(job_id)
    if not job_status.complete:
        raise ServiceError(
            f"{job_id} is not complete ({job_status.pending} pending, "
            f"{job_status.leased} leased of {job_status.total}); poll "
            f"status() or call result(wait=True)")
    table, corrupt = assemble_result(store, ResultCache(root / "cache"),
                                     job_id)
    if corrupt:
        raise ServiceError(
            f"{len(corrupt)} cached result(s) for {job_id} were "
            f"corrupt; they were quarantined aside — recompute with "
            f"result(wait=True) or `coyote-sim serve`")
    return table


def cancel(job_id: str, *, root: str | Path) -> JobStatus:
    """Cancel a job's remaining points; returns the latest status.

    Journals the cancel directly when no server holds the lock,
    otherwise leaves a cancel marker the live server applies on its
    next inbox sweep.
    """
    try:
        with CampaignService(root) as service:
            return service.cancel(job_id)
    except CampaignLockError:
        spool_cancel(root, job_id)
        return status(job_id, root=root)
