"""System-on-chip substrates: the shared sparse physical memory."""

from repro.soc.memory import PAGE_SIZE, MemoryError_, SparseMemory

__all__ = ["PAGE_SIZE", "MemoryError_", "SparseMemory"]
