"""Sparse physical memory for the simulated system.

Memory is organised as 4 KiB pages allocated on first touch, which lets a
64-bit address space be modelled with memory proportional to the program's
footprint.  All accesses are little-endian, matching RISC-V.

This is the *functional* backing store shared by every core; timing is
modelled separately by the Sparta-side memory hierarchy.
"""

from __future__ import annotations

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
_PAGE_MASK = PAGE_SIZE - 1


class MemoryError_(Exception):
    """Raised for invalid physical memory operations."""


class SparseMemory:
    """A sparse, page-granular byte-addressable memory."""

    def __init__(self):
        self._pages: dict[int, bytearray] = {}

    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    # -- bulk accessors -----------------------------------------------------

    def load_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        if length < 0:
            raise MemoryError_(f"negative load length {length}")
        result = bytearray()
        remaining = length
        cursor = address
        while remaining > 0:
            page_number = cursor >> PAGE_BITS
            offset = cursor & _PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            page = self._pages.get(page_number)
            if page is None:
                result += bytes(chunk)
            else:
                result += page[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(result)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        cursor = address
        view = memoryview(data)
        while view:
            page_number = cursor >> PAGE_BITS
            offset = cursor & _PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            self._page(page_number)[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    # -- scalar accessors (hot path) ----------------------------------------

    def load_int(self, address: int, size: int) -> int:
        """Read an unsigned little-endian integer of ``size`` bytes."""
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_BITS)
            if page is None:
                return 0
            return int.from_bytes(page[offset:offset + size], "little")
        return int.from_bytes(self.load_bytes(address, size), "little")

    def store_int(self, address: int, value: int, size: int) -> None:
        """Write an unsigned little-endian integer of ``size`` bytes."""
        offset = address & _PAGE_MASK
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if offset + size <= PAGE_SIZE:
            self._page(address >> PAGE_BITS)[offset:offset + size] = data
        else:
            self.store_bytes(address, data)

    # -- introspection ------------------------------------------------------

    def allocated_bytes(self) -> int:
        """Bytes of backing storage currently allocated."""
        return len(self._pages) * PAGE_SIZE

    def touched_pages(self) -> list[int]:
        """Sorted list of allocated page base addresses."""
        return sorted(page << PAGE_BITS for page in self._pages)
