"""Raw RISC-V instruction word field packing and extraction.

Implements the base instruction formats (R/I/S/B/U/J) plus the field layouts
used by the vector extension (OP-V arithmetic and vector loads/stores).
All functions operate on 32-bit little-endian instruction words held as
unsigned Python ints.
"""

from __future__ import annotations

from repro.utils.bitops import bit, bits, mask, sign_extend

INSTRUCTION_BYTES = 4


# ---------------------------------------------------------------------------
# Field extraction
# ---------------------------------------------------------------------------

def opcode(word: int) -> int:
    """Major opcode, bits [6:0]."""
    return bits(word, 6, 0)


def rd(word: int) -> int:
    return bits(word, 11, 7)


def rs1(word: int) -> int:
    return bits(word, 19, 15)


def rs2(word: int) -> int:
    return bits(word, 24, 20)


def rs3(word: int) -> int:
    """Third source register of R4-format FMA instructions, bits [31:27]."""
    return bits(word, 31, 27)


def funct3(word: int) -> int:
    return bits(word, 14, 12)


def funct7(word: int) -> int:
    return bits(word, 31, 25)


def imm_i(word: int) -> int:
    """Sign-extended 12-bit I-type immediate."""
    return sign_extend(bits(word, 31, 20), 12)


def imm_s(word: int) -> int:
    """Sign-extended 12-bit S-type immediate."""
    raw = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
    return sign_extend(raw, 12)


def imm_b(word: int) -> int:
    """Sign-extended 13-bit B-type branch offset (always even)."""
    raw = (
        (bit(word, 31) << 12)
        | (bit(word, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sign_extend(raw, 13)


def imm_u(word: int) -> int:
    """Sign-extended U-type immediate (already shifted left by 12)."""
    return sign_extend(word & 0xFFFF_F000, 32)


def imm_j(word: int) -> int:
    """Sign-extended 21-bit J-type jump offset (always even)."""
    raw = (
        (bit(word, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bit(word, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sign_extend(raw, 21)


def shamt64(word: int) -> int:
    """Shift amount for RV64I shift-immediate instructions, bits [25:20]."""
    return bits(word, 25, 20)


def shamt32(word: int) -> int:
    """Shift amount for *W shift-immediate instructions, bits [24:20]."""
    return bits(word, 24, 20)


def csr_address(word: int) -> int:
    """CSR address of a Zicsr instruction, bits [31:20]."""
    return bits(word, 31, 20)


# Vector extension fields ----------------------------------------------------

def vm(word: int) -> int:
    """Vector mask bit [25]: 1 = unmasked, 0 = masked by v0."""
    return bit(word, 25)


def funct6(word: int) -> int:
    """OP-V arithmetic funct6, bits [31:26]."""
    return bits(word, 31, 26)


def vmem_nf(word: int) -> int:
    """Vector load/store NFIELDS-1, bits [31:29]."""
    return bits(word, 31, 29)


def vmem_mop(word: int) -> int:
    """Vector load/store addressing mode, bits [27:26].

    00 = unit-stride, 01 = indexed-unordered, 10 = strided,
    11 = indexed-ordered.
    """
    return bits(word, 27, 26)


def vmem_width(word: int) -> int:
    """Vector load/store width field (shares bits [14:12] with funct3)."""
    return bits(word, 14, 12)


VMEM_WIDTH_TO_EEW = {0b000: 8, 0b101: 16, 0b110: 32, 0b111: 64}
EEW_TO_VMEM_WIDTH = {eew: code for code, eew in VMEM_WIDTH_TO_EEW.items()}


# ---------------------------------------------------------------------------
# Field packing (used by the assembler)
# ---------------------------------------------------------------------------

def _check_reg(value: int, what: str) -> None:
    if not 0 <= value < 32:
        raise ValueError(f"{what} out of range: {value}")


def encode_r(op: int, rd_: int, f3: int, rs1_: int, rs2_: int, f7: int) -> int:
    """Pack an R-type instruction word."""
    for name, value in (("rd", rd_), ("rs1", rs1_), ("rs2", rs2_)):
        _check_reg(value, name)
    return (
        (f7 & mask(7)) << 25
        | rs2_ << 20
        | rs1_ << 15
        | (f3 & mask(3)) << 12
        | rd_ << 7
        | (op & mask(7))
    )


def encode_r4(op: int, rd_: int, f3: int, rs1_: int, rs2_: int,
              rs3_: int, fmt: int) -> int:
    """Pack an R4-type (fused multiply-add) instruction word."""
    for name, value in (("rd", rd_), ("rs1", rs1_), ("rs2", rs2_), ("rs3", rs3_)):
        _check_reg(value, name)
    return (
        rs3_ << 27
        | (fmt & mask(2)) << 25
        | rs2_ << 20
        | rs1_ << 15
        | (f3 & mask(3)) << 12
        | rd_ << 7
        | (op & mask(7))
    )


def encode_i(op: int, rd_: int, f3: int, rs1_: int, imm: int) -> int:
    """Pack an I-type instruction word; ``imm`` must fit in signed 12 bits."""
    _check_reg(rd_, "rd")
    _check_reg(rs1_, "rs1")
    if not -2048 <= imm <= 2047:
        raise ValueError(f"I-type immediate out of range: {imm}")
    return (
        (imm & mask(12)) << 20
        | rs1_ << 15
        | (f3 & mask(3)) << 12
        | rd_ << 7
        | (op & mask(7))
    )


def encode_s(op: int, f3: int, rs1_: int, rs2_: int, imm: int) -> int:
    """Pack an S-type instruction word; ``imm`` must fit in signed 12 bits."""
    _check_reg(rs1_, "rs1")
    _check_reg(rs2_, "rs2")
    if not -2048 <= imm <= 2047:
        raise ValueError(f"S-type immediate out of range: {imm}")
    imm &= mask(12)
    return (
        bits(imm, 11, 5) << 25
        | rs2_ << 20
        | rs1_ << 15
        | (f3 & mask(3)) << 12
        | bits(imm, 4, 0) << 7
        | (op & mask(7))
    )


def encode_b(op: int, f3: int, rs1_: int, rs2_: int, imm: int) -> int:
    """Pack a B-type instruction word; ``imm`` is a signed even 13-bit offset."""
    _check_reg(rs1_, "rs1")
    _check_reg(rs2_, "rs2")
    if imm % 2:
        raise ValueError(f"branch offset must be even: {imm}")
    if not -4096 <= imm <= 4094:
        raise ValueError(f"B-type offset out of range: {imm}")
    imm &= mask(13)
    return (
        bit(imm, 12) << 31
        | bits(imm, 10, 5) << 25
        | rs2_ << 20
        | rs1_ << 15
        | (f3 & mask(3)) << 12
        | bits(imm, 4, 1) << 8
        | bit(imm, 11) << 7
        | (op & mask(7))
    )


def encode_u(op: int, rd_: int, imm: int) -> int:
    """Pack a U-type instruction word; ``imm`` is the 20-bit upper immediate."""
    _check_reg(rd_, "rd")
    if not -(1 << 19) <= imm < (1 << 20):
        raise ValueError(f"U-type immediate out of range: {imm}")
    return (imm & mask(20)) << 12 | rd_ << 7 | (op & mask(7))


def encode_j(op: int, rd_: int, imm: int) -> int:
    """Pack a J-type instruction word; ``imm`` is a signed even 21-bit offset."""
    _check_reg(rd_, "rd")
    if imm % 2:
        raise ValueError(f"jump offset must be even: {imm}")
    if not -(1 << 20) <= imm < (1 << 20):
        raise ValueError(f"J-type offset out of range: {imm}")
    imm &= mask(21)
    return (
        bit(imm, 20) << 31
        | bits(imm, 10, 1) << 21
        | bit(imm, 11) << 20
        | bits(imm, 19, 12) << 12
        | rd_ << 7
        | (op & mask(7))
    )


def encode_vector_arith(f6: int, vm_: int, vs2: int, vs1: int,
                        f3: int, vd: int, op: int) -> int:
    """Pack an OP-V arithmetic instruction word."""
    for name, value in (("vd", vd), ("vs1/rs1", vs1), ("vs2", vs2)):
        _check_reg(value, name)
    return (
        (f6 & mask(6)) << 26
        | (vm_ & 1) << 25
        | vs2 << 20
        | vs1 << 15
        | (f3 & mask(3)) << 12
        | vd << 7
        | (op & mask(7))
    )


def encode_vector_mem(nf: int, mop: int, vm_: int, rs2_or_lumop: int,
                      rs1_: int, width: int, vd: int, op: int) -> int:
    """Pack a vector load/store instruction word."""
    _check_reg(vd, "vd")
    _check_reg(rs1_, "rs1")
    _check_reg(rs2_or_lumop, "rs2/lumop")
    return (
        (nf & mask(3)) << 29
        | (mop & mask(2)) << 26
        | (vm_ & 1) << 25
        | rs2_or_lumop << 20
        | rs1_ << 15
        | (width & mask(3)) << 12
        | vd << 7
        | (op & mask(7))
    )
