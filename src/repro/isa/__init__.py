"""RISC-V ISA layer: encodings, decoder, registers, CSRs, vector types."""

from repro.isa.decoder import IllegalInstruction, Instruction, decode
from repro.isa.vtype import VType

__all__ = ["IllegalInstruction", "Instruction", "VType", "decode"]
