"""Control and Status Register (CSR) addresses used by the simulator.

Only the CSRs exercised by bare-metal HPC kernels and the RVV extension are
defined; the hart raises an illegal-instruction trap for anything else.
"""

from __future__ import annotations

# Unprivileged counters.
CYCLE = 0xC00
TIME = 0xC01
INSTRET = 0xC02

# Vector extension CSRs.
VSTART = 0x008
VXSAT = 0x009
VXRM = 0x00A
VCSR = 0x00F
VL = 0xC20
VTYPE = 0xC21
VLENB = 0xC22

# FP CSRs.
FFLAGS = 0x001
FRM = 0x002
FCSR = 0x003

# Machine information / trap handling (bare-metal mode).
MSTATUS = 0x300
MISA = 0x301
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344
MHARTID = 0xF14
MCYCLE = 0xB00
MINSTRET = 0xB02

_NAMES = {
    CYCLE: "cycle",
    TIME: "time",
    INSTRET: "instret",
    VSTART: "vstart",
    VXSAT: "vxsat",
    VXRM: "vxrm",
    VCSR: "vcsr",
    VL: "vl",
    VTYPE: "vtype",
    VLENB: "vlenb",
    FFLAGS: "fflags",
    FRM: "frm",
    FCSR: "fcsr",
    MSTATUS: "mstatus",
    MISA: "misa",
    MIE: "mie",
    MTVEC: "mtvec",
    MSCRATCH: "mscratch",
    MEPC: "mepc",
    MCAUSE: "mcause",
    MTVAL: "mtval",
    MIP: "mip",
    MHARTID: "mhartid",
    MCYCLE: "mcycle",
    MINSTRET: "minstret",
}

CSR_BY_NAME = {name: addr for addr, name in _NAMES.items()}

READ_ONLY_CSRS = frozenset({CYCLE, TIME, INSTRET, VL, VTYPE, VLENB, MHARTID})


def csr_name(address: int) -> str:
    """Human-readable name for a CSR address (hex string if unknown)."""
    return _NAMES.get(address, f"csr{address:#x}")


def parse_csr(token: str) -> int:
    """Map a CSR spelling (name or numeric literal) to its address."""
    lowered = token.lower()
    if lowered in CSR_BY_NAME:
        return CSR_BY_NAME[lowered]
    try:
        value = int(token, 0)
    except ValueError:
        raise ValueError(f"unknown CSR {token!r}") from None
    if not 0 <= value < 4096:
        raise ValueError(f"CSR address out of range: {token!r}")
    return value
