"""RVV ``vtype`` CSR encoding and vector-length arithmetic.

Implements the RVV 1.0 ``vtype`` layout: ``vill`` in the MSB, then (from bit
7 down) ``vma``, ``vta``, ``vsew[2:0]``, ``vlmul[2:0]``.  Fractional LMUL is
supported (1/8, 1/4, 1/2) alongside integer LMUL (1, 2, 4, 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.utils.bitops import bits

VILL_BIT = 63

SEW_CODES = {0b000: 8, 0b001: 16, 0b010: 32, 0b011: 64}
SEW_TO_CODE = {sew: code for code, sew in SEW_CODES.items()}

LMUL_CODES = {
    0b000: Fraction(1),
    0b001: Fraction(2),
    0b010: Fraction(4),
    0b011: Fraction(8),
    0b101: Fraction(1, 8),
    0b110: Fraction(1, 4),
    0b111: Fraction(1, 2),
}
LMUL_TO_CODE = {lmul: code for code, lmul in LMUL_CODES.items()}

LMUL_NAMES = {
    Fraction(1): "m1",
    Fraction(2): "m2",
    Fraction(4): "m4",
    Fraction(8): "m8",
    Fraction(1, 2): "mf2",
    Fraction(1, 4): "mf4",
    Fraction(1, 8): "mf8",
}
LMUL_BY_NAME = {name: lmul for lmul, name in LMUL_NAMES.items()}


@dataclass(frozen=True)
class VType:
    """Decoded view of the ``vtype`` CSR."""

    sew: int = 64
    lmul: Fraction = Fraction(1)
    tail_agnostic: bool = True
    mask_agnostic: bool = True
    vill: bool = False

    def __post_init__(self) -> None:
        if self.sew not in SEW_TO_CODE:
            raise ValueError(f"unsupported SEW: {self.sew}")
        if self.lmul not in LMUL_TO_CODE:
            raise ValueError(f"unsupported LMUL: {self.lmul}")

    def encode(self) -> int:
        """Pack into the architectural 64-bit ``vtype`` value."""
        if self.vill:
            return 1 << VILL_BIT
        return (
            (1 if self.mask_agnostic else 0) << 7
            | (1 if self.tail_agnostic else 0) << 6
            | SEW_TO_CODE[self.sew] << 3
            | LMUL_TO_CODE[self.lmul]
        )

    @classmethod
    def decode(cls, value: int) -> "VType":
        """Unpack an architectural ``vtype`` value."""
        if (value >> VILL_BIT) & 1:
            return cls(vill=True)
        if value & ~0xFF:  # reserved bits [62:8] set -> vill (RVV 1.0)
            return cls(vill=True)
        sew_code = bits(value, 5, 3)
        lmul_code = bits(value, 2, 0)
        if sew_code not in SEW_CODES or lmul_code not in LMUL_CODES:
            return cls(vill=True)
        return cls(
            sew=SEW_CODES[sew_code],
            lmul=LMUL_CODES[lmul_code],
            tail_agnostic=bool((value >> 6) & 1),
            mask_agnostic=bool((value >> 7) & 1),
        )

    def vlmax(self, vlen_bits: int) -> int:
        """Maximum vector length for this vtype at a given VLEN."""
        if self.vill:
            return 0
        return int(Fraction(vlen_bits, self.sew) * self.lmul)

    def register_group_size(self) -> int:
        """Number of architectural registers occupied by one operand group."""
        return max(1, int(self.lmul))

    def describe(self) -> str:
        """Assembly-style description, e.g. ``e64,m1,ta,ma``."""
        if self.vill:
            return "vill"
        ta = "ta" if self.tail_agnostic else "tu"
        ma = "ma" if self.mask_agnostic else "mu"
        return f"e{self.sew},{LMUL_NAMES[self.lmul]},{ta},{ma}"


def parse_vtype_tokens(tokens: list[str]) -> VType:
    """Build a :class:`VType` from assembly operands like ``e64, m1, ta, ma``."""
    sew = None
    lmul = Fraction(1)
    ta = True
    ma = True
    for token in tokens:
        token = token.strip().lower()
        if token.startswith("e") and token[1:].isdigit():
            sew = int(token[1:])
        elif token in LMUL_BY_NAME:
            lmul = LMUL_BY_NAME[token]
        elif token == "ta":
            ta = True
        elif token == "tu":
            ta = False
        elif token == "ma":
            ma = True
        elif token == "mu":
            ma = False
        else:
            raise ValueError(f"unknown vtype token {token!r}")
    if sew is None:
        raise ValueError("vtype is missing an SEW token (e8/e16/e32/e64)")
    return VType(sew=sew, lmul=lmul, tail_agnostic=ta, mask_agnostic=ma)
