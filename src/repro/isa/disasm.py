"""A compact disassembler for decoded instructions.

Output is assembler-compatible for the common cases and is primarily meant
for debugging, trace annotation, and round-trip testing against the
assembler.  CSR and vtype operands are printed symbolically where possible.
"""

from __future__ import annotations

from repro.isa.csr import csr_name
from repro.isa.decoder import Instruction, decode
from repro.isa.registers import fp_reg_name, int_reg_name, vec_reg_name
from repro.isa.vtype import VType


def _x(i: int) -> str:
    return int_reg_name(i)


def _f(i: int) -> str:
    return fp_reg_name(i)


def _v(i: int) -> str:
    return vec_reg_name(i)


def disassemble(instr: Instruction) -> str:
    """Render a decoded instruction as assembly text."""
    m = instr.mnemonic
    if m in ("ecall", "ebreak", "mret", "wfi", "fence", "fence.i"):
        return m
    if m in ("lui", "auipc"):
        return f"{m} {_x(instr.rd)}, {instr.imm >> 12 & 0xFFFFF:#x}"
    if m == "jal":
        return f"{m} {_x(instr.rd)}, {instr.imm}"
    if m == "jalr":
        return f"{m} {_x(instr.rd)}, {instr.imm}({_x(instr.rs1)})"
    if instr.is_branch:
        return f"{m} {_x(instr.rs1)}, {_x(instr.rs2)}, {instr.imm}"
    if m in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"):
        return f"{m} {_x(instr.rd)}, {instr.imm}({_x(instr.rs1)})"
    if m in ("sb", "sh", "sw", "sd"):
        return f"{m} {_x(instr.rs2)}, {instr.imm}({_x(instr.rs1)})"
    if m in ("flw", "fld"):
        return f"{m} {_f(instr.rd)}, {instr.imm}({_x(instr.rs1)})"
    if m in ("fsw", "fsd"):
        return f"{m} {_f(instr.rs2)}, {instr.imm}({_x(instr.rs1)})"
    if m in ("slli", "srli", "srai", "slliw", "srliw", "sraiw"):
        return f"{m} {_x(instr.rd)}, {_x(instr.rs1)}, {instr.shamt}"
    if m in ("addi", "slti", "sltiu", "xori", "ori", "andi", "addiw"):
        return f"{m} {_x(instr.rd)}, {_x(instr.rs1)}, {instr.imm}"
    if m.startswith("csrr"):
        csr = csr_name(instr.csr)
        if m.endswith("i"):
            return f"{m} {_x(instr.rd)}, {csr}, {instr.imm}"
        return f"{m} {_x(instr.rd)}, {csr}, {_x(instr.rs1)}"
    if m.startswith("lr."):
        return f"{m} {_x(instr.rd)}, ({_x(instr.rs1)})"
    if instr.is_amo:
        return f"{m} {_x(instr.rd)}, {_x(instr.rs2)}, ({_x(instr.rs1)})"
    if m == "vsetvli":
        vt = VType.decode(instr.imm)
        return f"{m} {_x(instr.rd)}, {_x(instr.rs1)}, {vt.describe()}"
    if m == "vsetivli":
        vt = VType.decode(instr.imm)
        return f"{m} {_x(instr.rd)}, {instr.shamt}, {vt.describe()}"
    if m == "vsetvl":
        return f"{m} {_x(instr.rd)}, {_x(instr.rs1)}, {_x(instr.rs2)}"
    if instr.is_vector_mem:
        tail = "" if instr.vm else ", v0.t"
        base = f"({_x(instr.rs1)})"
        if instr.mop == 0b10:  # strided
            return f"{m} {_v(instr.rd)}, {base}, {_x(instr.rs2)}{tail}"
        if instr.mop in (0b01, 0b11):  # indexed
            return f"{m} {_v(instr.rd)}, {base}, {_v(instr.rs2)}{tail}"
        return f"{m} {_v(instr.rd)}, {base}{tail}"
    if instr.is_vector:
        return _disassemble_vector(instr)
    if instr.is_fp:
        return _disassemble_fp(instr)
    # Remaining case: three-register scalar ALU ops.
    return f"{m} {_x(instr.rd)}, {_x(instr.rs1)}, {_x(instr.rs2)}"


_V_MACC_ORDER = frozenset({"vmacc", "vnmsac", "vmadd", "vnmsub",
                           "vfmacc", "vfnmacc", "vfmsac", "vfnmsac",
                           "vfmadd", "vfnmadd", "vfmsub", "vfnmsub"})


def _disassemble_vector(instr: Instruction) -> str:
    m = instr.mnemonic
    tail = "" if instr.vm else ", v0.t"
    base = m.rsplit(".", 1)[0]
    if base in _V_MACC_ORDER:  # operand order (vd, op1, vs2)
        if m.endswith(".vv"):
            return (f"{m} {_v(instr.rd)}, {_v(instr.rs1)}, "
                    f"{_v(instr.rs2)}{tail}")
        if m.endswith(".vx"):
            return (f"{m} {_v(instr.rd)}, {_x(instr.rs1)}, "
                    f"{_v(instr.rs2)}{tail}")
        if m.endswith(".vf"):
            return (f"{m} {_v(instr.rd)}, {_f(instr.rs1)}, "
                    f"{_v(instr.rs2)}{tail}")
    if m == "vmv.v.v":
        return f"{m} {_v(instr.rd)}, {_v(instr.rs1)}"
    if m == "vmv.v.x":
        return f"{m} {_v(instr.rd)}, {_x(instr.rs1)}"
    if m == "vmv.v.i":
        return f"{m} {_v(instr.rd)}, {instr.imm}"
    if m == "vmv.x.s":
        return f"{m} {_x(instr.rd)}, {_v(instr.rs2)}"
    if m == "vmv.s.x":
        return f"{m} {_v(instr.rd)}, {_x(instr.rs1)}"
    if m == "vfmv.f.s":
        return f"{m} {_f(instr.rd)}, {_v(instr.rs2)}"
    if m == "vfmv.s.f":
        return f"{m} {_v(instr.rd)}, {_f(instr.rs1)}"
    if m == "vfmv.v.f":
        return f"{m} {_v(instr.rd)}, {_f(instr.rs1)}"
    if m == "vid.v":
        return f"{m} {_v(instr.rd)}{tail}"
    if m == "viota.m":
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}{tail}"
    if m.endswith(".vv") or m.endswith(".vs"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {_v(instr.rs1)}{tail}"
    if m.endswith(".vx"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {_x(instr.rs1)}{tail}"
    if m.endswith(".vf"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {_f(instr.rs1)}{tail}"
    if m.endswith(".vi"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {instr.imm}{tail}"
    if m.endswith(".vvm"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {_v(instr.rs1)}, v0"
    if m.endswith(".vxm"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {_x(instr.rs1)}, v0"
    if m.endswith(".vim"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {instr.imm}, v0"
    if m.endswith(".vfm"):
        return f"{m} {_v(instr.rd)}, {_v(instr.rs2)}, {_f(instr.rs1)}, v0"
    return f"{m} <?>"


def _disassemble_fp(instr: Instruction) -> str:
    m = instr.mnemonic
    if m.startswith(("fmadd", "fmsub", "fnmadd", "fnmsub")):
        return (f"{m} {_f(instr.rd)}, {_f(instr.rs1)}, {_f(instr.rs2)}, "
                f"{_f(instr.rs3)}")
    if m.startswith(("fsqrt", "fcvt.s.d", "fcvt.d.s")):
        return f"{m} {_f(instr.rd)}, {_f(instr.rs1)}"
    if m.startswith(("feq", "flt", "fle", "fclass")):
        if m.startswith("fclass"):
            return f"{m} {_x(instr.rd)}, {_f(instr.rs1)}"
        return f"{m} {_x(instr.rd)}, {_f(instr.rs1)}, {_f(instr.rs2)}"
    if m.startswith("fmv.x") or m.startswith("fcvt.w") \
            or m.startswith("fcvt.l"):
        return f"{m} {_x(instr.rd)}, {_f(instr.rs1)}"
    if m.startswith("fmv.") or (m.startswith("fcvt.") and m[5] in "sd"
                                and not m.startswith(("fcvt.s.d",
                                                      "fcvt.d.s"))):
        return f"{m} {_f(instr.rd)}, {_x(instr.rs1)}"
    return f"{m} {_f(instr.rd)}, {_f(instr.rs1)}, {_f(instr.rs2)}"


def disassemble_word(word: int) -> str:
    """Decode and render a raw instruction word."""
    return disassemble(decode(word))
