"""RV64IMAFD + RVV-subset instruction decoder.

``decode(word)`` turns a 32-bit instruction word into an :class:`Instruction`
carrying the mnemonic, operand fields, and the source/destination register
sets the simulator's RAW-dependency scoreboard needs.  Decoding is pure and
deterministic, so callers (the ISS) memoise decoded words per address.

Register operands in ``srcs``/``dests`` are ``(regclass, index)`` pairs with
regclass one of ``"x"`` (integer), ``"f"`` (FP), ``"v"`` (vector).
"""

from __future__ import annotations

from repro.isa import opcodes as op
from repro.isa.fields import (
    VMEM_WIDTH_TO_EEW,
    csr_address,
    funct3,
    funct6,
    funct7,
    imm_b,
    imm_i,
    imm_j,
    imm_s,
    imm_u,
    opcode,
    rd,
    rs1,
    rs2,
    rs3,
    shamt64,
    vm,
    vmem_mop,
    vmem_nf,
    vmem_width,
)
from repro.utils.bitops import bits, sign_extend

X0 = ("x", 0)


class IllegalInstruction(Exception):
    """Raised when a word does not decode to a supported instruction."""

    def __init__(self, word: int, reason: str = "unsupported encoding"):
        self.word = word
        super().__init__(f"illegal instruction {word:#010x}: {reason}")


class Instruction:
    """A decoded instruction.

    Operand fields not used by a given mnemonic are left at their default.
    ``srcs`` and ``dests`` list architectural registers read/written, used by
    the RAW scoreboard; ``x0`` is never listed (reads of it cannot stall and
    writes to it are discarded).
    """

    __slots__ = (
        "word", "mnemonic", "rd", "rs1", "rs2", "rs3", "imm", "csr",
        "shamt", "vm", "eew", "mop", "nf", "srcs", "dests", "all_regs",
        "is_load", "is_store", "is_branch", "is_jump", "is_amo",
        "is_vector", "is_vector_mem", "is_fp", "is_system",
        "is_control",
    )

    def __init__(self, word: int, mnemonic: str, *, rd: int = 0, rs1: int = 0,
                 rs2: int = 0, rs3: int = 0, imm: int = 0, csr: int = 0,
                 shamt: int = 0, vm: int = 1, eew: int = 0, mop: int = 0,
                 nf: int = 0, srcs: tuple = (), dests: tuple = (),
                 is_load: bool = False, is_store: bool = False,
                 is_branch: bool = False, is_jump: bool = False,
                 is_amo: bool = False, is_vector: bool = False,
                 is_vector_mem: bool = False, is_fp: bool = False,
                 is_system: bool = False):
        self.word = word
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.rs3 = rs3
        self.imm = imm
        self.csr = csr
        self.shamt = shamt
        self.vm = vm
        self.eew = eew
        self.mop = mop
        self.nf = nf
        self.srcs = srcs
        self.dests = dests
        # Precomputed union used by the per-cycle RAW/WAW check.
        self.all_regs = srcs + dests
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.is_jump = is_jump
        self.is_amo = is_amo
        self.is_vector = is_vector
        self.is_vector_mem = is_vector_mem
        self.is_fp = is_fp
        self.is_system = is_system
        # Derived: may this instruction redirect (or fence) control
        # flow?  Basic-block formation in the translated fast path ends
        # a block here; system instructions count because they can trap
        # or change pc (mret) and must run in the interpreter.
        self.is_control = is_branch or is_jump or is_system

    def __repr__(self) -> str:
        return f"<Instruction {self.mnemonic} word={self.word:#010x}>"


def _xsrc(*indices: int) -> tuple:
    return tuple(("x", i) for i in indices if i != 0)


def _xdst(index: int) -> tuple:
    return (("x", index),) if index != 0 else ()


# ---------------------------------------------------------------------------
# Scalar decode tables
# ---------------------------------------------------------------------------

_LOAD_MNEMONICS = {0: "lb", 1: "lh", 2: "lw", 3: "ld", 4: "lbu", 5: "lhu", 6: "lwu"}
_STORE_MNEMONICS = {0: "sb", 1: "sh", 2: "sw", 3: "sd"}
_BRANCH_MNEMONICS = {0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
_OP_IMM_MNEMONICS = {0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori", 7: "andi"}

_OP_MNEMONICS = {
    (0x00, 0): "add", (0x00, 1): "sll", (0x00, 2): "slt", (0x00, 3): "sltu",
    (0x00, 4): "xor", (0x00, 5): "srl", (0x00, 6): "or", (0x00, 7): "and",
    (0x20, 0): "sub", (0x20, 5): "sra",
    (0x01, 0): "mul", (0x01, 1): "mulh", (0x01, 2): "mulhsu", (0x01, 3): "mulhu",
    (0x01, 4): "div", (0x01, 5): "divu", (0x01, 6): "rem", (0x01, 7): "remu",
}

_OP32_MNEMONICS = {
    (0x00, 0): "addw", (0x00, 1): "sllw", (0x00, 5): "srlw",
    (0x20, 0): "subw", (0x20, 5): "sraw",
    (0x01, 0): "mulw", (0x01, 4): "divw", (0x01, 5): "divuw",
    (0x01, 6): "remw", (0x01, 7): "remuw",
}

_CSR_MNEMONICS = {1: "csrrw", 2: "csrrs", 3: "csrrc",
                  5: "csrrwi", 6: "csrrsi", 7: "csrrci"}

_AMO_MNEMONICS = {
    0x02: "lr", 0x03: "sc", 0x01: "amoswap", 0x00: "amoadd", 0x04: "amoxor",
    0x0C: "amoand", 0x08: "amoor", 0x10: "amomin", 0x14: "amomax",
    0x18: "amominu", 0x1C: "amomaxu",
}

_FP_FMT_SUFFIX = {0: ".s", 1: ".d"}

# ---------------------------------------------------------------------------
# Vector decode tables: funct6 -> base mnemonic, keyed per OP-V category.
# ---------------------------------------------------------------------------

_OPI_MNEMONICS = {
    0x00: "vadd", 0x02: "vsub", 0x03: "vrsub", 0x04: "vminu", 0x05: "vmin",
    0x06: "vmaxu", 0x07: "vmax", 0x09: "vand", 0x0A: "vor", 0x0B: "vxor",
    0x0C: "vrgather", 0x0E: "vslideup", 0x0F: "vslidedown",
    0x18: "vmseq", 0x19: "vmsne", 0x1A: "vmsltu", 0x1B: "vmslt",
    0x1C: "vmsleu", 0x1D: "vmsle", 0x1E: "vmsgtu", 0x1F: "vmsgt",
    0x25: "vsll", 0x28: "vsrl", 0x29: "vsra",
}

_OPM_MNEMONICS = {
    0x00: "vredsum", 0x01: "vredand", 0x02: "vredor", 0x03: "vredxor",
    0x04: "vredminu", 0x05: "vredmin", 0x06: "vredmaxu", 0x07: "vredmax",
    0x20: "vdivu", 0x21: "vdiv", 0x22: "vremu", 0x23: "vrem",
    0x24: "vmulhu", 0x25: "vmul", 0x26: "vmulhsu", 0x27: "vmulh",
    0x29: "vmadd", 0x2B: "vnmsub", 0x2D: "vmacc", 0x2F: "vnmsac",
}

_OPF_MNEMONICS = {
    0x00: "vfadd", 0x01: "vfredusum", 0x02: "vfsub", 0x03: "vfredosum",
    0x04: "vfmin", 0x05: "vfredmin", 0x06: "vfmax", 0x07: "vfredmax",
    0x08: "vfsgnj", 0x09: "vfsgnjn", 0x0A: "vfsgnjx",
    0x18: "vmfeq", 0x19: "vmfle", 0x1B: "vmflt", 0x1C: "vmfne",
    0x20: "vfdiv", 0x24: "vfmul",
    0x28: "vfmadd", 0x29: "vfnmadd", 0x2A: "vfmsub", 0x2B: "vfnmsub",
    0x2C: "vfmacc", 0x2D: "vfnmacc", 0x2E: "vfmsac", 0x2F: "vfnmsac",
}

# funct6 values whose vd is also a source (multiply-accumulate family).
_VD_IS_SOURCE = frozenset({"vmacc", "vnmsac", "vmadd", "vnmsub", "vfmacc",
                           "vfnmacc", "vfmsac", "vfnmsac", "vfmadd",
                           "vfnmadd", "vfmsub", "vfnmsub"})

_REDUCTIONS = frozenset({"vredsum", "vredand", "vredor", "vredxor",
                         "vredminu", "vredmin", "vredmaxu", "vredmax",
                         "vfredusum", "vfredosum", "vfredmin", "vfredmax"})


# ---------------------------------------------------------------------------
# Per-opcode decoders
# ---------------------------------------------------------------------------

def _decode_load(word: int) -> Instruction:
    f3 = funct3(word)
    if f3 not in _LOAD_MNEMONICS:
        raise IllegalInstruction(word, f"LOAD funct3={f3}")
    d, s1 = rd(word), rs1(word)
    return Instruction(word, _LOAD_MNEMONICS[f3], rd=d, rs1=s1, imm=imm_i(word),
                       srcs=_xsrc(s1), dests=_xdst(d), is_load=True)


def _decode_store(word: int) -> Instruction:
    f3 = funct3(word)
    if f3 not in _STORE_MNEMONICS:
        raise IllegalInstruction(word, f"STORE funct3={f3}")
    s1, s2 = rs1(word), rs2(word)
    return Instruction(word, _STORE_MNEMONICS[f3], rs1=s1, rs2=s2,
                       imm=imm_s(word), srcs=_xsrc(s1, s2), is_store=True)


def _decode_branch(word: int) -> Instruction:
    f3 = funct3(word)
    if f3 not in _BRANCH_MNEMONICS:
        raise IllegalInstruction(word, f"BRANCH funct3={f3}")
    s1, s2 = rs1(word), rs2(word)
    return Instruction(word, _BRANCH_MNEMONICS[f3], rs1=s1, rs2=s2,
                       imm=imm_b(word), srcs=_xsrc(s1, s2), is_branch=True)


def _decode_op_imm(word: int) -> Instruction:
    f3 = funct3(word)
    d, s1 = rd(word), rs1(word)
    common = dict(rd=d, rs1=s1, srcs=_xsrc(s1), dests=_xdst(d))
    if f3 == 1:
        if funct7(word) & 0x7E:
            raise IllegalInstruction(word, "slli funct6")
        return Instruction(word, "slli", shamt=shamt64(word), **common)
    if f3 == 5:
        f6 = bits(word, 31, 26)
        if f6 == 0x00:
            return Instruction(word, "srli", shamt=shamt64(word), **common)
        if f6 == 0x10:
            return Instruction(word, "srai", shamt=shamt64(word), **common)
        raise IllegalInstruction(word, "shift-imm funct6")
    if f3 not in _OP_IMM_MNEMONICS:
        raise IllegalInstruction(word, f"OP-IMM funct3={f3}")
    return Instruction(word, _OP_IMM_MNEMONICS[f3], imm=imm_i(word), **common)


def _decode_op_imm32(word: int) -> Instruction:
    f3 = funct3(word)
    d, s1 = rd(word), rs1(word)
    common = dict(rd=d, rs1=s1, srcs=_xsrc(s1), dests=_xdst(d))
    if f3 == 0:
        return Instruction(word, "addiw", imm=imm_i(word), **common)
    if f3 == 1 and funct7(word) == 0:
        return Instruction(word, "slliw", shamt=bits(word, 24, 20), **common)
    if f3 == 5 and funct7(word) == 0:
        return Instruction(word, "srliw", shamt=bits(word, 24, 20), **common)
    if f3 == 5 and funct7(word) == 0x20:
        return Instruction(word, "sraiw", shamt=bits(word, 24, 20), **common)
    raise IllegalInstruction(word, "OP-IMM-32")


def _decode_op(word: int, table: dict, what: str) -> Instruction:
    key = (funct7(word), funct3(word))
    if key not in table:
        raise IllegalInstruction(word, f"{what} funct7/funct3={key}")
    d, s1, s2 = rd(word), rs1(word), rs2(word)
    return Instruction(word, table[key], rd=d, rs1=s1, rs2=s2,
                       srcs=_xsrc(s1, s2), dests=_xdst(d))


def _decode_system(word: int) -> Instruction:
    f3 = funct3(word)
    d, s1 = rd(word), rs1(word)
    if f3 == 0:
        imm12 = bits(word, 31, 20)
        if imm12 == 0:
            return Instruction(word, "ecall", is_system=True)
        if imm12 == 1:
            return Instruction(word, "ebreak", is_system=True)
        if imm12 == 0x302:
            return Instruction(word, "mret", is_system=True, is_jump=True)
        if imm12 == 0x105:
            return Instruction(word, "wfi", is_system=True)
        raise IllegalInstruction(word, "SYSTEM funct12")
    if f3 not in _CSR_MNEMONICS:
        raise IllegalInstruction(word, f"SYSTEM funct3={f3}")
    mnem = _CSR_MNEMONICS[f3]
    if f3 >= 5:  # immediate forms: rs1 field is a 5-bit zero-extended literal
        return Instruction(word, mnem, rd=d, imm=s1, csr=csr_address(word),
                           dests=_xdst(d), is_system=True)
    return Instruction(word, mnem, rd=d, rs1=s1, csr=csr_address(word),
                       srcs=_xsrc(s1), dests=_xdst(d), is_system=True)


def _decode_amo(word: int) -> Instruction:
    f3 = funct3(word)
    if f3 not in (2, 3):
        raise IllegalInstruction(word, f"AMO funct3={f3}")
    funct5 = bits(word, 31, 27)
    if funct5 not in _AMO_MNEMONICS:
        raise IllegalInstruction(word, f"AMO funct5={funct5:#x}")
    suffix = ".w" if f3 == 2 else ".d"
    base = _AMO_MNEMONICS[funct5]
    d, s1, s2 = rd(word), rs1(word), rs2(word)
    if base == "lr":
        if s2 != 0:
            raise IllegalInstruction(word, "lr with rs2 != 0")
        return Instruction(word, base + suffix, rd=d, rs1=s1, srcs=_xsrc(s1),
                           dests=_xdst(d), is_load=True, is_amo=True)
    srcs = _xsrc(s1, s2)
    return Instruction(word, base + suffix, rd=d, rs1=s1, rs2=s2, srcs=srcs,
                       dests=_xdst(d), is_load=(base != "sc"),
                       is_store=True, is_amo=True)


def _decode_fp_load_store(word: int, is_load: bool) -> Instruction:
    width = vmem_width(word)
    if width in (2, 3):  # scalar FP load/store
        mnem = {2: "flw", 3: "fld"}[width] if is_load else {2: "fsw", 3: "fsd"}[width]
        if is_load:
            d, s1 = rd(word), rs1(word)
            return Instruction(word, mnem, rd=d, rs1=s1, imm=imm_i(word),
                               srcs=_xsrc(s1), dests=(("f", d),),
                               is_load=True, is_fp=True)
        s1, s2 = rs1(word), rs2(word)
        return Instruction(word, mnem, rs1=s1, rs2=s2, imm=imm_s(word),
                           srcs=_xsrc(s1) + (("f", s2),),
                           is_store=True, is_fp=True)
    if width in VMEM_WIDTH_TO_EEW:
        return _decode_vector_mem(word, is_load)
    raise IllegalInstruction(word, f"FP load/store width={width}")


def _decode_vector_mem(word: int, is_load: bool) -> Instruction:
    eew = VMEM_WIDTH_TO_EEW[vmem_width(word)]
    mop = vmem_mop(word)
    nf = vmem_nf(word)
    if nf != 0:
        raise IllegalInstruction(word, "segment vector load/store unsupported")
    d, s1, s2 = rd(word), rs1(word), rs2(word)
    mask_bit = vm(word)
    srcs = _xsrc(s1)
    if not mask_bit:
        srcs += (("v", 0),)
    if mop == 0b00:  # unit-stride; lumop (rs2 field) must be 0
        if s2 != 0:
            raise IllegalInstruction(word, f"unit-stride lumop={s2}")
        mnem = f"vle{eew}.v" if is_load else f"vse{eew}.v"
    elif mop == 0b10:  # strided: rs2 holds the byte stride
        mnem = f"vlse{eew}.v" if is_load else f"vsse{eew}.v"
        srcs += _xsrc(s2)
    else:  # indexed (ordered/unordered): vs2 holds indices
        order = "o" if mop == 0b11 else "u"
        mnem = (f"vl{order}xei{eew}.v" if is_load else f"vs{order}xei{eew}.v")
        srcs += (("v", s2),)
    if is_load:
        dests: tuple = (("v", d),)
    else:
        srcs += (("v", d),)  # the store-data register (vs3 lives in vd's slot)
        dests = ()
    return Instruction(word, mnem, rd=d, rs1=s1, rs2=s2, vm=mask_bit, eew=eew,
                       mop=mop, nf=nf, srcs=srcs, dests=dests,
                       is_load=is_load, is_store=not is_load,
                       is_vector=True, is_vector_mem=True)


_FP_R_FUNCT7 = {
    0x00: ("fadd", 0), 0x01: ("fadd", 1), 0x04: ("fsub", 0), 0x05: ("fsub", 1),
    0x08: ("fmul", 0), 0x09: ("fmul", 1), 0x0C: ("fdiv", 0), 0x0D: ("fdiv", 1),
}
_FP_SGNJ = {0: "fsgnj", 1: "fsgnjn", 2: "fsgnjx"}
_FP_MINMAX = {0: "fmin", 1: "fmax"}
_FP_CMP = {2: "feq", 1: "flt", 0: "fle"}
_FP_CVT_INT = {0: "w", 1: "wu", 2: "l", 3: "lu"}


def _decode_op_fp(word: int) -> Instruction:
    f7 = funct7(word)
    f3 = funct3(word)
    d, s1, s2 = rd(word), rs1(word), rs2(word)
    fdd = (("f", d),)
    fss = (("f", s1), ("f", s2))

    if f7 in _FP_R_FUNCT7:
        base, fmt = _FP_R_FUNCT7[f7]
        return Instruction(word, base + _FP_FMT_SUFFIX[fmt], rd=d, rs1=s1,
                           rs2=s2, srcs=fss, dests=fdd, is_fp=True)
    if f7 in (0x2C, 0x2D):  # fsqrt
        return Instruction(word, "fsqrt" + _FP_FMT_SUFFIX[f7 & 1], rd=d,
                           rs1=s1, srcs=(("f", s1),), dests=fdd, is_fp=True)
    if f7 in (0x10, 0x11) and f3 in _FP_SGNJ:
        return Instruction(word, _FP_SGNJ[f3] + _FP_FMT_SUFFIX[f7 & 1], rd=d,
                           rs1=s1, rs2=s2, srcs=fss, dests=fdd, is_fp=True)
    if f7 in (0x14, 0x15) and f3 in _FP_MINMAX:
        return Instruction(word, _FP_MINMAX[f3] + _FP_FMT_SUFFIX[f7 & 1],
                           rd=d, rs1=s1, rs2=s2, srcs=fss, dests=fdd,
                           is_fp=True)
    if f7 == 0x20 and s2 == 1:  # fcvt.s.d
        return Instruction(word, "fcvt.s.d", rd=d, rs1=s1, srcs=(("f", s1),),
                           dests=fdd, is_fp=True)
    if f7 == 0x21 and s2 == 0:  # fcvt.d.s
        return Instruction(word, "fcvt.d.s", rd=d, rs1=s1, srcs=(("f", s1),),
                           dests=fdd, is_fp=True)
    if f7 in (0x50, 0x51) and f3 in _FP_CMP:
        return Instruction(word, _FP_CMP[f3] + _FP_FMT_SUFFIX[f7 & 1], rd=d,
                           rs1=s1, rs2=s2, srcs=fss, dests=_xdst(d), is_fp=True)
    if f7 in (0x60, 0x61) and s2 in _FP_CVT_INT:  # float -> int
        mnem = f"fcvt.{_FP_CVT_INT[s2]}{_FP_FMT_SUFFIX[f7 & 1]}"
        return Instruction(word, mnem, rd=d, rs1=s1, srcs=(("f", s1),),
                           dests=_xdst(d), is_fp=True)
    if f7 in (0x68, 0x69) and s2 in _FP_CVT_INT:  # int -> float
        mnem = f"fcvt{_FP_FMT_SUFFIX[f7 & 1]}.{_FP_CVT_INT[s2]}"
        return Instruction(word, mnem, rd=d, rs1=s1, srcs=_xsrc(s1),
                           dests=fdd, is_fp=True)
    if f7 in (0x70, 0x71) and s2 == 0 and f3 == 0:  # fmv.x.w / fmv.x.d
        mnem = "fmv.x.w" if f7 == 0x70 else "fmv.x.d"
        return Instruction(word, mnem, rd=d, rs1=s1, srcs=(("f", s1),),
                           dests=_xdst(d), is_fp=True)
    if f7 in (0x70, 0x71) and s2 == 0 and f3 == 1:  # fclass
        return Instruction(word, "fclass" + _FP_FMT_SUFFIX[f7 & 1], rd=d,
                           rs1=s1, srcs=(("f", s1),), dests=_xdst(d), is_fp=True)
    if f7 in (0x78, 0x79) and s2 == 0 and f3 == 0:  # fmv.w.x / fmv.d.x
        mnem = "fmv.w.x" if f7 == 0x78 else "fmv.d.x"
        return Instruction(word, mnem, rd=d, rs1=s1, srcs=_xsrc(s1),
                           dests=fdd, is_fp=True)
    raise IllegalInstruction(word, f"OP-FP funct7={f7:#x} funct3={f3}")


_FMA_MNEMONICS = {op.MADD: "fmadd", op.MSUB: "fmsub",
                  op.NMSUB: "fnmsub", op.NMADD: "fnmadd"}


def _decode_fma(word: int) -> Instruction:
    fmt = bits(word, 26, 25)
    if fmt not in _FP_FMT_SUFFIX:
        raise IllegalInstruction(word, f"FMA fmt={fmt}")
    mnem = _FMA_MNEMONICS[opcode(word)] + _FP_FMT_SUFFIX[fmt]
    d, s1, s2, s3 = rd(word), rs1(word), rs2(word), rs3(word)
    return Instruction(word, mnem, rd=d, rs1=s1, rs2=s2, rs3=s3,
                       srcs=(("f", s1), ("f", s2), ("f", s3)),
                       dests=(("f", d),), is_fp=True)


def _decode_op_v(word: int) -> Instruction:
    f3 = funct3(word)
    if f3 == 0b111:
        return _decode_vset(word)
    f6 = funct6(word)
    mask_bit = vm(word)
    d, s1_field, s2_field = rd(word), rs1(word), rs2(word)

    mask_src = () if mask_bit else (("v", 0),)

    if f3 in (0b000, 0b011, 0b100):  # OPIVV / OPIVI / OPIVX
        return _decode_opi(word, f3, f6, mask_bit, d, s1_field, s2_field,
                           mask_src)
    if f3 in (0b010, 0b110):  # OPMVV / OPMVX
        return _decode_opm(word, f3, f6, mask_bit, d, s1_field, s2_field,
                           mask_src)
    if f3 in (0b001, 0b101):  # OPFVV / OPFVF
        return _decode_opf(word, f3, f6, mask_bit, d, s1_field, s2_field,
                           mask_src)
    raise IllegalInstruction(word, f"OP-V funct3={f3}")


def _decode_vset(word: int) -> Instruction:
    d, s1 = rd(word), rs1(word)
    top = bits(word, 31, 30)
    if not (word >> 31) & 1:  # vsetvli: zimm[10:0] in bits 30:20
        return Instruction(word, "vsetvli", rd=d, rs1=s1,
                           imm=bits(word, 30, 20), srcs=_xsrc(s1),
                           dests=_xdst(d), is_vector=True)
    if top == 0b11:  # vsetivli: zimm[9:0] in 29:20, uimm[4:0] in rs1 slot
        return Instruction(word, "vsetivli", rd=d, imm=bits(word, 29, 20),
                           shamt=s1, dests=_xdst(d), is_vector=True)
    if funct7(word) == 0b1000000:  # vsetvl
        s2 = rs2(word)
        return Instruction(word, "vsetvl", rd=d, rs1=s1, rs2=s2,
                           srcs=_xsrc(s1, s2), dests=_xdst(d), is_vector=True)
    raise IllegalInstruction(word, "OP-V config")


def _decode_opi(word, f3, f6, mask_bit, d, s1_field, s2_field, mask_src):
    if f6 == 0x17:  # vmerge / vmv.v.*
        if mask_bit:
            if s2_field != 0:
                raise IllegalInstruction(word, "vmv.v.* with vs2 != 0")
            if f3 == 0b000:
                return Instruction(word, "vmv.v.v", rd=d, rs1=s1_field,
                                   vm=1, srcs=(("v", s1_field),),
                                   dests=(("v", d),), is_vector=True)
            if f3 == 0b100:
                return Instruction(word, "vmv.v.x", rd=d, rs1=s1_field, vm=1,
                                   srcs=_xsrc(s1_field), dests=(("v", d),),
                                   is_vector=True)
            return Instruction(word, "vmv.v.i", rd=d, vm=1,
                               imm=sign_extend(s1_field, 5),
                               dests=(("v", d),), is_vector=True)
        base = "vmerge"
    else:
        base = _OPI_MNEMONICS.get(f6)
        if base is None:
            raise IllegalInstruction(word, f"OPI funct6={f6:#x}")
    unsigned_imm = base in ("vsll", "vsrl", "vsra", "vslideup",
                            "vslidedown", "vrgather")
    if f3 == 0b000:
        suffix, srcs = ".vv", (("v", s2_field), ("v", s1_field))
        kwargs = dict(rs1=s1_field)
    elif f3 == 0b100:
        suffix, srcs = ".vx", (("v", s2_field),) + _xsrc(s1_field)
        kwargs = dict(rs1=s1_field)
    else:
        suffix, srcs = ".vi", (("v", s2_field),)
        imm = s1_field if unsigned_imm else sign_extend(s1_field, 5)
        kwargs = dict(imm=imm)
    if base == "vmerge":
        suffix = {".vv": ".vvm", ".vx": ".vxm", ".vi": ".vim"}[suffix]
    return Instruction(word, base + suffix, rd=d, rs2=s2_field, vm=mask_bit,
                       srcs=srcs + mask_src, dests=(("v", d),),
                       is_vector=True, **kwargs)


def _decode_opm(word, f3, f6, mask_bit, d, s1_field, s2_field, mask_src):
    if f6 == 0x10:  # VWXUNARY0 / VRXUNARY0
        if f3 == 0b010:  # vmv.x.s
            if s1_field != 0:
                raise IllegalInstruction(word, "vmv.x.s vs1 != 0")
            return Instruction(word, "vmv.x.s", rd=d, rs2=s2_field,
                               srcs=(("v", s2_field),), dests=_xdst(d),
                               is_vector=True)
        if s2_field != 0:
            raise IllegalInstruction(word, "vmv.s.x vs2 != 0")
        return Instruction(word, "vmv.s.x", rd=d, rs1=s1_field,
                           srcs=_xsrc(s1_field), dests=(("v", d),),
                           is_vector=True)
    if f6 == 0x14 and f3 == 0b010:  # VMUNARY0: vid / viota
        if s1_field == 0b10001:
            return Instruction(word, "vid.v", rd=d, vm=mask_bit,
                               srcs=mask_src, dests=(("v", d),),
                               is_vector=True)
        if s1_field == 0b10000:
            return Instruction(word, "viota.m", rd=d, rs2=s2_field,
                               vm=mask_bit, srcs=(("v", s2_field),) + mask_src,
                               dests=(("v", d),), is_vector=True)
        raise IllegalInstruction(word, "VMUNARY0")
    base = _OPM_MNEMONICS.get(f6)
    if base is None:
        raise IllegalInstruction(word, f"OPM funct6={f6:#x}")
    if base in _REDUCTIONS:
        suffix = ".vs"
    else:
        suffix = ".vv" if f3 == 0b010 else ".vx"
    if f3 == 0b010:
        srcs = (("v", s2_field), ("v", s1_field))
        kwargs = dict(rs1=s1_field)
    else:
        srcs = (("v", s2_field),) + _xsrc(s1_field)
        kwargs = dict(rs1=s1_field)
    dests = (("v", d),)
    if base in _VD_IS_SOURCE:
        srcs += (("v", d),)
    return Instruction(word, base + suffix, rd=d, rs2=s2_field, vm=mask_bit,
                       srcs=srcs + mask_src, dests=dests, is_vector=True,
                       **kwargs)


def _decode_opf(word, f3, f6, mask_bit, d, s1_field, s2_field, mask_src):
    if f6 == 0x10:  # VWFUNARY0 / VRFUNARY0
        if f3 == 0b001:  # vfmv.f.s
            if s1_field != 0:
                raise IllegalInstruction(word, "vfmv.f.s vs1 != 0")
            return Instruction(word, "vfmv.f.s", rd=d, rs2=s2_field,
                               srcs=(("v", s2_field),), dests=(("f", d),),
                               is_vector=True, is_fp=True)
        if s2_field != 0:
            raise IllegalInstruction(word, "vfmv.s.f vs2 != 0")
        return Instruction(word, "vfmv.s.f", rd=d, rs1=s1_field,
                           srcs=(("f", s1_field),), dests=(("v", d),),
                           is_vector=True, is_fp=True)
    if f6 == 0x17:  # vfmerge / vfmv.v.f
        if f3 != 0b101:
            raise IllegalInstruction(word, "OPFVV funct6=0x17")
        if mask_bit:
            if s2_field != 0:
                raise IllegalInstruction(word, "vfmv.v.f vs2 != 0")
            return Instruction(word, "vfmv.v.f", rd=d, rs1=s1_field, vm=1,
                               srcs=(("f", s1_field),), dests=(("v", d),),
                               is_vector=True, is_fp=True)
        return Instruction(word, "vfmerge.vfm", rd=d, rs1=s1_field,
                           rs2=s2_field, vm=0,
                           srcs=(("v", s2_field), ("f", s1_field), ("v", 0)),
                           dests=(("v", d),), is_vector=True, is_fp=True)
    base = _OPF_MNEMONICS.get(f6)
    if base is None:
        raise IllegalInstruction(word, f"OPF funct6={f6:#x}")
    if base in _REDUCTIONS:
        suffix = ".vs"
    else:
        suffix = ".vv" if f3 == 0b001 else ".vf"
    if f3 == 0b001:
        srcs = (("v", s2_field), ("v", s1_field))
    else:
        srcs = (("v", s2_field), ("f", s1_field))
    if base in _VD_IS_SOURCE:
        srcs += (("v", d),)
    return Instruction(word, base + suffix, rd=d, rs1=s1_field, rs2=s2_field,
                       vm=mask_bit, srcs=srcs + mask_src, dests=(("v", d),),
                       is_vector=True, is_fp=True)


def _decode_misc_mem(word: int) -> Instruction:
    f3 = funct3(word)
    if f3 == 0:
        return Instruction(word, "fence", is_system=True)
    if f3 == 1:
        return Instruction(word, "fence.i", is_system=True)
    raise IllegalInstruction(word, f"MISC-MEM funct3={f3}")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word; raises :class:`IllegalInstruction`."""
    word &= 0xFFFF_FFFF
    if word & 0b11 != 0b11:
        raise IllegalInstruction(word, "compressed encodings unsupported")
    major = opcode(word)
    if major == op.LUI:
        d = rd(word)
        return Instruction(word, "lui", rd=d, imm=imm_u(word), dests=_xdst(d))
    if major == op.AUIPC:
        d = rd(word)
        return Instruction(word, "auipc", rd=d, imm=imm_u(word), dests=_xdst(d))
    if major == op.JAL:
        d = rd(word)
        return Instruction(word, "jal", rd=d, imm=imm_j(word),
                           dests=_xdst(d), is_jump=True)
    if major == op.JALR:
        if funct3(word) != 0:
            raise IllegalInstruction(word, "JALR funct3")
        d, s1 = rd(word), rs1(word)
        return Instruction(word, "jalr", rd=d, rs1=s1, imm=imm_i(word),
                           srcs=_xsrc(s1), dests=_xdst(d), is_jump=True)
    if major == op.BRANCH:
        return _decode_branch(word)
    if major == op.LOAD:
        return _decode_load(word)
    if major == op.STORE:
        return _decode_store(word)
    if major == op.OP_IMM:
        return _decode_op_imm(word)
    if major == op.OP_IMM_32:
        return _decode_op_imm32(word)
    if major == op.OP:
        return _decode_op(word, _OP_MNEMONICS, "OP")
    if major == op.OP_32:
        return _decode_op(word, _OP32_MNEMONICS, "OP-32")
    if major == op.SYSTEM:
        return _decode_system(word)
    if major == op.AMO:
        return _decode_amo(word)
    if major == op.LOAD_FP:
        return _decode_fp_load_store(word, is_load=True)
    if major == op.STORE_FP:
        return _decode_fp_load_store(word, is_load=False)
    if major == op.OP_FP:
        return _decode_op_fp(word)
    if major in _FMA_MNEMONICS:
        return _decode_fma(word)
    if major == op.OP_V:
        return _decode_op_v(word)
    if major == op.MISC_MEM:
        return _decode_misc_mem(word)
    raise IllegalInstruction(word, f"opcode {major:#04x}")
