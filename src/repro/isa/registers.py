"""Architectural register names for RV64 (integer, floating-point, vector).

The assembler accepts both numeric (``x5``/``f3``/``v12``) and ABI
(``t0``/``ft3``) spellings; the disassembler prints ABI names.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_VEC_REGS = 32

INT_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

FP_ABI_NAMES = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)

_INT_LOOKUP: dict[str, int] = {}
_FP_LOOKUP: dict[str, int] = {}
_VEC_LOOKUP: dict[str, int] = {}

for _i, _name in enumerate(INT_ABI_NAMES):
    _INT_LOOKUP[_name] = _i
    _INT_LOOKUP[f"x{_i}"] = _i
_INT_LOOKUP["fp"] = 8  # alias of s0

for _i, _name in enumerate(FP_ABI_NAMES):
    _FP_LOOKUP[_name] = _i
    _FP_LOOKUP[f"f{_i}"] = _i

for _i in range(NUM_VEC_REGS):
    _VEC_LOOKUP[f"v{_i}"] = _i


def parse_int_reg(name: str) -> int:
    """Map an integer register spelling (``x7``, ``t2``, ``fp``) to its index."""
    try:
        return _INT_LOOKUP[name.lower()]
    except KeyError:
        raise ValueError(f"unknown integer register {name!r}") from None


def parse_fp_reg(name: str) -> int:
    """Map an FP register spelling (``f7``, ``fa0``) to its index."""
    try:
        return _FP_LOOKUP[name.lower()]
    except KeyError:
        raise ValueError(f"unknown FP register {name!r}") from None


def parse_vec_reg(name: str) -> int:
    """Map a vector register spelling (``v0``..``v31``) to its index."""
    try:
        return _VEC_LOOKUP[name.lower()]
    except KeyError:
        raise ValueError(f"unknown vector register {name!r}") from None


def int_reg_name(index: int) -> str:
    """ABI name for an integer register index."""
    return INT_ABI_NAMES[index]


def fp_reg_name(index: int) -> str:
    """ABI name for an FP register index."""
    return FP_ABI_NAMES[index]


def vec_reg_name(index: int) -> str:
    """Name for a vector register index."""
    if not 0 <= index < NUM_VEC_REGS:
        raise ValueError(f"vector register index out of range: {index}")
    return f"v{index}"
