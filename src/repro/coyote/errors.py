"""Simulation-level error types.

Kept in their own module so subsystems below the orchestrator (the
resilience layer in particular) can raise and subclass them without
importing the orchestrator itself.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Raised when a simulation cannot make progress or a core traps.

    ``details`` carries structured context (current cycle, budgets,
    per-core state) so tools and tests can assert on the failure shape
    instead of parsing the message.
    """

    def __init__(self, message: str, **details):
        super().__init__(message)
        self.details = details

    def __getattr__(self, name: str):
        try:
            return self.__dict__["details"][name]
        except KeyError:
            raise AttributeError(name) from None
