"""The public simulation facade.

>>> from repro.coyote import Simulation, SimulationConfig
>>> from repro.kernels import scalar_matmul
>>> config = SimulationConfig.for_cores(4)
>>> workload = scalar_matmul(size=8, num_cores=4)
>>> results = Simulation(config, workload.program).run()
>>> results.succeeded()
True
"""

from __future__ import annotations

from pathlib import Path

from repro.assembler.program import Program
from repro.coyote.config import SimulationConfig
from repro.coyote.orchestrator import Orchestrator, SimulationError
from repro.coyote.stats import SimulationResults
from repro.coyote.trace import MissTraceRecorder


class Simulation:
    """One configured Coyote simulation of one program."""

    def __init__(self, config: SimulationConfig, program: Program):
        self.config = config
        self.program = program
        self.orchestrator = Orchestrator(config, program)
        self.trace: MissTraceRecorder | None = None
        if config.trace_misses:
            self.trace = MissTraceRecorder()
            self.orchestrator.hierarchy.trace_sink = self.trace
        # The telemetry hub (None unless config.telemetry enables it).
        self.telemetry = self.orchestrator.telemetry
        self._results: SimulationResults | None = None

    def run(self, pause_at: int | None = None) -> SimulationResults | None:
        """Run to completion (idempotent; re-runs return cached results).

        With ``pause_at`` set, stop at the first cycle boundary at or
        after that cycle and return ``None`` instead; the paused
        simulation can be checkpointed
        (:func:`repro.resilience.save_checkpoint`) or continued with a
        later ``run()`` call — the combined run is bit-identical to an
        uninterrupted one.
        """
        if self._results is None:
            self._results = self.orchestrator.run(pause_at=pause_at)
        return self._results

    @property
    def paused(self) -> bool:
        """True when the last ``run`` stopped at a ``pause_at`` cycle."""
        return self.orchestrator.paused

    @property
    def results(self) -> SimulationResults:
        if self._results is None:
            raise SimulationError("simulation has not been run")
        return self._results

    @property
    def memory(self):
        """The shared functional memory (for checking kernel outputs)."""
        return self.orchestrator.machine.memory

    def write_trace(self, basepath: str | Path) -> tuple[Path, Path]:
        """Write the recorded miss trace as Paraver ``.prv``/``.pcf``."""
        if self.trace is None:
            raise SimulationError(
                "tracing was not enabled (SimulationConfig.trace_misses)")
        results = self.results
        return self.trace.write(basepath, self.config.num_cores,
                                results.cycles)

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write the recorded Chrome trace-event JSON (Perfetto)."""
        if self.telemetry is None or self.telemetry.chrome is None:
            raise SimulationError(
                "Chrome tracing was not enabled "
                "(SimulationConfig.telemetry.chrome_trace)")
        if self._results is None:
            # The builder is only finalised at end-of-run.
            raise SimulationError("simulation has not been run")
        return self.telemetry.chrome.write(path)
