"""The parallel sweep execution engine.

Coyote exists for "the fast comparison of different designs", but a
cartesian campaign run serially leaves every host core but one idle.
:class:`ParallelSweep` fans sweep points out to a pool of worker
*processes* — one process per point, at most ``workers`` alive at a
time — and reassembles the results in deterministic axis order, so a
``workers=N`` table is bit-identical to a ``workers=1`` table
(``SweepTable.to_dict()`` compares equal byte for byte).

Design decisions, in the order they matter:

* **Determinism.**  Every worker rebuilds its point's full
  configuration (seeded fault injection, telemetry, watchdog) from the
  same ``base + settings`` recipe as the serial loop — the shared
  :func:`~repro.coyote.sweep.run_point` — and the parent orders
  outcomes by point index, never by completion order.
* **Crash isolation.**  One process per point means a worker that dies
  hard (segfault, ``os._exit``, OOM-kill) loses that point only: the
  parent observes the EOF on the result pipe plus the exit code and
  records a :class:`WorkerCrash` failure, exactly like any other
  ``on_error="skip"`` failure.
* **Error transport.**  A worker-side exception crosses the process
  boundary only if it survives a local pickle round-trip; otherwise a
  picklable :class:`RemoteError` stand-in carries the original type
  name and message, so failure records stay identical either way.
* **Warm-start.**  With ``campaign_path`` set, every completed point is
  appended to an atomic campaign checkpoint
  (:func:`repro.resilience.checkpoint.save_campaign`); a restarted
  campaign loads it and only runs the missing points.
* **Progress.**  ``progress=True`` streams ``k/n points, ETA`` through
  the ``repro.telemetry`` logger namespace
  (:class:`~repro.telemetry.campaign.CampaignProgress`).

The engine uses the ``fork`` start method where the platform offers it
(workload factories may be closures); on spawn-only platforms the
factory must be picklable (a module-level function).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from multiprocessing import connection
from typing import Any, Callable

from repro.coyote.errors import SimulationError
from repro.coyote.sweep import (
    Sweep,
    SweepPoint,
    SweepTable,
    _canonical_value,
    run_point,
)
from repro.resilience.checkpoint import load_campaign, save_campaign
from repro.telemetry.campaign import CampaignProgress

# How long the parent sleeps in connection.wait when nothing is ready.
_WAIT_SECONDS = 0.05


class WorkerCrash(SimulationError):
    """A sweep worker process died without reporting a result."""


class RemoteError(SimulationError):
    """Stand-in for a worker exception that could not cross the
    process boundary; ``kind`` preserves the original type name."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind

    def __reduce__(self):
        return (RemoteError, (self.kind, str(self.args[0])))


def _portable_error(error: Exception | None) -> Exception | None:
    """The error itself if it survives pickling, else a RemoteError."""
    if error is None:
        return None
    try:
        pickle.loads(pickle.dumps(error, pickle.HIGHEST_PROTOCOL))
    except Exception:
        return RemoteError(type(error).__name__, str(error))
    return error


def _worker_main(conn, index: int, settings: dict[str, Any],
                 base_cores: int, base_overrides: dict[str, Any],
                 make_workload: Callable, require_verified: bool) -> None:
    """Run one point in a child process and ship the outcome back."""
    try:
        point = run_point(settings, base_cores, base_overrides,
                          make_workload, require_verified)
        point.error = _portable_error(point.error)
    except BaseException as exc:  # run_point never raises; belt & braces
        point = SweepPoint(settings, None, False, _portable_error(exc))
    try:
        conn.send((index, point))
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        # Results themselves must be picklable (the checkpoint subsystem
        # guarantees it); if something slipped through, degrade to a
        # failure record rather than losing the campaign slot.
        conn.send((index, SweepPoint(
            settings, None, False,
            RemoteError(type(exc).__name__,
                        f"sweep point result was not picklable: {exc}"))))
    finally:
        conn.close()


def settings_key(settings: dict[str, Any]) -> tuple:
    """A canonical, hashable identity of one point's settings."""
    return tuple((name, _canonical_value(value))
                 for name, value in settings.items())


def axes_key(axes: dict[str, list]) -> str:
    """A canonical identity of a sweep's axes (campaign-file guard)."""
    return repr({name: [_canonical_value(value) for value in values]
                 for name, values in axes.items()})


class ParallelSweep:
    """Campaign executor behind :meth:`repro.coyote.sweep.Sweep.run`.

    ``workers=1`` executes in-process (no fork overhead, but also no
    crash isolation); ``workers=N`` runs at most N single-point worker
    processes at a time.  ``on_error="skip"`` records failures and
    carries on; ``"raise"`` terminates every outstanding worker at the
    first observed failure and re-raises — prompt, but which failing
    point surfaces first is completion-order dependent, so deterministic
    campaigns should prefer ``"skip"``.
    """

    def __init__(self, sweep: Sweep, *, workers: int = 1,
                 on_error: str = "raise", require_verified: bool = True,
                 progress: bool = False, campaign_path=None,
                 mp_context: str | None = None):
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.sweep = sweep
        self.workers = workers
        self.on_error = on_error
        self.require_verified = require_verified
        self.progress = progress
        self.campaign_path = campaign_path
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(mp_context)

    # -- public entry ------------------------------------------------------

    def run(self, make_workload: Callable) -> SweepTable:
        started = time.perf_counter()
        points = self.sweep.points()
        outcomes: dict[int, SweepPoint] = {}
        completed_store: dict[tuple, SweepPoint] = {}
        key = axes_key(self.sweep.axes)
        if self.campaign_path is not None:
            completed_store = load_campaign(self.campaign_path, key)
            for index, settings in enumerate(points):
                stored = completed_store.get(settings_key(settings))
                if stored is not None:
                    outcomes[index] = stored
        pending = [(index, settings)
                   for index, settings in enumerate(points)
                   if index not in outcomes]
        reporter = CampaignProgress(len(points)) if self.progress else None
        if reporter is not None and outcomes:
            for index in sorted(outcomes):
                reporter.point_completed(points[index],
                                         failed=outcomes[index].failed)

        def record(index: int, point: SweepPoint) -> None:
            outcomes[index] = point
            if reporter is not None:
                reporter.point_completed(point.settings,
                                         failed=point.failed)
            if self.campaign_path is not None:
                completed_store[settings_key(point.settings)] = point
                save_campaign(self.campaign_path, key, completed_store)
            if point.failed and self.on_error == "raise":
                raise point.error

        if self.workers == 1:
            for index, settings in pending:
                record(index, run_point(
                    settings, self.sweep.base_cores,
                    self.sweep.base_overrides, make_workload,
                    self.require_verified))
        else:
            self._run_pool(pending, make_workload, record)

        table = SweepTable(
            axes=self.sweep.axes,
            points=[outcomes[index] for index in range(len(points))],
            workers=self.workers,
            wall_seconds=time.perf_counter() - started)
        return table

    # -- the worker pool ---------------------------------------------------

    def _spawn(self, index: int, settings: dict[str, Any],
               make_workload: Callable):
        """Start one single-point worker; returns (process, conn)."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, index, settings, self.sweep.base_cores,
                  self.sweep.base_overrides, make_workload,
                  self.require_verified),
            daemon=True)
        process.start()
        child_conn.close()
        return process, parent_conn

    def _run_pool(self, pending: list[tuple[int, dict[str, Any]]],
                  make_workload: Callable,
                  record: Callable[[int, SweepPoint], None]) -> None:
        queue = list(pending)
        active: dict[Any, tuple[Any, int, dict[str, Any]]] = {}
        try:
            while queue or active:
                while queue and len(active) < self.workers:
                    index, settings = queue.pop(0)
                    process, conn = self._spawn(index, settings,
                                                make_workload)
                    active[conn] = (process, index, settings)
                ready = connection.wait(list(active), _WAIT_SECONDS)
                for conn in ready:
                    process, index, settings = active[conn]
                    try:
                        received_index, point = conn.recv()
                    except EOFError:
                        process.join()
                        point = SweepPoint(
                            settings, None, False,
                            WorkerCrash(
                                f"sweep worker for point {settings} died "
                                f"without reporting a result "
                                f"(exit code {process.exitcode})"))
                        received_index = index
                    else:
                        process.join()
                    conn.close()
                    del active[conn]
                    record(received_index, point)
        finally:
            # on_error="raise" (or any unexpected parent-side error):
            # don't leave orphan simulations burning the host.
            for conn, (process, _index, _settings) in active.items():
                process.terminate()
                process.join()
                conn.close()
