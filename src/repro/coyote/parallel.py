"""The parallel sweep execution engine, supervised.

Coyote exists for "the fast comparison of different designs", but a
cartesian campaign run serially leaves every host core but one idle.
:class:`ParallelSweep` fans sweep points out to a pool of worker
*processes* — one process per point, at most ``workers`` alive at a
time — and reassembles the results in deterministic axis order, so a
``workers=N`` table is bit-identical to a ``workers=1`` table
(``SweepTable.to_dict()`` compares equal byte for byte).

Design decisions, in the order they matter:

* **Determinism.**  Every worker rebuilds its point's full
  configuration (seeded fault injection, telemetry, watchdog) from the
  same ``base + settings`` recipe as the serial loop — the shared
  :func:`~repro.coyote.sweep.run_point` — and the parent orders
  outcomes by point index, never by completion order.  Retry backoff
  jitter is seeded (policy seed × point index × attempt), never drawn
  from wall time.
* **Crash isolation.**  One process per point means a worker that dies
  hard (segfault, ``os._exit``, OOM-kill) loses that point only: the
  parent observes the EOF on the result pipe plus the exit code, reads
  the worker's captured stderr tail, and records a
  :class:`WorkerCrash` failure, exactly like any other
  ``on_error="skip"`` failure.
* **Supervision.**  With a
  :class:`~repro.resilience.supervisor.SupervisorPolicy`, every
  attempt runs under the full lifecycle: workers send periodic
  ``(cycles, RSS)`` heartbeats over the result pipe, the parent
  enforces a per-point wall-clock timeout, a heartbeat deadline and an
  RSS ceiling, reaps overdue workers (SIGTERM → SIGKILL), re-dispatches
  with bounded seeded backoff, and quarantines a point that exhausts
  its retries as a structured
  :class:`~repro.resilience.supervisor.QuarantinedPoint`.  Repeated
  pool-level failures (fork failures, RSS trips) step the pool down
  ``N → N/2 → … → 1 → serial`` with logged
  :class:`~repro.resilience.supervisor.DegradationEvent` records
  instead of aborting.
* **Error transport.**  A worker-side exception crosses the process
  boundary only if it survives a local pickle round-trip; otherwise a
  picklable :class:`RemoteError` stand-in carries the original type
  name and message, so failure records stay identical either way.
* **Warm-start.**  With ``campaign_path`` set, every completed point is
  appended to an atomic campaign checkpoint
  (:func:`repro.resilience.checkpoint.save_campaign`); a restarted
  campaign loads it and only runs the missing points — including
  quarantined ones, which are never re-executed.  A SIGINT mid-campaign
  drains the pool and still flushes the partial checkpoint before the
  interrupt propagates.
* **Progress.**  ``progress=True`` streams ``k/n points, ETA`` through
  the ``repro.telemetry`` logger namespace
  (:class:`~repro.telemetry.campaign.CampaignProgress`); the supervised
  lifecycle reports to a
  :class:`~repro.telemetry.campaign.CampaignMonitor` (heartbeat gauges,
  retry/quarantine counters, per-attempt Chrome trace spans).

The engine uses the ``fork`` start method where the platform offers it
(workload factories may be closures); on spawn-only platforms the
factory must be picklable (a module-level function).
"""

from __future__ import annotations

import io
import logging
import multiprocessing
import os
import pickle
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable

from repro.coyote.errors import SimulationError
from repro.coyote.sweep import (
    Sweep,
    SweepPoint,
    SweepTable,
    _canonical_value,
    run_point,
)
from repro.resilience import supervisor as supervision
from repro.resilience.checkpoint import (
    CampaignCorruptError,
    load_campaign,
    save_campaign,
)
from repro.resilience.locking import PathLock
from repro.resilience.supervisor import Supervisor, SupervisorPolicy
from repro.telemetry.campaign import CampaignMonitor, CampaignProgress

logger = logging.getLogger("repro.coyote.parallel")

# How long the parent sleeps in connection.wait when nothing is ready.
_WAIT_SECONDS = 0.05


class WorkerCrash(SimulationError):
    """A sweep worker process died without reporting a result.

    ``exit_code`` and ``stderr_tail`` (the last ~2 KB the worker wrote
    to stderr) ride along as structured details so crash points are
    diagnosable from the failure record alone.
    """


class RemoteError(SimulationError):
    """Stand-in for a worker exception that could not cross the
    process boundary; ``kind`` preserves the original type name."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind

    def __reduce__(self):
        return (RemoteError, (self.kind, str(self.args[0])))


def _portable_error(error: Exception | None) -> Exception | None:
    """The error itself if it survives pickling, else a RemoteError."""
    if error is None:
        return None
    try:
        pickle.loads(pickle.dumps(error, pickle.HIGHEST_PROTOCOL))
    except Exception:
        return RemoteError(type(error).__name__, str(error))
    return error


def _worker_main(conn, index: int, settings: dict[str, Any],
                 base_cores: int, base_overrides: dict[str, Any],
                 make_workload: Callable, require_verified: bool,
                 heartbeat_seconds: float = 0.0,
                 stderr_path: str | None = None) -> None:
    """Run one point in a child process and ship the outcome back.

    The child's stderr (fd 2) is redirected to ``stderr_path`` first,
    so whatever a dying worker manages to print — a traceback, an
    allocator complaint — is recoverable by the parent.  With
    ``heartbeat_seconds > 0`` a daemon thread streams ``("hb", index,
    cycles, rss_mb)`` tuples over the same pipe the result travels on;
    a lock keeps the two senders from interleaving a message.
    """
    if stderr_path is not None:
        try:
            fd = os.open(stderr_path,
                         os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
            os.dup2(fd, 2)
            os.close(fd)
            # Rebind sys.stderr onto the redirected fd 2: a forked child
            # inherits the parent's stderr *object*, which may not write
            # through fd 2 at all (a test harness capture, a logging
            # shim) — and writing into a parent-owned buffer from the
            # child is wrong either way.
            sys.stderr = io.TextIOWrapper(
                io.FileIO(2, "w", closefd=False), line_buffering=True)
        except OSError:
            pass
    send_lock = threading.Lock()
    stop = threading.Event()
    probe: dict[str, Any] = {"simulation": None}

    def beat() -> None:
        while True:
            if not supervision.heartbeats_suppressed():
                simulation = probe["simulation"]
                cycles = 0
                if simulation is not None:
                    try:
                        cycles = (simulation.orchestrator.scheduler
                                  .current_cycle)
                    except Exception:
                        pass
                try:
                    with send_lock:
                        conn.send(("hb", index, cycles,
                                   supervision.worker_rss_mb()))
                except Exception:
                    return
            if stop.wait(heartbeat_seconds):
                return

    thread = None
    if heartbeat_seconds > 0:
        thread = threading.Thread(target=beat, daemon=True,
                                  name="coyote-heartbeat")
        thread.start()

    def observe(simulation) -> None:
        probe["simulation"] = simulation

    try:
        point = run_point(settings, base_cores, base_overrides,
                          make_workload, require_verified,
                          on_simulation=observe)
        point.error = _portable_error(point.error)
    except BaseException as exc:  # run_point never raises; belt & braces
        point = SweepPoint(settings, None, False, _portable_error(exc))
    if thread is not None:
        stop.set()
        thread.join(timeout=1.0)
    try:
        with send_lock:
            conn.send(("result", index, point))
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        # Results themselves must be picklable (the checkpoint subsystem
        # guarantees it); if something slipped through, degrade to a
        # failure record rather than losing the campaign slot.
        with send_lock:
            conn.send(("result", index, SweepPoint(
                settings, None, False,
                RemoteError(type(exc).__name__,
                            f"sweep point result was not picklable: "
                            f"{exc}"))))
    finally:
        conn.close()


def settings_key(settings: dict[str, Any]) -> tuple:
    """A canonical, hashable identity of one point's settings."""
    return tuple((name, _canonical_value(value))
                 for name, value in settings.items())


def axes_key(axes: dict[str, list]) -> str:
    """A canonical identity of a sweep's axes (campaign-file guard)."""
    return repr({name: [_canonical_value(value) for value in values]
                 for name, values in axes.items()})


@dataclass
class _ActiveWorker:
    """Parent-side state of one in-flight attempt."""

    process: Any
    conn: Any
    index: int
    settings: dict[str, Any]
    attempt: int
    started: float
    last_beat: float
    beats: list = field(default_factory=list)   # [(cycles, rss_mb)]
    stderr_path: str | None = None


class ParallelSweep:
    """Campaign executor behind :meth:`repro.coyote.sweep.Sweep.run`.

    ``workers=1`` executes in-process (no fork overhead, but also no
    crash isolation); ``workers=N`` runs at most N single-point worker
    processes at a time.  ``on_error="skip"`` records failures and
    carries on; ``"raise"`` terminates every outstanding worker at the
    first observed failure and re-raises — prompt, but which failing
    point surfaces first is completion-order dependent, so deterministic
    campaigns should prefer ``"skip"``.

    A supervised ``policy`` always uses the worker pool (even for
    ``workers=1``): timeouts and reaping need process isolation.
    """

    def __init__(self, sweep: Sweep, *, workers: int = 1,
                 on_error: str = "raise", require_verified: bool = True,
                 progress: bool = False, campaign_path=None,
                 mp_context: str | None = None,
                 policy: SupervisorPolicy | None = None):
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.sweep = sweep
        self.workers = workers
        self.on_error = on_error
        self.require_verified = require_verified
        self.progress = progress
        self.campaign_path = campaign_path
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.policy.validate()
        self.monitor = CampaignMonitor()
        self.supervisor = Supervisor(self.policy, monitor=self.monitor)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(mp_context)

    # -- public entry ------------------------------------------------------

    def run(self, make_workload: Callable) -> SweepTable:
        if self.campaign_path is None:
            return self._run(make_workload)
        # Advisory lock: a second process pointed at the same campaign
        # fails fast instead of silently interleaving atomic replaces.
        with PathLock(self.campaign_path):
            return self._run(make_workload)

    def _run(self, make_workload: Callable) -> SweepTable:
        started = time.perf_counter()
        points = self.sweep.points()
        outcomes: dict[int, SweepPoint] = {}
        completed_store: dict[tuple, SweepPoint] = {}
        key = axes_key(self.sweep.axes)
        if self.campaign_path is not None:
            try:
                completed_store = load_campaign(self.campaign_path, key)
            except CampaignCorruptError as exc:
                # Damage, not misuse: warn and recompute from scratch
                # rather than refusing to run the campaign at all.
                logger.warning(
                    "campaign checkpoint %s is corrupt (%s); "
                    "starting cold", self.campaign_path, exc)
                completed_store = {}
            for index, settings in enumerate(points):
                stored = completed_store.get(settings_key(settings))
                if stored is not None:
                    outcomes[index] = stored
        pending = [(index, settings)
                   for index, settings in enumerate(points)
                   if index not in outcomes]
        reporter = CampaignProgress(len(points)) if self.progress else None
        if reporter is not None and outcomes:
            for index in sorted(outcomes):
                reporter.point_completed(points[index],
                                         failed=outcomes[index].failed)

        def record(index: int, point: SweepPoint) -> None:
            outcomes[index] = point
            if reporter is not None:
                reporter.point_completed(point.settings,
                                         failed=point.failed)
            if self.campaign_path is not None:
                completed_store[settings_key(point.settings)] = point
                save_campaign(self.campaign_path, key, completed_store)
            if point.failed and self.on_error == "raise":
                raise point.error

        try:
            if self.workers == 1 and not self.policy.supervised:
                for index, settings in pending:
                    record(index, run_point(
                        settings, self.sweep.base_cores,
                        self.sweep.base_overrides, make_workload,
                        self.require_verified))
            else:
                self._run_pool(pending, make_workload, record)
        except KeyboardInterrupt:
            # The pool was drained by _run_pool's finally; persist what
            # the campaign already computed before the interrupt
            # propagates (the CLI maps it to exit 130).
            if self.campaign_path is not None:
                save_campaign(self.campaign_path, key, completed_store)
            raise

        table = SweepTable(
            axes=self.sweep.axes,
            points=[outcomes[index] for index in range(len(points))],
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            degradations=list(self.supervisor.degradations))
        return table

    # -- the worker pool ---------------------------------------------------

    def _spawn(self, index: int, settings: dict[str, Any],
               make_workload: Callable,
               attempt: int = 1) -> _ActiveWorker:
        """Start one single-point worker under supervision state."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        fd, stderr_path = tempfile.mkstemp(prefix="coyote-sweep-",
                                           suffix=".stderr")
        os.close(fd)
        try:
            process = self._context.Process(
                target=_worker_main,
                args=(child_conn, index, settings, self.sweep.base_cores,
                      self.sweep.base_overrides, make_workload,
                      self.require_verified,
                      self.policy.heartbeat_interval_seconds, stderr_path),
                daemon=True)
            process.start()
        except BaseException:
            parent_conn.close()
            child_conn.close()
            os.unlink(stderr_path)
            raise
        child_conn.close()
        now = time.monotonic()
        self.monitor.attempt_started(index, settings, attempt)
        return _ActiveWorker(process, parent_conn, index, settings,
                             attempt, now, now, [], stderr_path)

    def _retire(self, state: _ActiveWorker,
                active: dict[Any, _ActiveWorker]) -> str:
        """Ensure the worker is dead, the pipe closed, the stderr file
        harvested; returns the stderr tail."""
        process = state.process
        if process.is_alive():
            process.terminate()
            process.join(self.policy.term_grace_seconds)
            if process.is_alive():
                process.kill()
                process.join()
        else:
            process.join()
        try:
            state.conn.close()
        except OSError:
            pass
        active.pop(state.conn, None)
        tail = supervision.read_stderr_tail(state.stderr_path)
        if state.stderr_path is not None:
            try:
                os.unlink(state.stderr_path)
            except OSError:
                pass
            state.stderr_path = None
        return tail

    def _run_pool(self, pending: list[tuple[int, dict[str, Any]]],
                  make_workload: Callable,
                  record: Callable[[int, SweepPoint], None]) -> None:
        policy = self.policy
        supervisor = self.supervisor
        queue: deque = deque(pending)
        retries: list[tuple[float, int, dict[str, Any]]] = []
        active: dict[Any, _ActiveWorker] = {}
        current_workers = self.workers
        serial_mode = False

        def on_death(state: _ActiveWorker, outcome: str) -> None:
            """One attempt died (crash observed or worker reaped):
            record the failure, then retry or quarantine."""
            tail = self._retire(state, active)
            exit_code = state.process.exitcode
            self.monitor.attempt_finished(state.index, state.settings,
                                          state.attempt, outcome)
            if not policy.supervised:
                record(state.index, SweepPoint(
                    state.settings, None, False,
                    WorkerCrash(
                        f"sweep worker for point {state.settings} died "
                        f"without reporting a result "
                        f"(exit code {exit_code})",
                        exit_code=exit_code, stderr_tail=tail)))
                return
            action, payload = supervisor.record_failure(
                state.index, state.settings, outcome, exit_code, tail,
                state.beats)
            if action == "retry":
                retries.append((time.monotonic() + payload, state.index,
                                state.settings))
            else:
                record(state.index, SweepPoint(
                    state.settings, None, False, payload))

        def degrade(reason: str) -> None:
            nonlocal current_workers, serial_mode
            stepped = supervisor.pool_failure(reason, current_workers)
            if stepped is None:
                return
            if stepped == 0:
                serial_mode = True
            else:
                current_workers = stepped

        try:
            while queue or retries or active:
                now = time.monotonic()
                # Release retries whose backoff elapsed, in index order.
                due = sorted((item for item in retries if item[0] <= now),
                             key=lambda item: item[1])
                if due:
                    retries = [item for item in retries if item[0] > now]
                    queue.extend((index, settings)
                                 for _release, index, settings in due)

                if serial_mode and not active:
                    # Graceful-degradation floor: run the remainder
                    # in-process (no isolation left, but the campaign
                    # still terminates with every point accounted for).
                    leftovers = sorted(
                        list(queue) + [(index, settings) for _release,
                                       index, settings in retries])
                    for index, settings in leftovers:
                        record(index, run_point(
                            settings, self.sweep.base_cores,
                            self.sweep.base_overrides, make_workload,
                            self.require_verified))
                    return

                while (queue and not serial_mode
                       and len(active) < current_workers):
                    index, settings = queue.popleft()
                    attempt = supervisor.attempt_number(index)
                    try:
                        state = self._spawn(index, settings,
                                            make_workload, attempt)
                    except OSError as exc:
                        queue.appendleft((index, settings))
                        if not policy.degrade_after:
                            raise
                        degrade(f"worker spawn failed: {exc}")
                        break
                    active[state.conn] = state

                if active:
                    ready = connection.wait(list(active), _WAIT_SECONDS)
                else:
                    ready = []
                    if queue or retries:
                        time.sleep(_WAIT_SECONDS)

                for conn in ready:
                    state = active.get(conn)
                    if state is None:
                        continue
                    try:
                        message = conn.recv()
                    except EOFError:
                        on_death(state, "crash")
                        continue
                    if message[0] == "hb":
                        _tag, _index, cycles, rss_mb = message
                        state.last_beat = time.monotonic()
                        state.beats.append((cycles, rss_mb))
                        del state.beats[:-supervision.HEARTBEAT_TRAIL]
                        self.monitor.heartbeat(state.index, cycles,
                                               rss_mb)
                        if (policy.max_rss_mb is not None
                                and rss_mb > policy.max_rss_mb):
                            self.monitor.reaped(state.index,
                                                state.settings,
                                                "rss-exceeded")
                            on_death(state, "rss-exceeded")
                            degrade(f"worker RSS {rss_mb:.0f} MB over "
                                    f"the {policy.max_rss_mb:.0f} MB "
                                    f"ceiling")
                        continue
                    _tag, received_index, point = message
                    state.process.join()
                    self.monitor.attempt_finished(
                        state.index, state.settings, state.attempt,
                        "failed" if point.failed else "ok")
                    self._retire(state, active)
                    record(received_index, point)

                now = time.monotonic()
                for state in list(active.values()):
                    overdue = supervisor.overdue(state.started,
                                                 state.last_beat, now)
                    if overdue is not None:
                        self.monitor.reaped(state.index, state.settings,
                                            overdue)
                        on_death(state, overdue)
        finally:
            # on_error="raise", SIGINT, or any unexpected parent-side
            # error: don't leave orphan simulations burning the host.
            for state in list(active.values()):
                state.process.terminate()
                state.process.join()
                try:
                    state.conn.close()
                except OSError:
                    pass
                if state.stderr_path is not None:
                    try:
                        os.unlink(state.stderr_path)
                    except OSError:
                        pass
