"""The Coyote Orchestrator: lockstep coupling of Spike and Sparta.

Faithful to the paper's description:

    "Spike and Sparta are slaves to an Orchestrator that handles the
    simulation, keeping track of timing, and synchronizing both parts.
    Every cycle, the Orchestrator first tries to simulate an instruction
    on each of the active cores using Spike. [...] Once an instruction has
    been simulated in each of the active cores, the Orchestrator checks,
    if Sparta has any in-flight events for the current cycle. If this is
    the case, the Sparta model is advanced [...] Once an L1 miss is
    serviced, the registers that it writes to are made available [...]
    while stalled cores are set as active once again."

Two stall reasons deactivate a core: a RAW dependency against a pending
miss (re-checked each cycle via the scoreboard) and an instruction-fetch
miss (the core waits for that specific fill).  When every live core is
stalled the orchestrator fast-forwards the clock to the next scheduled
event — a pure optimisation with identical observable behaviour.

Two hot-loop optimisations keep host time proportional to simulated
work (docs/INTERNALS.md, "The hot loop & fast-forward"):

* the active-core list is kept incrementally sorted (bisect on wake,
  in-place delete on stall/halt) instead of re-sorted every cycle;
* when exactly one core is live and unstalled, a *run-ahead batch*
  executes instructions back to back until the next scheduled event,
  a miss, a stall or a halt — provably the same sequence of
  (instruction, cycle) pairs the per-cycle loop produces, because with
  one core there is nothing to interleave with and no event can fire
  inside the batch window.

``use_reference_loop = True`` selects the original straight-line
per-cycle loop; the differential tests run both and assert bit-identical
results, statistics and traces.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass

from repro.assembler.program import Program
from repro.coyote.config import SimulationConfig
from repro.coyote.errors import SimulationError
from repro.coyote.stats import CoreStats, SimulationResults
from repro.memhier.hierarchy import MemoryHierarchy
from repro.memhier.noc import MeshNoC
from repro.memhier.request import MemRequest, RequestKind
from repro.resilience.faults import FaultInjector
from repro.resilience.invariants import InvariantChecker
from repro.resilience.watchdog import Watchdog, deadlock_error
from repro.spike.hart import EnvironmentCall, Trap
from repro.spike.machine import BareMetalMachine
from repro.spike.scoreboard import Scoreboard
from repro.spike.translate import MAX_BLOCK, BlockTranslator
from repro.spike.simulator import (
    CLEAN_STEP,
    AccessKind,
    CoreModel,
    StepStatus,
)
from repro.sparta.scheduler import Scheduler
from repro.telemetry.chrome_trace import EXECUTING, FETCH_STALL, RAW_STALL
from repro.telemetry.hub import Telemetry


_KIND_MAP = {
    AccessKind.IFETCH: RequestKind.IFETCH,
    AccessKind.LOAD: RequestKind.LOAD,
    AccessKind.STORE: RequestKind.STORE,
    AccessKind.WRITEBACK: RequestKind.WRITEBACK,
}


class _SchedulerCycleSource:
    """Picklable ``rdcycle`` source: the Sparta scheduler's clock.

    A plain class (not a lambda) so a checkpoint can serialise harts
    together with the scheduler they read time from.
    """

    def __init__(self, scheduler: Scheduler):
        self.scheduler = scheduler

    def __call__(self) -> int:
        return self.scheduler.current_cycle


@dataclass
class _CoreState:
    """Orchestrator-side bookkeeping for one core."""

    raw_stall_cycles: int = 0
    fetch_stall_cycles: int = 0
    waiting_fetch_id: int | None = None
    halt_cycle: int | None = None
    stall_start: int = 0  # cycle the current stall began (if stalled)


class Orchestrator:
    """Drives the cycle loop over the functional cores and the modelled
    hierarchy."""

    def __init__(self, config: SimulationConfig, program: Program):
        self.config = config
        self.program = program
        self.scheduler = Scheduler()
        self.machine = BareMetalMachine(program, config.num_cores,
                                        vlen_bits=config.vlen_bits)
        self.cores = [CoreModel(hart, self.machine, config.l1)
                      for hart in self.machine.harts]
        cycle_source = _SchedulerCycleSource(self.scheduler)
        for hart in self.machine.harts:
            hart.cycle_source = cycle_source
        # Trace-compiled fast path: per-core translated-block caches,
        # dispatched by _cycle_loop (never by the reference loop, which
        # is what the differential tests compare against).  Each
        # translator registers itself with the machine's
        # CodeCacheRegistry for store invalidation and with its hart
        # for drop_code_caches().
        self.translators = None
        if config.translate:
            self.translators = [BlockTranslator(core, self.machine)
                                for core in self.cores]
        # Per-core "skip until" cycle for the multicore micro-block
        # dispatch: a core whose dispatched micro-block covered cycles
        # [c, c+n) already holds the architectural state of cycle c+n-1,
        # so the lockstep loop skips it until then.  Persisted across
        # pause/resume (a checkpoint can land mid-micro-block).
        self._resume_at = [0] * config.num_cores
        # Incremented by every successful _wake; the dispatch-gap jump
        # compares it across advance_cycle to prove no core became due.
        self._wake_epoch = 0
        self.hierarchy = MemoryHierarchy(config.memhier, self.scheduler)
        self.hierarchy.on_complete = self._on_request_complete
        self.scoreboard = Scoreboard(config.num_cores)
        self._states = [_CoreState() for _ in range(config.num_cores)]
        self._fetch_waits: dict[int, int] = {}  # request_id -> core_id
        # Cores ready to attempt execution; stalled cores leave and are
        # re-inserted by the completion that might unblock them
        # (event-driven wakeup: a stalled core costs nothing per cycle).
        # The list is kept sorted incrementally — bisect on wake,
        # in-place delete on stall/halt — so the cycle loop never sorts;
        # the set mirrors it for O(1) membership tests.
        self._active_list: list[int] = list(range(config.num_cores))
        self._active_set: set[int] = set(self._active_list)
        self._raw_waiting: set[int] = set()
        # cycles spent with exactly N active cores (N = 0 during
        # fast-forwarded stall periods).
        self._activity: dict[int, int] = {}
        # Differential-testing escape hatch: run the original
        # straight-line per-cycle loop instead of the optimised one.
        self.use_reference_loop = False
        # Pause/resume bookkeeping (checkpoint support): instructions
        # executed so far, wall time of earlier segments, and whether
        # the last ``run`` call stopped at a pause point.
        self._instructions_total = 0
        self._wall_accum = 0.0
        self._started = False
        self.paused = False
        # Opt-in observability: all hooks stay None when disabled so the
        # hot loop never touches them.
        self.telemetry: Telemetry | None = None
        self._chrome = None
        self._guestprof = None
        if config.telemetry.enabled:
            self.telemetry = Telemetry(config.telemetry, config.num_cores,
                                       self._collect_telemetry_values)
            sink = self.telemetry.request_sink()
            if sink is not None:
                self.hierarchy.telemetry_sink = sink
            observer = self.telemetry.noc_observer()
            if observer is not None:
                self.hierarchy.noc.latency_observer = observer
            self._chrome = self.telemetry.chrome
            noc = self.hierarchy.noc
            if isinstance(noc, MeshNoC):
                # Contention-model extras: per-hop queueing-delay
                # histogram and the Chrome in-flight counter track.
                queue_observer = self.telemetry.noc_queue_observer()
                if queue_observer is not None:
                    noc.queue_observer = queue_observer
                if self._chrome is not None:
                    noc.occupancy_sink = \
                        self._chrome.observe_noc_occupancy
            guestprof = self.telemetry.guestprof
            if guestprof is not None:
                # Retire hooks live inside CoreModel.step; the
                # submit/complete hooks below sit on miss paths only,
                # so the hot loop itself needs no extra checks.
                self._guestprof = guestprof
                for core, profile in zip(self.cores, guestprof.cores):
                    core.profile = profile

        # Resilience layer (docs/RESILIENCE.md): everything below is
        # None when the matching ResilienceConfig knob is off, so a
        # default-configured run pays nothing for it.
        resilience = config.resilience
        self.fault_injector: FaultInjector | None = None
        if resilience.faults:
            self.fault_injector = FaultInjector(
                "faults", self.hierarchy.root, resilience, self.hierarchy)
            self.fault_injector.install()
            if self._chrome is not None:
                self.fault_injector.event_sink = self._chrome.instant
        self.watchdog: Watchdog | None = None
        if resilience.watchdog_cycles:
            self.watchdog = Watchdog(resilience.watchdog_cycles, self)
        self.invariants: InvariantChecker | None = None
        if resilience.invariant_interval:
            self.invariants = InvariantChecker(
                self, resilience.invariant_interval)

    # -- completion plumbing ---------------------------------------------------

    def _on_request_complete(self, request: MemRequest) -> None:
        if request.member_ids:
            # MCPU-aggregated vector request: one response releases every
            # member scoreboard entry.
            for member_id in request.member_ids:
                self.scoreboard.complete_miss(member_id)
            core_id = request.core_id
        else:
            core_id = self.scoreboard.complete_miss(request.request_id)
        now = self.scheduler.current_cycle
        guestprof = self._guestprof
        pc = guestprof.note_complete(request) \
            if guestprof is not None else None
        waiting_core = self._fetch_waits.pop(request.request_id, None)
        if waiting_core is not None:
            wait_state = self._states[waiting_core]
            wait_state.waiting_fetch_id = None
            window = now - wait_state.stall_start
            wait_state.fetch_stall_cycles += window
            if guestprof is not None:
                guestprof.stall_end(waiting_core, pc, request.l2_hit,
                                    window, now, fetch=True)
            self._wake(waiting_core)
        elif core_id in self._raw_waiting:
            # One of this core's fills returned; let it retry its RAW
            # check on its next turn (it re-stalls if still blocked).
            self._raw_waiting.discard(core_id)
            state = self._states[core_id]
            window = now - state.stall_start
            state.raw_stall_cycles += window
            if guestprof is not None:
                guestprof.stall_end(core_id, pc, request.l2_hit,
                                    window, now, fetch=False)
            self._wake(core_id)

    def _wake(self, core_id: int) -> None:
        if not self.cores[core_id].halted \
                and core_id not in self._active_set:
            self._wake_epoch += 1
            self._active_set.add(core_id)
            insort(self._active_list, core_id)
            if self._chrome is not None:
                self._chrome.set_state(core_id, EXECUTING,
                                       self.scheduler.current_cycle)

    def _submit_misses(self, core_id: int, misses) -> int | None:
        """Send one step's misses into the hierarchy.

        Returns the request id of the IFETCH miss when present (the core
        must stall on it).
        """
        fetch_id = None
        aggregate: list = []
        aggregating = self.config.memhier.mcpu_aggregation
        guestprof = self._guestprof
        for miss in misses:
            if miss.kind is AccessKind.WRITEBACK:
                # Fire-and-forget: no completion will arrive.
                self.hierarchy.submit(-1, core_id, miss.line_address,
                                      RequestKind.WRITEBACK)
                continue
            if aggregating and miss.kind is AccessKind.LOAD:
                aggregate.append(miss)
                continue
            registers = miss.registers if miss.kind is AccessKind.LOAD \
                else ()
            miss_id = self.scoreboard.register_miss(core_id, registers)
            if guestprof is not None:
                guestprof.note_miss(miss_id, core_id, miss.pc,
                                    miss.kind.value, miss.line_address)
            self.hierarchy.submit(miss_id, core_id, miss.line_address,
                                  _KIND_MAP[miss.kind])
            if miss.kind is AccessKind.IFETCH:
                fetch_id = miss_id
        if aggregate:
            self._submit_aggregate(core_id, aggregate)
        return fetch_id

    def _submit_aggregate(self, core_id: int, misses: list) -> None:
        """Send one instruction's load misses as an MCPU group
        (or singly when there is no group to form)."""
        guestprof = self._guestprof
        if len(misses) == 1:
            miss = misses[0]
            miss_id = self.scoreboard.register_miss(core_id,
                                                    miss.registers)
            if guestprof is not None:
                guestprof.note_miss(miss_id, core_id, miss.pc,
                                    miss.kind.value, miss.line_address)
            self.hierarchy.submit(miss_id, core_id, miss.line_address,
                                  RequestKind.LOAD)
            return
        member_ids = []
        lines = []
        for miss in misses:
            member_id = self.scoreboard.register_miss(core_id,
                                                      miss.registers)
            if guestprof is not None:
                guestprof.note_miss(member_id, core_id, miss.pc,
                                    miss.kind.value, miss.line_address)
            member_ids.append(member_id)
            lines.append(miss.line_address)
        self.hierarchy.submit_aggregate(tuple(member_ids), core_id,
                                        lines, RequestKind.LOAD)

    # -- the cycle loop -----------------------------------------------------------

    def run(self, pause_at: int | None = None) -> SimulationResults | None:
        """Run to completion and return the results.

        With ``pause_at`` set, the cycle loop stops at the first loop
        boundary at or after that cycle instead (no event at or after
        ``pause_at`` has fired yet), sets :attr:`paused`, and returns
        ``None``; a later ``run()`` call continues exactly where the
        paused one stopped.  This is the checkpoint hook: a paused
        orchestrator can be serialised and the resumed run is
        bit-identical to an uninterrupted one
        (tests/resilience/test_checkpoint.py).
        """
        config = self.config
        scheduler = self.scheduler
        start_wall = time.perf_counter()

        # Telemetry hooks, hoisted into locals: when telemetry is
        # disabled each stays None and the loop pays only a handful of
        # local is-None tests per cycle (no attribute lookups).
        telemetry = self.telemetry
        sampler = chrome = profiler = heartbeat = None
        if telemetry is not None:
            sampler = telemetry.sampler
            chrome = telemetry.chrome
            profiler = telemetry.profiler
            if profiler is not None and config.telemetry.progress:
                heartbeat = profiler
            if sampler is not None and not self._started:
                sampler.start(scheduler.current_cycle)
        self._started = True
        clock = time.perf_counter

        self.paused = False
        if self.use_reference_loop:
            total_instructions = self._cycle_loop_reference(
                sampler, chrome, profiler, heartbeat, pause_at)
        else:
            total_instructions = self._cycle_loop(
                sampler, chrome, profiler, heartbeat, pause_at)
        self._instructions_total = total_instructions
        if self.paused:
            self._wall_accum += time.perf_counter() - start_wall
            return None

        # Drain requests still in flight when the last core halted, so
        # the final statistics balance (submitted == completed).
        drain_start = scheduler.current_cycle
        if profiler is not None:
            section_start = clock()
        scheduler.run_until_idle()
        if profiler is not None:
            profiler.sparta_seconds += clock() - section_start
        drained = scheduler.current_cycle - drain_start
        if drained:
            self._activity[0] = self._activity.get(0, 0) + drained

        wall_seconds = self._wall_accum + time.perf_counter() - start_wall
        if profiler is not None:
            section_start = clock()
        if sampler is not None:
            sampler.finalize(scheduler.current_cycle)
        if chrome is not None:
            chrome.finalize(scheduler.current_cycle)
        results = self._build_results(total_instructions, wall_seconds)
        if profiler is not None:
            profiler.stats_seconds += clock() - section_start
            results.host_profile = profiler.to_dict()
        return results

    def _cycle_loop(self, sampler, chrome, profiler, heartbeat,
                    pause_at: int | None = None) -> int:
        """The optimised cycle loop; returns instructions executed.

        Identical observable behaviour to :meth:`_cycle_loop_reference`
        (the differential tests assert it); the differences are pure
        host-side engineering: an incrementally-sorted active list,
        attribute lookups hoisted into locals, and the single-core
        run-ahead batch.
        """
        config = self.config
        scheduler = self.scheduler
        cores = self.cores
        states = self._states
        machine = self.machine
        active_list = self._active_list
        active_set = self._active_set
        raw_waiting = self._raw_waiting
        fetch_waits = self._fetch_waits
        activity = self._activity
        blocks = self.scoreboard.blocks
        # Live per-core busy-register maps, hoisted once: when a core's
        # map is empty no RAW dependency can block it, so the loop skips
        # the pre-step decode entirely (the common case on hit streaks).
        busy_maps = [self.scoreboard.busy_map(core_id)
                     for core_id in range(config.num_cores)]
        # Translated-block dispatch state, hoisted per core.  The cache
        # dicts are mutated in place by invalidation, so holding them in
        # locals is safe; ``None`` disables the fast path entirely.
        translators = self.translators
        resume = getattr(self, "_resume_at", None)
        if resume is None:  # checkpoint from an older layout
            resume = self._resume_at = [0] * config.num_cores
        if not hasattr(self, "_wake_epoch"):  # ditto
            self._wake_epoch = 0
        if translators is not None:
            tcaches = [translator.cache for translator in translators]
            ucaches = [translator.ucache for translator in translators]
            harts = [core.hart for core in cores]
            istats = [core.l1i.stats for core in cores]
            # Block functions return how many instructions they retired
            # but do not touch the pure counters (translate.py module
            # docstring); the loop accrues the counts here and flushes
            # them wherever they become observable.
            credit = [0] * config.num_cores
            ugets = [ucache.get for ucache in ucaches]
            ufgets = [translator.ufast.get for translator in translators]
        else:
            tcaches = ucaches = harts = istats = credit = None
            ugets = ufgets = None

        def flush_credits(single: int | None = None) -> None:
            """Settle accrued instruction counts into ``hart.instret``,
            ``core.instructions``, L1I read statistics and the loop's
            running total — for one core (before its interpreter step,
            which may read ``instret`` via a CSR) or for all (telemetry
            samples, loop exits).  Dispatch paths accrue ``credit`` only;
            everything downstream of a flush point sees exact counts."""
            nonlocal total_instructions
            if credit is None:
                return
            for cid in ((single,) if single is not None
                        else range(config.num_cores)):
                n = credit[cid]
                if n:
                    credit[cid] = 0
                    harts[cid].instret += n
                    cores[cid].instructions += n
                    istats[cid].reads += n
                    total_instructions += n
        advance_cycle = scheduler.advance_cycle
        next_event_cycle = scheduler.next_event_cycle
        max_cycles = config.max_cycles
        clock = time.perf_counter
        # Resume-aware: cores halted before a pause stay halted and the
        # instruction count continues from the previous segment.
        remaining_cores = sum(1 for core in cores if not core.halted)
        total_instructions = self._instructions_total
        watchdog = self.watchdog
        invariants = self.invariants
        # The run-ahead batch advances several cycles between telemetry
        # checkpoints; the interval sampler needs its per-cycle boundary
        # checks, so its presence disables the batch.
        run_ahead = sampler is None
        base_limit = MAX_BLOCK if run_ahead else 1
        _FAR = 1 << 62  # "no core becomes due" sentinel for min_due
        tint = int
        ring = None  # due-ring slots, allocated by the first batch
        # One flag folds the four per-cycle telemetry checks; all of the
        # observers need the instruction credits settled first.
        tail_hooks = (sampler is not None or heartbeat is not None
                      or watchdog is not None or invariants is not None)
        executed = StepStatus.EXECUTED
        fetch_miss = StepStatus.FETCH_MISS
        clean_step = CLEAN_STEP
        # With the sampler inactive nothing observes the activity
        # histogram mid-run, so the per-cycle tally accumulates in a
        # flat list (merged into the dict once, after the loop); with
        # the sampler live the shared dict is updated in place.
        activity_counts = ([0] * (config.num_cores + 1)
                           if run_ahead else None)

        while remaining_cores:
            now = scheduler.current_cycle
            if pause_at is not None and now >= pause_at:
                flush_credits()
                self.paused = True
                break
            if now >= max_cycles:
                flush_credits()
                raise SimulationError(
                    f"cycle budget exhausted ({max_cycles})",
                    current_cycle=now, max_cycles=max_cycles,
                    pending_events=scheduler.pending_events)

            if not active_list:
                # Every live core is stalled: jump to the next event (an
                # identical-behaviour fast-forward — only completions can
                # wake anyone).
                next_event = next_event_cycle()
                if next_event is None:
                    flush_credits()
                    stalled = [core.core_id for core in cores
                               if not core.halted]
                    raise deadlock_error(
                        self,
                        f"cores {stalled} stalled with no pending events")
                if pause_at is not None and next_event >= pause_at:
                    # Stop inside the gap, before the event fires; the
                    # resumed run re-enters this branch and counts the
                    # remaining ``next_event - pause_at + 1`` stalled
                    # cycles, so the split accounting matches an
                    # uninterrupted run exactly.
                    if activity_counts is not None:
                        activity_counts[0] += pause_at - now
                    else:
                        activity[0] = activity.get(0, 0) + pause_at - now
                    scheduler.advance_to(pause_at)
                    flush_credits()
                    self.paused = True
                    break
                if activity_counts is not None:
                    activity_counts[0] += next_event - now + 1
                else:
                    activity[0] = activity.get(0, 0) + next_event - now + 1
                if profiler is not None:
                    section_start = clock()
                scheduler.advance_to(next_event)
                advance_cycle()
                if profiler is not None:
                    profiler.sparta_seconds += clock() - section_start
                if tail_hooks:
                    flush_credits()
                    if sampler is not None:
                        sampler.maybe_sample(scheduler.current_cycle)
                    if heartbeat is not None:
                        heartbeat.maybe_heartbeat(scheduler.current_cycle,
                                                  total_instructions,
                                                  scheduler.events_fired)
                    if watchdog is not None:
                        watchdog.observe(scheduler.current_cycle,
                                         total_instructions,
                                         scheduler.events_fired)
                    if invariants is not None:
                        invariants.maybe_check(scheduler.current_cycle)
                continue

            if run_ahead and len(active_list) == 1 \
                    and resume[active_list[0]] <= now:
                next_event = next_event_cycle()
                bound = max_cycles if next_event is None \
                    else min(next_event, max_cycles)
                if pause_at is not None and pause_at < bound:
                    bound = pause_at
                if bound > now:
                    # Run-ahead batch: one live core, no event due before
                    # ``bound``.  Each iteration is one simulated cycle,
                    # byte-for-byte the per-cycle body specialised to a
                    # single core (equivalence argument in
                    # docs/INTERNALS.md).
                    core_id = active_list[0]
                    core = cores[core_id]
                    state = states[core_id]
                    peek = core.peek_registers
                    step = core.step
                    busy = busy_maps[core_id]
                    if translators is not None:
                        hart = harts[core_id]
                        fns = tcaches[core_id]
                        fns_get = fns.get
                        translate = translators[core_id].translate
                    else:
                        fns_get = None
                    if profiler is not None:
                        section_start = clock()
                    batch_cycles = 0
                    while now < bound:
                        if busy:
                            try:
                                registers = peek()
                            except Trap as exc:
                                raise SimulationError(
                                    f"core {core_id}: {exc}") from exc
                            blocked = blocks(core_id, registers)
                        else:
                            blocked = False
                        if blocked:
                            batch_cycles += 1
                            del active_list[0]
                            active_set.remove(core_id)
                            raw_waiting.add(core_id)
                            state.stall_start = now
                            if chrome is not None:
                                chrome.set_state(core_id, RAW_STALL, now)
                            # No event can be due at ``now`` (now <
                            # bound), so advancing the cycle is a bare
                            # clock increment.
                            now += 1
                            scheduler.current_cycle = now
                            break
                        if fns_get is not None and not busy:
                            # Translated sprint: dispatch whole blocks
                            # back to back while the budget allows.  The
                            # busy map cannot change mid-sprint (no
                            # completion fires before ``bound``), so the
                            # no-RAW gate above covers every sprinted
                            # instruction; any event exits the sprint.
                            fn = fns_get(hart.pc)
                            if fn is None:
                                fn = translate(hart.pc)
                            if fn is not False:
                                result = fn(bound - now)
                                if result is None:
                                    span = bound - now
                                    credit[core_id] += span
                                    batch_cycles += span
                                    now = bound
                                    scheduler.current_cycle = now
                                    continue
                                if type(result) is int:
                                    credit[core_id] += result
                                    batch_cycles += result
                                    now += result
                                    scheduler.current_cycle = now
                                    continue
                                span = result.executed
                                if span:
                                    # Last instruction missed and/or
                                    # halted at cycle ``now + span - 1``.
                                    credit[core_id] += span
                                    batch_cycles += span
                                    now += span - 1
                                    scheduler.current_cycle = now
                                    if result.misses:
                                        self._submit_misses(core_id,
                                                            result.misses)
                                    if core.halted:
                                        state.halt_cycle = now
                                        if active_list and \
                                                active_list[0] == core_id:
                                            del active_list[0]
                                            active_set.remove(core_id)
                                        remaining_cores -= 1
                                        if chrome is not None:
                                            chrome.halt(core_id, now)
                                    advance_cycle()
                                    break
                                # Zero progress (fetch miss or
                                # untranslatable): one interpreter step.
                        # The step may read instret (rdinstret CSR):
                        # settle this core's accrued count first.
                        if credit is not None and credit[core_id]:
                            flush_credits(core_id)
                        try:
                            outcome = step()
                        except EnvironmentCall:
                            machine.exit_codes[core_id] = \
                                core.hart.regs[10]
                            core.halted = True
                            outcome = None
                        except Trap as exc:
                            raise SimulationError(
                                f"core {core_id}: {exc}") from exc
                        if outcome is clean_step:
                            # Executed, no misses, still running — the
                            # dominant case the batch exists for.
                            total_instructions += 1
                            batch_cycles += 1
                            now += 1
                            scheduler.current_cycle = now
                            continue
                        batch_cycles += 1
                        leave = False
                        if outcome is not None:
                            status = outcome.status
                            if status is executed:
                                total_instructions += 1
                                if outcome.misses:
                                    self._submit_misses(core_id,
                                                        outcome.misses)
                                    leave = True
                            elif status is fetch_miss:
                                fetch_id = self._submit_misses(
                                    core_id, outcome.misses)
                                state.waiting_fetch_id = fetch_id
                                state.stall_start = now
                                fetch_waits[fetch_id] = core_id
                                del active_list[0]
                                active_set.remove(core_id)
                                if chrome is not None:
                                    chrome.set_state(core_id, FETCH_STALL,
                                                     now)
                                leave = True
                        if core.halted:
                            state.halt_cycle = now
                            if active_list and active_list[0] == core_id:
                                del active_list[0]
                                active_set.remove(core_id)
                            remaining_cores -= 1
                            if chrome is not None:
                                chrome.halt(core_id, now)
                            leave = True
                        if leave:
                            # Submissions may have scheduled events at
                            # the current cycle (zero NoC latency), so
                            # end the cycle through the scheduler.
                            advance_cycle()
                            break
                        now += 1
                        scheduler.current_cycle = now
                    flush_credits(core_id)
                    activity_counts[1] += batch_cycles
                    if profiler is not None:
                        profiler.spike_seconds += clock() - section_start
                    if heartbeat is not None:
                        heartbeat.maybe_heartbeat(scheduler.current_cycle,
                                                  total_instructions,
                                                  scheduler.events_fired)
                    if watchdog is not None:
                        watchdog.observe(scheduler.current_cycle,
                                         total_instructions,
                                         scheduler.events_fired)
                    if invariants is not None:
                        invariants.maybe_check(scheduler.current_cycle)
                    continue

            if run_ahead and ucaches is not None and not tail_hooks \
                    and len(active_list) > 1:
                next_event = next_event_cycle()
                bound = max_cycles if next_event is None \
                    else min(next_event, max_cycles)
                if pause_at is not None and pause_at < bound:
                    bound = pause_at
                if bound > now:
                    # Multicore run-ahead batch: no event, pause point or
                    # budget boundary before ``bound`` and no per-cycle
                    # observer is live, so only the cycles where some
                    # core is due need a visit.  A private due-ring
                    # (cycle -> sorted core ids) drives those visits;
                    # between them every live core is mid-micro-block
                    # and the scheduler queue is silent, so advancing
                    # the clock is a bare assignment (same equivalence
                    # argument as the dispatch-gap jump).  The ring is
                    # seeded from ``resume`` and simply discarded on
                    # every exit — ``resume`` stays authoritative, so
                    # the per-cycle path picks up seamlessly.
                    if profiler is not None:
                        section_start = clock()
                    # Slot ``cycle & 127``: dispatch returns are capped
                    # at MAX_BLOCK (64) cycles ahead, so live entries
                    # occupy at most 64 consecutive slots and can never
                    # wrap onto each other.  The lists are reused across
                    # batches (allocated once per loop invocation) and
                    # left empty on every exit path.
                    if ring is None:
                        ring = [[] for _ in range(128)]
                    live = len(active_list)
                    for core_id in active_list:
                        cycle = resume[core_id]
                        if cycle < now:
                            cycle = now
                        ring[cycle & 127].append(core_id)
                    # Busy maps only change at batch exits (submissions
                    # end the batch; completions need events), so one
                    # entry check covers every dispatch inside.
                    check_busy = False
                    for core_id in active_list:
                        if busy_maps[core_id]:
                            check_busy = True
                            break
                    while True:
                        todo = ring[now & 127]
                        if not todo:
                            # Gap: scan the (at most 64-slot) window for
                            # the next due cycle; an empty window means
                            # every core stalled or halted mid-batch.
                            nxt = now + 1
                            stop = now + 65
                            if bound < stop:
                                stop = bound
                            while nxt < stop and not ring[nxt & 127]:
                                nxt += 1
                            if nxt >= bound:
                                activity_counts[live] += bound - now
                                now = bound
                                scheduler.current_cycle = now
                                break
                            if not ring[nxt & 127]:
                                scheduler.current_cycle = now
                                break  # ring empty; head handles it
                            activity_counts[live] += nxt - now
                            now = nxt
                            continue
                        activity_counts[live] += 1
                        # Slots fill by appends from different source
                        # cycles; restore ascending core order before
                        # dispatching (determinism).
                        if len(todo) > 1:
                            todo.sort()
                        submitted = False
                        if not check_busy:
                            # Lean regime: no core has pending fills, so
                            # the RAW gate is vacuous and every dispatch
                            # gets the full budget — unchecked twins
                            # only, which never return ``None``.  Twin
                            # of the guarded regime below; keep the exit
                            # handling in sync.
                            for core_id in todo:
                                fn = ufgets[core_id](harts[core_id].pc)
                                if fn is None:
                                    translators[core_id].translate_uop(
                                        harts[core_id].pc)
                                    fn = ufgets[core_id](
                                        harts[core_id].pc)
                                result = fn()
                                if result.__class__ is tint:
                                    # ``resume`` is settled lazily by
                                    # the batch-exit ring scan.
                                    credit[core_id] += result
                                    ring[(now + result) & 127].append(
                                        core_id)
                                    continue
                                if result.executed:
                                    credit[core_id] += 1
                                    if result.misses:
                                        scheduler.current_cycle = now
                                        self._submit_misses(
                                            core_id, result.misses)
                                        submitted = True
                                    if cores[core_id].halted:
                                        states[core_id].halt_cycle = now
                                        active_list.remove(core_id)
                                        active_set.remove(core_id)
                                        remaining_cores -= 1
                                        live -= 1
                                        if chrome is not None:
                                            chrome.halt(core_id, now)
                                        continue
                                    if not submitted:
                                        ring[(now + 1) & 127].append(
                                            core_id)
                                    continue
                                # Zero progress or untranslatable:
                                # interpreter step.
                                scheduler.current_cycle = now
                                core = cores[core_id]
                                if credit[core_id]:
                                    flush_credits(core_id)
                                try:
                                    outcome = core.step()
                                except EnvironmentCall:
                                    machine.exit_codes[core_id] = \
                                        core.hart.regs[10]
                                    core.halted = True
                                    outcome = None
                                except Trap as exc:
                                    raise SimulationError(
                                        f"core {core_id}: {exc}") from exc
                                removed = False
                                rerun = True
                                if outcome is not None \
                                        and outcome is not clean_step:
                                    status = outcome.status
                                    if status is executed:
                                        total_instructions += 1
                                        if outcome.misses:
                                            self._submit_misses(
                                                core_id, outcome.misses)
                                            submitted = True
                                            rerun = False
                                    elif status is fetch_miss:
                                        fetch_id = self._submit_misses(
                                            core_id, outcome.misses)
                                        state = states[core_id]
                                        state.waiting_fetch_id = fetch_id
                                        state.stall_start = now
                                        fetch_waits[fetch_id] = core_id
                                        active_list.remove(core_id)
                                        active_set.remove(core_id)
                                        submitted = True
                                        removed = True
                                        live -= 1
                                        if chrome is not None:
                                            chrome.set_state(
                                                core_id, FETCH_STALL,
                                                now)
                                elif outcome is clean_step:
                                    total_instructions += 1
                                if core.halted:
                                    states[core_id].halt_cycle = now
                                    if not removed:
                                        active_list.remove(core_id)
                                        active_set.remove(core_id)
                                        removed = True
                                        live -= 1
                                    remaining_cores -= 1
                                    if chrome is not None:
                                        chrome.halt(core_id, now)
                                if not removed and rerun:
                                    ring[(now + 1) & 127].append(core_id)
                            todo.clear()
                            if submitted:
                                advance_cycle()
                                break
                            now += 1
                            if now >= bound:
                                scheduler.current_cycle = now
                                break
                            continue
                        for core_id in todo:
                            hart = harts[core_id]
                            if busy_maps[core_id]:
                                core = cores[core_id]
                                try:
                                    registers = core.peek_registers()
                                except Trap as exc:
                                    raise SimulationError(
                                        f"core {core_id}: {exc}"
                                    ) from exc
                                if blocks(core_id, registers):
                                    active_list.remove(core_id)
                                    active_set.remove(core_id)
                                    raw_waiting.add(core_id)
                                    states[core_id].stall_start = now
                                    live -= 1
                                    if chrome is not None:
                                        chrome.set_state(
                                            core_id, RAW_STALL, now)
                                    continue
                                # Pending fills: one instruction per
                                # cycle keeps the no-RAW gate tight.
                                limit = 1
                            else:
                                limit = MAX_BLOCK
                            # Guarded dispatches are rare; the checked
                            # variant serves both limits.
                            fn = ugets[core_id](hart.pc)
                            if fn is None:
                                fn = translators[core_id].translate_uop(
                                    hart.pc)
                            if fn is not False:
                                result = fn(limit)
                                if type(result) is int:
                                    credit[core_id] += result
                                    ring[(now + result) & 127].append(
                                        core_id)
                                    continue
                                if result is None:
                                    credit[core_id] += limit
                                    ring[(now + limit) & 127].append(
                                        core_id)
                                    continue
                                if result.executed:
                                    # One instruction retired; misses
                                    # and halts only at instruction 0.
                                    credit[core_id] += 1
                                    if result.misses:
                                        # The clock is advanced lazily;
                                        # settle it before events enter
                                        # the scheduler.
                                        scheduler.current_cycle = now
                                        self._submit_misses(
                                            core_id, result.misses)
                                        # New events: end the batch at
                                        # this cycle's boundary.  The
                                        # core's stale resume (<= now)
                                        # keeps it due next cycle.
                                        submitted = True
                                    if cores[core_id].halted:
                                        states[core_id].halt_cycle = now
                                        active_list.remove(core_id)
                                        active_set.remove(core_id)
                                        remaining_cores -= 1
                                        live -= 1
                                        if chrome is not None:
                                            chrome.halt(core_id, now)
                                        continue
                                    if not submitted:
                                        ring[(now + 1) & 127].append(
                                            core_id)
                                    continue
                                # Zero progress: interpreter step below.
                            scheduler.current_cycle = now
                            core = cores[core_id]
                            # The step may read instret (rdinstret CSR):
                            # settle this core's accrued count first.
                            if credit[core_id]:
                                flush_credits(core_id)
                            try:
                                outcome = core.step()
                            except EnvironmentCall:
                                machine.exit_codes[core_id] = \
                                    core.hart.regs[10]
                                core.halted = True
                                outcome = None
                            except Trap as exc:
                                raise SimulationError(
                                    f"core {core_id}: {exc}") from exc
                            removed = False
                            rerun = True
                            if outcome is not None \
                                    and outcome is not clean_step:
                                status = outcome.status
                                if status is executed:
                                    total_instructions += 1
                                    if outcome.misses:
                                        self._submit_misses(
                                            core_id, outcome.misses)
                                        submitted = True
                                        rerun = False
                                elif status is fetch_miss:
                                    fetch_id = self._submit_misses(
                                        core_id, outcome.misses)
                                    state = states[core_id]
                                    state.waiting_fetch_id = fetch_id
                                    state.stall_start = now
                                    fetch_waits[fetch_id] = core_id
                                    active_list.remove(core_id)
                                    active_set.remove(core_id)
                                    submitted = True
                                    removed = True
                                    live -= 1
                                    if chrome is not None:
                                        chrome.set_state(
                                            core_id, FETCH_STALL, now)
                            elif outcome is clean_step:
                                total_instructions += 1
                            if core.halted:
                                states[core_id].halt_cycle = now
                                if not removed:
                                    active_list.remove(core_id)
                                    active_set.remove(core_id)
                                    removed = True
                                    live -= 1
                                remaining_cores -= 1
                                if chrome is not None:
                                    chrome.halt(core_id, now)
                            if not removed and rerun:
                                ring[(now + 1) & 127].append(core_id)
                        todo.clear()
                        if submitted:
                            # End the cycle through the scheduler (a
                            # submission may complete with zero latency)
                            # and rebuild bounds at the loop head; the
                            # submit sites already settled the clock.
                            advance_cycle()
                            break
                        now += 1
                        if now >= bound:
                            scheduler.current_cycle = now
                            break
                    # Exit: settle ``resume`` from the ring (dispatches
                    # defer the writes — mid-batch the ring itself is
                    # the authority on who is due when) and leave every
                    # slot empty for the next batch.  Live entries all
                    # sit in [now, now + 64]: a bound break can leave
                    # an unconsumed entry at exactly ``now`` (the gap
                    # scan stops short of the bound slot), so the scan
                    # must start there, not one past it.  A core that
                    # left on an event at ``now`` has no entry and a
                    # resume still <= now, which the per-cycle path
                    # reads as "due immediately" — exactly right.
                    for cycle in range(now, now + 65):
                        bucket = ring[cycle & 127]
                        if bucket:
                            for core_id in bucket:
                                resume[core_id] = cycle
                            bucket.clear()
                    if profiler is not None:
                        profiler.spike_seconds += clock() - section_start
                    continue

            active_now = len(active_list)

            if activity_counts is not None:
                activity_counts[active_now] += 1
            else:
                activity[active_now] = activity.get(active_now, 0) + 1

            if profiler is not None:
                section_start = clock()
            index = 0
            count = active_now
            min_due = 0
            if ucaches is None:
                # Interpreter-only pass (``translate=False``).  A twin
                # of the dispatching pass below — duplicated so the hot
                # variant carries no per-visit mode checks; the RAW gate
                # and the outcome handling must stay in sync.
                while index < count:
                    core_id = active_list[index]
                    core = cores[core_id]
                    busy = busy_maps[core_id]

                    # RAW check against pending misses (paper: the core
                    # is inactive until the dependency is satisfied).
                    # Skipped outright with no busy registers.
                    if busy:
                        try:
                            registers = core.peek_registers()
                        except Trap as exc:
                            raise SimulationError(
                                f"core {core_id}: {exc}") from exc
                        if blocks(core_id, registers):
                            del active_list[index]
                            count -= 1
                            active_set.remove(core_id)
                            raw_waiting.add(core_id)
                            states[core_id].stall_start = now
                            if chrome is not None:
                                chrome.set_state(core_id, RAW_STALL, now)
                            continue

                    try:
                        outcome = core.step()
                    except EnvironmentCall:
                        # Bare-metal convention: ecall halts the calling
                        # hart with exit code a0.
                        machine.exit_codes[core_id] = core.hart.regs[10]
                        core.halted = True
                        outcome = None
                    except Trap as exc:
                        raise SimulationError(
                            f"core {core_id}: {exc}") from exc

                    if outcome is clean_step:
                        # Executed, no misses, still running: nothing
                        # else to record for this core this cycle.
                        total_instructions += 1
                        index += 1
                        continue

                    removed = False
                    if outcome is not None:
                        status = outcome.status
                        if status is executed:
                            total_instructions += 1
                            if outcome.misses:
                                self._submit_misses(core_id,
                                                    outcome.misses)
                        elif status is fetch_miss:
                            fetch_id = self._submit_misses(
                                core_id, outcome.misses)
                            state = states[core_id]
                            state.waiting_fetch_id = fetch_id
                            state.stall_start = now
                            fetch_waits[fetch_id] = core_id
                            del active_list[index]
                            count -= 1
                            active_set.remove(core_id)
                            removed = True
                            if chrome is not None:
                                chrome.set_state(core_id, FETCH_STALL,
                                                 now)

                    if core.halted:
                        states[core_id].halt_cycle = now
                        if not removed:
                            del active_list[index]
                            count -= 1
                            active_set.remove(core_id)
                            removed = True
                        remaining_cores -= 1
                        if chrome is not None:
                            chrome.halt(core_id, now)
                    if not removed:
                        index += 1
            else:
                # Dispatching pass: same visit order and per-cycle
                # effects as the interpreter pass.  The translated
                # micro-block's memory access (if any) is instruction 0,
                # executed this cycle — every cross-core-visible effect
                # lands on its exact lockstep cycle — and the register-
                # private tail runs ahead, the resume skip covering its
                # remaining cycles.  ``min_due`` tracks the earliest
                # cycle any surviving core becomes due again (0 = due
                # next cycle) and feeds the dispatch-gap jump after the
                # pass.  Halted cores never appear here: every halt site
                # removes the core and ``_wake`` refuses them.
                min_due = _FAR
                while index < count:
                    core_id = active_list[index]
                    due = resume[core_id]
                    if due > now:
                        # Mid-micro-block: the busy map stayed empty
                        # (the dispatch required it empty and a miss
                        # ends the micro-block), so no RAW or fetch
                        # check applies until the next dispatch.
                        if due < min_due:
                            min_due = due
                        index += 1
                        continue
                    busy = busy_maps[core_id]
                    if busy:
                        core = cores[core_id]
                        try:
                            registers = core.peek_registers()
                        except Trap as exc:
                            raise SimulationError(
                                f"core {core_id}: {exc}") from exc
                        if blocks(core_id, registers):
                            del active_list[index]
                            count -= 1
                            active_set.remove(core_id)
                            raw_waiting.add(core_id)
                            states[core_id].stall_start = now
                            if chrome is not None:
                                chrome.set_state(core_id, RAW_STALL, now)
                            continue
                        # Pending fills: stay at one instruction per
                        # cycle so the no-RAW gate covers every one.
                        limit = 1
                    else:
                        limit = base_limit
                    hart = harts[core_id]
                    fn = ugets[core_id](hart.pc)
                    if fn is None:
                        fn = translators[core_id].translate_uop(hart.pc)
                    if fn is not False:
                        result = fn(limit)
                        if result is None:
                            credit[core_id] += limit
                            if limit > 1:
                                due = now + limit
                                resume[core_id] = due
                                if due < min_due:
                                    min_due = due
                            else:
                                min_due = 0
                            index += 1
                            continue
                        if type(result) is int:
                            credit[core_id] += result
                            if result > 1:
                                due = now + result
                                resume[core_id] = due
                                if due < min_due:
                                    min_due = due
                            else:
                                min_due = 0
                            index += 1
                            continue
                        if result.executed:
                            # Micro-blocks miss or halt only at
                            # instruction 0, so exactly one instruction
                            # retired on this cycle.
                            credit[core_id] += 1
                            min_due = 0
                            if result.misses:
                                self._submit_misses(core_id,
                                                    result.misses)
                            if cores[core_id].halted:
                                states[core_id].halt_cycle = now
                                del active_list[index]
                                count -= 1
                                active_set.remove(core_id)
                                remaining_cores -= 1
                                if chrome is not None:
                                    chrome.halt(core_id, now)
                                continue
                            index += 1
                            continue
                        # Zero progress: interpreter step below handles
                        # the fetch miss / untranslatable instruction.
                    min_due = 0
                    core = cores[core_id]
                    # The step may read instret (rdinstret CSR): settle
                    # this core's accrued count first.
                    if credit[core_id]:
                        flush_credits(core_id)
                    try:
                        outcome = core.step()
                    except EnvironmentCall:
                        # Bare-metal convention: ecall halts the calling
                        # hart with exit code a0.
                        machine.exit_codes[core_id] = core.hart.regs[10]
                        core.halted = True
                        outcome = None
                    except Trap as exc:
                        raise SimulationError(
                            f"core {core_id}: {exc}") from exc

                    if outcome is clean_step:
                        total_instructions += 1
                        index += 1
                        continue

                    removed = False
                    if outcome is not None:
                        status = outcome.status
                        if status is executed:
                            total_instructions += 1
                            if outcome.misses:
                                self._submit_misses(core_id,
                                                    outcome.misses)
                        elif status is fetch_miss:
                            fetch_id = self._submit_misses(
                                core_id, outcome.misses)
                            state = states[core_id]
                            state.waiting_fetch_id = fetch_id
                            state.stall_start = now
                            fetch_waits[fetch_id] = core_id
                            del active_list[index]
                            count -= 1
                            active_set.remove(core_id)
                            removed = True
                            if chrome is not None:
                                chrome.set_state(core_id, FETCH_STALL,
                                                 now)

                    if core.halted:
                        states[core_id].halt_cycle = now
                        if not removed:
                            del active_list[index]
                            count -= 1
                            active_set.remove(core_id)
                            removed = True
                        remaining_cores -= 1
                        if chrome is not None:
                            chrome.halt(core_id, now)
                    if not removed:
                        index += 1
            if profiler is not None:
                now_wall = clock()
                profiler.spike_seconds += now_wall - section_start
                section_start = now_wall

            # Advance Sparta in sync with functional execution;
            # completions fired here re-activate stalled cores (bumping
            # the wake epoch, which vetoes the jump below).
            epoch = self._wake_epoch
            advance_cycle()
            if profiler is not None:
                profiler.sparta_seconds += clock() - section_start
            if tail_hooks:
                flush_credits()
                if sampler is not None:
                    sampler.maybe_sample(scheduler.current_cycle)
                if heartbeat is not None:
                    heartbeat.maybe_heartbeat(scheduler.current_cycle,
                                              total_instructions,
                                              scheduler.events_fired)
                if watchdog is not None:
                    watchdog.observe(scheduler.current_cycle,
                                     total_instructions,
                                     scheduler.events_fired)
                if invariants is not None:
                    invariants.maybe_check(scheduler.current_cycle)
            if min_due > now + 1 and count and run_ahead \
                    and epoch == self._wake_epoch:
                # Dispatch-gap fast-forward: every surviving core is
                # inside a previously dispatched micro-block and no
                # event woke anyone, so nothing executes before the
                # earliest resume cycle — jump the clock there (bounded
                # by the next event, the pause point and the cycle
                # budget, all identical-behaviour constraints; each
                # skipped cycle would be an all-skip pass with no events
                # due, i.e. a bare clock increment).
                target = min_due
                next_event = next_event_cycle()
                if next_event is not None and next_event < target:
                    target = next_event
                if pause_at is not None and pause_at < target:
                    target = pause_at
                if max_cycles < target:
                    target = max_cycles
                here = now + 1
                if target > here:
                    activity_counts[count] += target - here
                    scheduler.current_cycle = target

        flush_credits()
        if activity_counts is not None:
            for cores_active, cycles in enumerate(activity_counts):
                if cycles:
                    activity[cores_active] = \
                        activity.get(cores_active, 0) + cycles
        return total_instructions

    def _cycle_loop_reference(self, sampler, chrome, profiler, heartbeat,
                              pause_at: int | None = None) -> int:
        """The original per-cycle loop, kept verbatim as the behavioural
        reference for the differential tests.

        It operates on ``_active_set`` with a fresh ``sorted()`` every
        cycle; ``_active_list`` is kept in sync so :meth:`_wake` keeps
        working (the optimised loop and the reference loop never run in
        the same simulation).
        """
        config = self.config
        scheduler = self.scheduler
        cores = self.cores
        states = self._states
        scoreboard = self.scoreboard
        active = self._active_set
        remaining_cores = sum(1 for core in cores if not core.halted)
        total_instructions = self._instructions_total
        watchdog = self.watchdog
        invariants = self.invariants
        clock = time.perf_counter

        def deactivate(core_id: int) -> None:
            active.discard(core_id)
            try:
                self._active_list.remove(core_id)
            except ValueError:
                pass

        while remaining_cores:
            if pause_at is not None \
                    and scheduler.current_cycle >= pause_at:
                self.paused = True
                break
            if scheduler.current_cycle >= config.max_cycles:
                raise SimulationError(
                    f"cycle budget exhausted ({config.max_cycles})",
                    current_cycle=scheduler.current_cycle,
                    max_cycles=config.max_cycles,
                    pending_events=scheduler.pending_events)

            if not active:
                next_event = scheduler.next_event_cycle()
                if next_event is None:
                    stalled = [core.core_id for core in cores
                               if not core.halted]
                    raise deadlock_error(
                        self,
                        f"cores {stalled} stalled with no pending events")
                if pause_at is not None and next_event >= pause_at:
                    skipped = pause_at - scheduler.current_cycle
                    self._activity[0] = \
                        self._activity.get(0, 0) + skipped
                    while scheduler.current_cycle < pause_at:
                        scheduler.advance_cycle()
                    self.paused = True
                    break
                skipped = next_event - scheduler.current_cycle + 1
                self._activity[0] = self._activity.get(0, 0) + skipped
                if profiler is not None:
                    section_start = clock()
                while scheduler.current_cycle < next_event:
                    scheduler.advance_cycle()
                scheduler.advance_cycle()
                if profiler is not None:
                    profiler.sparta_seconds += clock() - section_start
                if sampler is not None:
                    sampler.maybe_sample(scheduler.current_cycle)
                if heartbeat is not None:
                    heartbeat.maybe_heartbeat(scheduler.current_cycle,
                                              total_instructions,
                                              scheduler.events_fired)
                if watchdog is not None:
                    watchdog.observe(scheduler.current_cycle,
                                     total_instructions,
                                     scheduler.events_fired)
                if invariants is not None:
                    invariants.maybe_check(scheduler.current_cycle)
                continue

            active_now = len(active)
            self._activity[active_now] = \
                self._activity.get(active_now, 0) + 1

            if profiler is not None:
                section_start = clock()
            for core_id in sorted(active):
                core = cores[core_id]
                state = states[core_id]

                try:
                    registers = core.peek_registers()
                except Trap as exc:
                    raise SimulationError(
                        f"core {core_id}: {exc}") from exc
                if scoreboard.blocks(core_id, registers):
                    deactivate(core_id)
                    self._raw_waiting.add(core_id)
                    state.stall_start = scheduler.current_cycle
                    if chrome is not None:
                        chrome.set_state(core_id, RAW_STALL,
                                         scheduler.current_cycle)
                    continue

                try:
                    outcome = core.step()
                except EnvironmentCall:
                    self.machine.exit_codes[core_id] = core.hart.regs[10]
                    core.halted = True
                    outcome = None
                except Trap as exc:
                    raise SimulationError(
                        f"core {core_id}: {exc}") from exc

                if outcome is not None:
                    if outcome.status is StepStatus.EXECUTED:
                        total_instructions += 1
                        self._submit_misses(core_id, outcome.misses)
                    elif outcome.status is StepStatus.FETCH_MISS:
                        fetch_id = self._submit_misses(core_id,
                                                       outcome.misses)
                        state.waiting_fetch_id = fetch_id
                        state.stall_start = scheduler.current_cycle
                        self._fetch_waits[fetch_id] = core_id
                        deactivate(core_id)
                        if chrome is not None:
                            chrome.set_state(core_id, FETCH_STALL,
                                             scheduler.current_cycle)

                if core.halted:
                    state.halt_cycle = scheduler.current_cycle
                    deactivate(core_id)
                    remaining_cores -= 1
                    if chrome is not None:
                        chrome.halt(core_id, scheduler.current_cycle)
            if profiler is not None:
                now_wall = clock()
                profiler.spike_seconds += now_wall - section_start
                section_start = now_wall

            scheduler.advance_cycle()
            if profiler is not None:
                profiler.sparta_seconds += clock() - section_start
            if sampler is not None:
                sampler.maybe_sample(scheduler.current_cycle)
            if heartbeat is not None:
                heartbeat.maybe_heartbeat(scheduler.current_cycle,
                                          total_instructions,
                                          scheduler.events_fired)
            if watchdog is not None:
                watchdog.observe(scheduler.current_cycle,
                                 total_instructions,
                                 scheduler.events_fired)
            if invariants is not None:
                invariants.maybe_check(scheduler.current_cycle)
        return total_instructions

    # -- telemetry --------------------------------------------------------------

    def _collect_telemetry_values(self) -> dict[str, float]:
        """One flat snapshot of every counter the sampler tracks.

        Hierarchy counters keep their dotted unit names; functional-side
        aggregates are added under ``cores.*`` and the activity
        histogram under ``activity.<N>``.
        """
        values = self.hierarchy.collect_values()
        instructions = 0
        l1d_accesses = l1d_misses = l1i_accesses = l1i_misses = 0
        for core in self.cores:
            instructions += core.instructions
            l1d = core.l1d.stats
            l1i = core.l1i.stats
            l1d_accesses += l1d.accesses
            l1d_misses += l1d.misses
            l1i_accesses += l1i.accesses
            l1i_misses += l1i.misses
        values["cores.instructions"] = instructions
        values["cores.l1d_accesses"] = l1d_accesses
        values["cores.l1d_misses"] = l1d_misses
        values["cores.l1i_accesses"] = l1i_accesses
        values["cores.l1i_misses"] = l1i_misses
        for count, cycles in self._activity.items():
            values[f"activity.{count}"] = cycles
        return values

    # -- results ---------------------------------------------------------------

    def _build_results(self, total_instructions: int,
                       wall_seconds: float) -> SimulationResults:
        core_stats = []
        for core, state in zip(self.cores, self._states):
            core_stats.append(CoreStats(
                core_id=core.core_id,
                instructions=core.instructions,
                raw_stall_cycles=state.raw_stall_cycles,
                fetch_stall_cycles=state.fetch_stall_cycles,
                halt_cycle=state.halt_cycle,
                exit_code=self.machine.exit_codes.get(core.core_id),
                l1i=core.l1i.stats,
                l1d=core.l1d.stats))
        telemetry = self.telemetry
        guest_profile = None
        if self._guestprof is not None:
            guest_profile = self._guestprof.finalize(
                self.scheduler.current_cycle, self._states,
                memory=self.machine.memory)
        return SimulationResults(
            cycles=self.scheduler.current_cycle,
            instructions=total_instructions,
            wall_seconds=wall_seconds,
            cores=core_stats,
            hierarchy_samples=self.hierarchy.collect_stats(),
            console=self.machine.console_text(),
            exit_codes=dict(self.machine.exit_codes),
            events_fired=self.scheduler.events_fired,
            activity=dict(sorted(self._activity.items())),
            timeseries=telemetry.sampler if telemetry else None,
            latency=telemetry.latency if telemetry else None,
            guest_profile=guest_profile)
