"""L1-miss trace recording for a Coyote run.

Hooks :attr:`MemoryHierarchy.trace_sink` and converts completed requests
into :class:`~repro.paraver.records.MissRecord` entries, which can be
analysed in-memory or written out as a Paraver trace.
"""

from __future__ import annotations

from pathlib import Path

from repro.memhier.request import MemRequest, RequestKind
from repro.paraver.records import MissKind, MissRecord
from repro.paraver.writer import write_trace

_KIND_MAP = {
    RequestKind.LOAD: MissKind.LOAD,
    RequestKind.STORE: MissKind.STORE,
    RequestKind.IFETCH: MissKind.IFETCH,
}


class MissTraceRecorder:
    """Collects every serviced L1 miss of a simulation."""

    def __init__(self):
        self.records: list[MissRecord] = []

    def __call__(self, request: MemRequest) -> None:
        """The hierarchy's ``trace_sink`` entry point."""
        kind = _KIND_MAP.get(request.kind)
        if kind is None:
            return
        self.records.append(MissRecord(
            core_id=request.core_id,
            issue_cycle=request.issue_cycle,
            complete_cycle=request.complete_cycle,
            line_address=request.line_address,
            kind=kind,
            bank_id=request.bank_id,
            l2_hit=bool(request.l2_hit)))

    def __len__(self) -> int:
        return len(self.records)

    def write(self, basepath: str | Path, num_cores: int,
              duration: int) -> tuple[Path, Path]:
        """Write the recorded trace as ``.prv`` + ``.pcf`` files."""
        return write_trace(basepath, self.records, num_cores, duration)
