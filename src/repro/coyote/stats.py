"""Simulation outputs: statistics, summaries, derived metrics.

Matches the paper's list of outputs: "statistics about memory accesses
(miss rates, number of stalls due to dependencies, etc.), the execution
time of the simulated application and a trace of L1 misses".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.spike.l1cache import L1Stats
from repro.sparta.statistics import StatSample, format_report
from repro.telemetry.guestprof import GuestProfile
from repro.telemetry.histogram import RequestLatencyRecorder
from repro.telemetry.sampler import IntervalSampler


@dataclass
class CoreStats:
    """Per-core outcome of a simulation."""

    core_id: int
    instructions: int
    raw_stall_cycles: int
    fetch_stall_cycles: int
    halt_cycle: int | None
    exit_code: int | None
    l1i: L1Stats
    l1d: L1Stats


@dataclass
class SimulationResults:
    """Everything a Coyote run produces."""

    cycles: int
    instructions: int
    wall_seconds: float
    cores: list[CoreStats]
    hierarchy_samples: list[StatSample]
    console: str
    exit_codes: dict[int, int]
    events_fired: int = 0
    # cycles spent with exactly N cores actively issuing (N = 0 while
    # every live core was stalled on the memory system).
    activity: dict[int, int] | None = None
    # Opt-in telemetry products (None unless the matching collector ran).
    timeseries: IntervalSampler | None = None
    latency: RequestLatencyRecorder | None = None
    host_profile: dict | None = None
    guest_profile: GuestProfile | None = None
    # Lazily-built full_name -> sample index over hierarchy_samples.
    _index: dict[str, StatSample] | None = field(
        default=None, init=False, repr=False, compare=False)

    # -- derived metrics -----------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def host_mips(self) -> float:
        """Aggregate simulation throughput in MIPS (the Figure 3 metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions / self.wall_seconds / 1e6

    @property
    def ipc(self) -> float:
        """Aggregate simulated instructions per simulated cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def raw_stall_cycles(self) -> int:
        return sum(core.raw_stall_cycles for core in self.cores)

    @property
    def fetch_stall_cycles(self) -> int:
        return sum(core.fetch_stall_cycles for core in self.cores)

    def l1d_miss_rate(self) -> float:
        """Aggregate L1D miss rate across all cores."""
        accesses = sum(core.l1d.accesses for core in self.cores)
        misses = sum(core.l1d.misses for core in self.cores)
        return misses / accesses if accesses else 0.0

    def l1i_miss_rate(self) -> float:
        """Aggregate L1I miss rate across all cores."""
        accesses = sum(core.l1i.accesses for core in self.cores)
        misses = sum(core.l1i.misses for core in self.cores)
        return misses / accesses if accesses else 0.0

    def _sample_index(self) -> dict[str, StatSample]:
        """The name index, built on first use (full names are unique —
        the unit tree rejects duplicate child names)."""
        if self._index is None:
            self._index = {sample.full_name: sample
                           for sample in self.hierarchy_samples}
        return self._index

    def hierarchy_value(self, full_name: str) -> float:
        """Look up one hierarchy statistic by full dotted name (O(1))."""
        return self._sample_index()[full_name].value

    def bank_utilisation(self) -> dict[str, int]:
        """Requests received per L2 bank (for load-balance analysis)."""
        result = {}
        for sample in self._sample_index().values():
            if sample.name == "requests" and ".bank" in sample.path:
                result[sample.path.rsplit(".", 1)[-1]] = int(sample.value)
        return result

    def succeeded(self) -> bool:
        """True when every core exited with code 0."""
        return (len(self.exit_codes) == self.num_cores
                and all(code == 0 for code in self.exit_codes.values()))

    def average_active_cores(self) -> float:
        """Mean number of cores issuing per cycle (0 = all stalled)."""
        if not self.activity:
            return 0.0
        total_cycles = sum(self.activity.values())
        if not total_cycles:
            return 0.0
        weighted = sum(count * cycles
                       for count, cycles in self.activity.items())
        return weighted / total_cycles

    def stalled_fraction(self) -> float:
        """Fraction of cycles in which no core could issue."""
        if not self.activity:
            return 0.0
        total_cycles = sum(self.activity.values())
        if not total_cycles:
            return 0.0
        return self.activity.get(0, 0) / total_cycles

    # -- machine-readable export -----------------------------------------------

    def to_dict(self, include_console: bool = True) -> dict:
        """A JSON-serialisable view of the full results.

        Includes every derived metric, per-core statistics, the flat
        hierarchy counter table, and — when the matching telemetry
        collector ran — the sampled time series, latency histograms and
        host wall-time profile.
        """
        data = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "wall_seconds": self.wall_seconds,
            "ipc": self.ipc,
            "host_mips": self.host_mips,
            "events_fired": self.events_fired,
            "raw_stall_cycles": self.raw_stall_cycles,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "l1d_miss_rate": self.l1d_miss_rate(),
            "l1i_miss_rate": self.l1i_miss_rate(),
            "average_active_cores": self.average_active_cores(),
            "stalled_fraction": self.stalled_fraction(),
            "succeeded": self.succeeded(),
            "exit_codes": {str(core): code
                           for core, code in self.exit_codes.items()},
            "activity": {str(count): cycles for count, cycles
                         in (self.activity or {}).items()},
            "cores": [
                {
                    "core_id": core.core_id,
                    "instructions": core.instructions,
                    "raw_stall_cycles": core.raw_stall_cycles,
                    "fetch_stall_cycles": core.fetch_stall_cycles,
                    "halt_cycle": core.halt_cycle,
                    "exit_code": core.exit_code,
                    "l1d": asdict(core.l1d),
                    "l1i": asdict(core.l1i),
                }
                for core in self.cores],
            "hierarchy": {sample.full_name: sample.value
                          for sample in self.hierarchy_samples},
        }
        if include_console:
            data["console"] = self.console
        if self.timeseries is not None:
            data["timeseries"] = self.timeseries.to_dict()
        if self.latency is not None:
            data["latency_histograms"] = self.latency.to_dict()
        if self.host_profile is not None:
            data["host_profile"] = self.host_profile
        if self.guest_profile is not None:
            data["guest_profile"] = self.guest_profile.to_dict()
        return data

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        """A human-readable run summary."""
        lines = [
            f"cycles               : {self.cycles}",
            f"instructions         : {self.instructions}",
            f"aggregate IPC        : {self.ipc:.3f}",
            f"host throughput      : {self.host_mips:.3f} MIPS",
            f"wall time            : {self.wall_seconds:.3f} s",
            f"L1D miss rate        : {self.l1d_miss_rate():.4%}",
            f"L1I miss rate        : {self.l1i_miss_rate():.4%}",
            f"RAW stall cycles     : {self.raw_stall_cycles}",
            f"fetch stall cycles   : {self.fetch_stall_cycles}",
            f"avg active cores     : {self.average_active_cores():.2f}",
            f"fully-stalled cycles : {self.stalled_fraction():.2%}",
            f"exit codes           : {self.exit_codes}",
        ]
        return "\n".join(lines)

    def hierarchy_report(self) -> str:
        """Formatted table of every modelled-hierarchy statistic."""
        return format_report(self.hierarchy_samples)
