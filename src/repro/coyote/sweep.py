"""Design-space sweep utilities.

Coyote exists for "the fast comparison of different designs"; this module
makes that a one-call API: declare the axes (any
:class:`~repro.coyote.config.SimulationConfig` / ``MemHierConfig``
fields), a workload factory, and get back a tidy result table.

>>> from repro.coyote.sweep import Sweep
>>> from repro.kernels import scalar_spmv
>>> sweep = Sweep(base_cores=8,
...               axes={"l2_mode": ["shared", "private"],
...                     "mapping_policy": ["set-interleaving",
...                                        "page-to-bank"]})
>>> table = sweep.run(lambda: scalar_spmv(num_rows=32, num_cores=8))
>>> len(table.points)
4
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.coyote.config import SimulationConfig
from repro.coyote.simulation import Simulation
from repro.coyote.stats import SimulationResults


@dataclass
class SweepPoint:
    """One configuration point and its outcome.

    A failed point (its simulation raised, or verification failed under
    ``on_error="skip"``) has ``error`` set and — when the failure
    happened before completion — ``results`` of ``None``.
    """

    settings: dict[str, Any]
    results: SimulationResults | None
    verified: bool
    error: Exception | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def metric(self, name: str) -> float:
        """Fetch a named metric (attribute or zero-arg method)."""
        if self.results is None:
            raise ValueError(
                f"sweep point {self.settings} failed before producing "
                f"results: {self.error}")
        value = getattr(self.results, name)
        return value() if callable(value) else value


@dataclass
class SweepTable:
    """The full outcome of a sweep."""

    axes: dict[str, list]
    points: list[SweepPoint] = field(default_factory=list)

    def failures(self) -> list[tuple[dict[str, Any], Exception]]:
        """The ``(settings, error)`` of every failed point."""
        return [(point.settings, point.error) for point in self.points
                if point.failed]

    def best(self, metric: str = "cycles",
             minimise: bool = True) -> SweepPoint:
        """The best *successful* point under ``metric``."""
        if not self.points:
            raise ValueError("empty sweep")
        candidates = [point for point in self.points if not point.failed]
        if not candidates:
            raise ValueError(
                f"all {len(self.points)} sweep points failed; "
                f"see SweepTable.failures()")
        chooser = min if minimise else max
        return chooser(candidates, key=lambda point: point.metric(metric))

    def format(self, metrics: tuple[str, ...] = ("cycles",)) -> str:
        """Render an aligned text table (failed points are marked)."""
        axis_names = list(self.axes)
        headers = axis_names + list(metrics)
        rows = []
        for point in self.points:
            row = [str(point.settings[name]) for name in axis_names]
            if point.failed and point.results is None:
                row.append(f"FAILED({type(point.error).__name__})")
                row.extend("-" for _ in metrics[1:])
                rows.append(row)
                continue
            for metric in metrics:
                value = point.metric(metric)
                cell = (f"{value:.4g}" if isinstance(value, float)
                        else str(value))
                row.append(cell)
            if point.failed:
                row[-1] += "  [FAILED]"
            rows.append(row)
        widths = [max(len(header), *(len(row[i]) for row in rows))
                  for i, header in enumerate(headers)]
        lines = ["  ".join(header.ljust(width)
                           for header, width in zip(headers, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)))
        return "\n".join(lines)


class Sweep:
    """A cartesian design-space sweep over configuration axes.

    Any extra keyword (``**base_overrides``) is applied to every point's
    configuration — including ``telemetry=TelemetryConfig(...)``, so an
    ablation study collects interval time series and latency histograms
    at each point for free (``point.results.timeseries`` /
    ``point.results.latency``).
    """

    def __init__(self, base_cores: int, axes: dict[str, list],
                 **base_overrides):
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        self.base_cores = base_cores
        self.axes = dict(axes)
        self.base_overrides = base_overrides

    def run(self, make_workload: Callable, *,
            require_verified: bool = True,
            on_error: str = "raise") -> SweepTable:
        """Run every point; ``make_workload`` is called per point.

        ``on_error`` controls failure isolation: ``"raise"`` (the
        default) aborts the whole sweep at the first failing point;
        ``"skip"`` records the failure on that point and carries on —
        one deadlocking configuration no longer destroys an overnight
        campaign.  Failed points are marked in :meth:`SweepTable.format`
        and listed by :meth:`SweepTable.failures`.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}")
        table = SweepTable(axes=self.axes)
        names = list(self.axes)
        for values in itertools.product(*self.axes.values()):
            settings = dict(zip(names, values))
            try:
                config = SimulationConfig.for_cores(
                    self.base_cores, **{**self.base_overrides, **settings})
                workload = make_workload()
                simulation = Simulation(config, workload.program)
                results = simulation.run()
                verified = workload.verify(simulation.memory)
            except Exception as exc:
                if on_error == "raise":
                    raise
                table.points.append(
                    SweepPoint(settings, None, False, exc))
                continue
            if require_verified and not (verified
                                         and results.succeeded()):
                error = RuntimeError(
                    f"sweep point {settings} failed verification")
                if on_error == "raise":
                    raise error
                table.points.append(
                    SweepPoint(settings, results, verified, error))
                continue
            table.points.append(SweepPoint(settings, results, verified))
        return table
