"""Design-space sweep utilities.

Coyote exists for "the fast comparison of different designs"; this module
makes that a one-call API: declare the axes (any
:class:`~repro.coyote.config.SimulationConfig` / ``MemHierConfig``
fields), a workload factory, and get back a tidy result table.

>>> from repro.coyote.sweep import Sweep
>>> from repro.kernels import scalar_spmv
>>> sweep = Sweep(base_cores=8,
...               axes={"l2_mode": ["shared", "private"],
...                     "mapping_policy": ["set-interleaving",
...                                        "page-to-bank"]})
>>> table = sweep.run(lambda: scalar_spmv(num_rows=32, num_cores=8))
>>> len(table.points)
4

Campaign-scale execution lives in :mod:`repro.coyote.parallel`:
``sweep.run(..., workers=4)`` fans the cartesian points out to a worker
pool while keeping the resulting table bit-identical to a serial run.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.coyote.config import SimulationConfig
from repro.coyote.errors import SimulationError
from repro.coyote.simulation import Simulation
from repro.coyote.stats import SimulationResults
from repro.utils.deprecation import warn_deprecated


class SweepError(ValueError):
    """A sweep-level usage error (empty table, resultless metric, ...).

    Subclasses ``ValueError`` so long-standing ``except ValueError``
    call sites keep working.
    """


def _canonical_value(value: Any):
    """A JSON-friendly, process-independent view of one axis value."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


@dataclass
class SweepPoint:
    """One configuration point and its outcome.

    A failed point (its simulation raised, or verification failed under
    ``on_error="skip"``) has ``error`` set; when the failure happened
    before completion ``results`` is ``None``, while a point that ran to
    the end but failed verification keeps its full ``results``.
    """

    settings: dict[str, Any]
    results: SimulationResults | None
    verified: bool
    error: Exception | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def error_kind(self) -> str | None:
        """The original exception type name (stable across processes).

        A worker-side exception that could not be pickled crosses the
        process boundary as a :class:`~repro.coyote.parallel.RemoteError`
        stand-in carrying the original type name; this property reports
        that original name so serial and parallel tables agree.
        """
        if self.error is None:
            return None
        kind = getattr(self.error, "kind", None)
        return kind if isinstance(kind, str) else type(self.error).__name__

    def failure_record(self) -> dict[str, str] | None:
        """``{"kind", "message"}`` of the failure, or None when healthy."""
        if self.error is None:
            return None
        return {"kind": self.error_kind, "message": str(self.error)}

    def metric(self, name: str) -> float:
        """Fetch a named metric (attribute or zero-arg method).

        Metrics are served whenever ``results`` exist — including
        verified-but-flagged points, so a verification failure still
        shows its cycle count in tables and ``best()`` comparisons.
        Only a truly resultless point (the simulation never completed)
        raises, and it raises a structured :class:`SweepError` naming
        the point.
        """
        if self.results is None:
            raise SweepError(
                f"sweep point {self.settings} failed before producing "
                f"results: {self.error}")
        value = getattr(self.results, name)
        return value() if callable(value) else value


@dataclass
class SweepTable:
    """The full outcome of a sweep.

    ``workers`` and ``wall_seconds`` describe how the campaign was
    executed (host-side facts — deliberately excluded from
    :meth:`to_dict` so serial and parallel tables compare equal).
    """

    axes: dict[str, list]
    points: list[SweepPoint] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    # Pool-degradation steps taken by the campaign supervisor (a
    # host-side fact, like workers/wall_seconds — not in to_dict).
    degradations: list = field(default_factory=list)

    def failures(self) -> list[tuple[dict[str, Any], Exception]]:
        """The ``(settings, error)`` of every failed point."""
        return [(point.settings, point.error) for point in self.points
                if point.failed]

    def quarantined(self) -> list[SweepPoint]:
        """Points the campaign supervisor quarantined (retries
        exhausted); their ``error.attempts`` holds the full history."""
        return [point for point in self.points
                if point.error_kind == "QuarantinedPoint"]

    def best(self, metric: str = "cycles",
             minimise: bool = True) -> SweepPoint:
        """The best *successful* point under ``metric``."""
        if not self.points:
            raise SweepError("empty sweep")
        candidates = [point for point in self.points if not point.failed]
        if not candidates:
            raise SweepError(
                f"all {len(self.points)} sweep points failed; "
                f"see SweepTable.failures()")
        chooser = min if minimise else max
        return chooser(candidates, key=lambda point: point.metric(metric))

    def to_text(self, metrics: tuple[str, ...] = ("cycles",)) -> str:
        """Render an aligned text table (failed points are marked)."""
        axis_names = list(self.axes)
        headers = axis_names + list(metrics)
        rows = []
        for point in self.points:
            row = [str(point.settings[name]) for name in axis_names]
            if point.failed and point.results is None:
                row.append(f"FAILED({point.error_kind})")
                row.extend("-" for _ in metrics[1:])
                rows.append(row)
                continue
            for metric in metrics:
                value = point.metric(metric)
                cell = (f"{value:.4g}" if isinstance(value, float)
                        else str(value))
                row.append(cell)
            if point.failed:
                row[-1] += "  [FAILED]"
            rows.append(row)
        widths = [max(len(header), *(len(row[i]) for row in rows))
                  for i, header in enumerate(headers)]
        lines = ["  ".join(header.ljust(width)
                           for header, width in zip(headers, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def format(self, metrics: tuple[str, ...] = ("cycles",)) -> str:
        """Deprecated spelling of :meth:`to_text`."""
        warn_deprecated("SweepTable.format()", "SweepTable.to_text()")
        return self.to_text(metrics)

    def to_dict(self, metrics: tuple[str, ...] = ("cycles",)) -> dict:
        """A canonical, JSON-serialisable view of the campaign.

        Deterministic by construction: only simulated quantities appear
        (host wall time, worker count and exception identities are
        excluded), so a ``workers=1`` and a ``workers=N`` run of the
        same sweep produce byte-identical documents — the differential
        guarantee the parallel engine is tested against.
        """
        return {
            "axes": {name: [_canonical_value(value) for value in values]
                     for name, values in self.axes.items()},
            "points": [
                {
                    "settings": {name: _canonical_value(value)
                                 for name, value in point.settings.items()},
                    "verified": point.verified,
                    "failed": point.failed,
                    "metrics": {name: (point.metric(name)
                                       if point.results is not None
                                       else None)
                                for name in metrics},
                    "error": point.failure_record(),
                }
                for point in self.points],
        }

    def aggregate(self, metrics: tuple[str, ...] = ("cycles",
                                                    "instructions")) -> dict:
        """Campaign-level rollup of per-point metrics and outcomes."""
        completed = [point for point in self.points
                     if point.results is not None]
        summary: dict[str, Any] = {
            "points": len(self.points),
            "succeeded": sum(1 for point in self.points if not point.failed),
            "failed": sum(1 for point in self.points if point.failed),
            "quarantined": len(self.quarantined()),
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "metrics": {},
        }
        for name in metrics:
            values = [point.metric(name) for point in completed]
            if not values:
                summary["metrics"][name] = None
                continue
            summary["metrics"][name] = {
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
                "total": sum(values),
            }
        return summary


def call_workload_factory(make_workload: Callable,
                          settings: dict[str, Any]):
    """Call a workload factory, passing the point's settings when the
    factory accepts them.

    A zero-argument factory (the classic API) is called as-is; a factory
    whose signature binds one positional argument receives the full
    settings dict, so workload shape can itself be swept (problem size
    axes, kernel-variant axes) alongside configuration axes.
    """
    try:
        signature = inspect.signature(make_workload)
    except (TypeError, ValueError):
        return make_workload()
    try:
        signature.bind(settings)
    except TypeError:
        return make_workload()
    return make_workload(settings)


def run_point(settings: dict[str, Any], base_cores: int,
              base_overrides: dict[str, Any], make_workload: Callable,
              require_verified: bool = True,
              on_simulation: Callable | None = None) -> SweepPoint:
    """Execute one sweep point, never raising.

    This is the single execution path shared by the serial loop and
    every parallel worker — both build the point's full configuration
    (including seeded fault and telemetry setup) from the same
    ``base + settings`` recipe, which is what makes a parallel table
    bit-identical to a serial one.

    ``on_simulation`` (if given) receives the built
    :class:`Simulation` before it runs — the supervised worker's
    heartbeat thread uses it to report cycles simulated without
    touching the execution path.
    """
    try:
        config = SimulationConfig.for_cores(
            base_cores, **{**base_overrides, **settings})
        workload = call_workload_factory(make_workload, settings)
        simulation = Simulation(config, workload.program)
        if on_simulation is not None:
            on_simulation(simulation)
        results = simulation.run()
        verified = workload.verify(simulation.memory)
    except Exception as exc:
        return SweepPoint(settings, None, False, exc)
    if require_verified and not (verified and results.succeeded()):
        error = SimulationError(
            f"sweep point {settings} failed verification")
        return SweepPoint(settings, results, verified, error)
    return SweepPoint(settings, results, verified)


class Sweep:
    """A cartesian design-space sweep over configuration axes.

    Any extra keyword (``**base_overrides``) is applied to every point's
    configuration — including ``telemetry=TelemetryConfig(...)``, so an
    ablation study collects interval time series and latency histograms
    at each point for free (``point.results.timeseries`` /
    ``point.results.latency``).
    """

    def __init__(self, base_cores: int, axes: dict[str, list],
                 **base_overrides):
        if not axes:
            raise SweepError("a sweep needs at least one axis")
        self.base_cores = base_cores
        self.axes = dict(axes)
        self.base_overrides = base_overrides

    def points(self) -> list[dict[str, Any]]:
        """Every settings dict of the sweep, in cartesian axis order."""
        names = list(self.axes)
        return [dict(zip(names, values))
                for values in itertools.product(*self.axes.values())]

    def run(self, make_workload: Callable, *,
            require_verified: bool = True,
            on_error: str = "raise",
            workers: int = 1,
            progress: bool = False,
            campaign_path=None,
            policy=None) -> SweepTable:
        """Run every point; ``make_workload`` is called per point.

        ``on_error`` controls failure isolation: ``"raise"`` (the
        default) aborts the whole sweep at the first failing point;
        ``"skip"`` records the failure on that point and carries on —
        one deadlocking configuration no longer destroys an overnight
        campaign.  Failed points are marked in :meth:`SweepTable.to_text`
        and listed by :meth:`SweepTable.failures`.

        ``workers`` selects the execution engine: ``1`` runs in-process;
        ``N > 1`` fans points out to ``N`` worker processes
        (:class:`~repro.coyote.parallel.ParallelSweep`) with per-point
        crash isolation, while the returned table stays bit-identical
        (deterministic axis order, same metrics, same failure records).
        ``progress`` streams ``k/n points, ETA`` through the
        ``repro.telemetry`` logger; ``campaign_path`` persists completed
        points so an interrupted campaign warm-starts instead of
        recomputing.

        ``policy`` (a
        :class:`~repro.resilience.supervisor.SupervisorPolicy`) runs
        every point under the supervised lifecycle: heartbeats,
        per-point timeout, RSS ceiling, bounded retries with seeded
        backoff, and quarantine of points that exhaust them — see
        docs/RESILIENCE.md.
        """
        from repro.coyote.parallel import ParallelSweep
        return ParallelSweep(
            self, workers=workers, on_error=on_error,
            require_verified=require_verified, progress=progress,
            campaign_path=campaign_path, policy=policy).run(make_workload)
