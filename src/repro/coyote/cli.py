"""Command-line front end: ``coyote-sim``.

Run a named kernel under the full Coyote model and print the statistics
the paper lists as simulation outputs.  Example::

    coyote-sim --kernel scalar-spmv --cores 8 --l2-mode private \\
               --mapping page-to-bank --trace /tmp/spmv
"""

from __future__ import annotations

import argparse
import sys

from repro.coyote.config import SimulationConfig
from repro.coyote.simulation import Simulation
from repro.kernels import KERNELS
from repro.memhier.mapping import policy_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coyote-sim",
        description="Coyote (DATE 2021 reproduction): execution-driven "
                    "RISC-V HPC simulation with a data-movement focus.")
    parser.add_argument("--kernel", choices=sorted(KERNELS),
                        default="scalar-spmv", help="workload to simulate")
    parser.add_argument("--cores", type=int, default=8,
                        help="number of simulated cores")
    parser.add_argument("--size", type=int, default=None,
                        help="problem size (kernel-specific default)")
    parser.add_argument("--l2-mode", choices=("shared", "private"),
                        default="shared", help="L2 sharing mode")
    parser.add_argument("--mapping", choices=policy_names(),
                        default="set-interleaving",
                        help="address-to-bank mapping policy")
    parser.add_argument("--noc", choices=("crossbar", "mesh"),
                        default="crossbar", help="NoC model")
    parser.add_argument("--noc-latency", type=int, default=6,
                        help="crossbar NoC latency in cycles")
    parser.add_argument("--mem-latency", type=int, default=100,
                        help="memory access latency in cycles")
    parser.add_argument("--vlen", type=int, default=512,
                        help="vector register length in bits")
    parser.add_argument("--trace", metavar="BASEPATH", default=None,
                        help="write a Paraver .prv/.pcf/.row miss trace")
    parser.add_argument("--hierarchy-stats", action="store_true",
                        help="also print every modelled-hierarchy counter")
    parser.add_argument("--config", metavar="JSON", default=None,
                        help="load a full SimulationConfig from a JSON "
                             "file (overrides the other config flags)")
    parser.add_argument("--save-config", metavar="JSON", default=None,
                        help="write the effective configuration to a "
                             "JSON file and continue")
    return parser


def make_workload(kernel: str, cores: int, size: int | None):
    """Instantiate a kernel with a sensible size argument."""
    factory = KERNELS[kernel]
    if size is None:
        return factory(num_cores=cores)
    if "matmul" in kernel:
        return factory(size=size, num_cores=cores)
    if "spmv" in kernel:
        return factory(num_rows=size, num_cores=cores)
    if kernel == "nn-dense-relu":
        return factory(in_dim=size, out_dim=size, num_cores=cores)
    if kernel == "mlp-inference":
        return factory(dims=(size, size, size), num_cores=cores)
    return factory(length=size, num_cores=cores)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.config is not None:
        config = SimulationConfig.load(args.config)
        if args.trace is not None:
            config.trace_misses = True
        cores = config.num_cores
    else:
        config = SimulationConfig.for_cores(
            args.cores, l2_mode=args.l2_mode,
            mapping_policy=args.mapping, noc_kind=args.noc,
            noc_latency=args.noc_latency, mem_latency=args.mem_latency,
            vlen_bits=args.vlen, trace_misses=args.trace is not None)
        cores = args.cores
    if args.save_config is not None:
        config.save(args.save_config)
    workload = make_workload(args.kernel, cores, args.size)

    simulation = Simulation(config, workload.program)
    results = simulation.run()

    print(f"kernel               : {workload.name}")
    print(f"cores                : {cores}")
    print(results.summary())
    verified = workload.verify(simulation.memory)
    print(f"output verified      : {verified}")
    if args.hierarchy_stats:
        print("\n-- modelled hierarchy --")
        print(results.hierarchy_report())
    if args.trace is not None:
        prv, pcf = simulation.write_trace(args.trace)
        print(f"trace written        : {prv} / {pcf}")
    return 0 if verified and results.succeeded() else 1


if __name__ == "__main__":
    sys.exit(main())
