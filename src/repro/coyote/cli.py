"""Command-line front end: ``coyote-sim``.

Run a named kernel under the full Coyote model and print the statistics
the paper lists as simulation outputs.  Example::

    coyote-sim --kernel scalar-spmv --cores 8 --l2-mode private \\
               --mapping page-to-bank --trace /tmp/spmv

Design-space campaigns run through the ``sweep`` subcommand, fanning
the cartesian points out to a worker pool::

    coyote-sim sweep --kernel scalar-matmul --cores 2 --size 8 \\
               --axes l2_mode=shared,private --axes noc.latency=2,6 \\
               --workers 4 --on-error skip

Exit codes follow a fixed taxonomy so campaign scripts can triage
without parsing stderr: 0 success, 1 generic simulation failure,
2 configuration error, 3 verification failure, 4 deadlock (watchdog or
provable wedge), 130 interrupted (with a partial-progress dump).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import subprocess
import sys

from repro.coyote.config import SimulationConfig
from repro.coyote.errors import SimulationError
from repro.coyote.simulation import Simulation
from repro.coyote.sweep import Sweep
from repro import kernels
from repro.kernels import KERNELS
from repro.memhier.mapping import policy_names
from repro.resilience import (
    DeadlockError,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import FaultPlan
from repro.telemetry import TelemetryConfig
from repro.utils.deprecation import warn_deprecated

DEFAULT_SAMPLE_INTERVAL = 1000

# The exit-code taxonomy (also documented in docs/RESILIENCE.md).
EXIT_OK = 0
EXIT_FAILURE = 1          # simulation raised / did not complete cleanly
EXIT_CONFIG = 2           # bad flags, config file, or fault plan
EXIT_VERIFY = 3           # ran to completion but the output is wrong
EXIT_DEADLOCK = 4         # watchdog trip or provable forward-progress loss
EXIT_INTERRUPT = 130      # SIGINT (the shell convention: 128 + 2)


class _DeprecatedAlias(argparse.Action):
    """Store the value under the canonical dest, warning once per use."""

    def __init__(self, *args, canonical: str = "", **kwargs):
        self.canonical = canonical
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        warn_deprecated(option_string, self.canonical, stacklevel=2)
        setattr(namespace, self.dest, values)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coyote-sim",
        description="Coyote (DATE 2021 reproduction): execution-driven "
                    "RISC-V HPC simulation with a data-movement focus.")
    parser.add_argument("--kernel", choices=sorted(KERNELS),
                        default="scalar-spmv", help="workload to simulate")
    parser.add_argument("--cores", type=int, default=8,
                        help="number of simulated cores")
    parser.add_argument("--size", type=int, default=None,
                        help="problem size (kernel-specific default)")
    parser.add_argument("--l2-mode", choices=("shared", "private"),
                        default="shared", help="L2 sharing mode")
    parser.add_argument("--mapping", choices=policy_names(),
                        default="set-interleaving",
                        help="address-to-bank mapping policy")
    noc = parser.add_argument_group("interconnect")
    noc.add_argument("--noc-topology", choices=("crossbar", "mesh",
                                                "torus"),
                     default="crossbar", dest="noc_topology",
                     help="interconnect model (mesh/torus enable the "
                          "contention model)")
    noc.add_argument("--noc-routing", choices=("xy", "yx", "adaptive"),
                     default="xy",
                     help="mesh/torus routing policy")
    noc.add_argument("--noc-columns", type=int, default=4,
                     help="mesh/torus grid width in routers")
    noc.add_argument("--noc-router-latency", type=int, default=1,
                     help="cycles through each mesh/torus router")
    noc.add_argument("--noc-link-latency", type=int, default=1,
                     help="cycles on each router-to-router link")
    noc.add_argument("--noc-link-capacity", type=int, default=1,
                     help="flit-bursts one link carries per cycle")
    noc.add_argument("--noc-wrap", action="store_true",
                     help="wrap-around links on a mesh (implied by "
                          "--noc-topology torus)")
    noc.add_argument("--noc-crossbar-latency", type=int, default=6,
                     dest="noc_crossbar_latency",
                     help="crossbar NoC latency in cycles")
    noc.add_argument("--noc", choices=("crossbar", "mesh", "torus"),
                     dest="noc_topology", action=_DeprecatedAlias,
                     canonical="--noc-topology", help=argparse.SUPPRESS)
    noc.add_argument("--noc-latency", type=int,
                     dest="noc_crossbar_latency", action=_DeprecatedAlias,
                     canonical="--noc-crossbar-latency",
                     help=argparse.SUPPRESS)
    parser.add_argument("--mem-latency", type=int, default=100,
                        help="memory access latency in cycles")
    parser.add_argument("--vlen", type=int, default=512,
                        help="vector register length in bits")
    parser.add_argument("--no-translate", action="store_true",
                        help="disable the trace-compiled ISS fast path "
                             "and run the plain interpreter (simulated "
                             "outcomes are identical either way; this "
                             "only trades host speed for debuggability)")
    parser.add_argument("--trace", metavar="BASEPATH", default=None,
                        help="write a Paraver .prv/.pcf/.row miss trace")
    parser.add_argument("--hierarchy-stats", action="store_true",
                        help="also print every modelled-hierarchy counter")
    parser.add_argument("--config", metavar="JSON", default=None,
                        help="load a full SimulationConfig from a JSON "
                             "file (overrides the other config flags)")
    parser.add_argument("--save-config", metavar="JSON", default=None,
                        help="write the effective configuration to a "
                             "JSON file and continue")
    telemetry = parser.add_argument_group("telemetry")
    telemetry.add_argument("--metrics-out", metavar="JSON", default=None,
                           help="write the full results (counters, "
                                "time series, latency histograms, host "
                                "profile) as a JSON document")
    telemetry.add_argument("--chrome-trace", metavar="JSON", default=None,
                           help="write a Chrome trace-event JSON file "
                                "(open in Perfetto / chrome://tracing)")
    telemetry.add_argument("--sample-interval", type=int, default=0,
                           metavar="CYCLES",
                           help="cycles between interval samples "
                                "(default: %(default)s = off; "
                                f"--metrics-out implies "
                                f"{DEFAULT_SAMPLE_INTERVAL})")
    telemetry.add_argument("--progress", action="store_true",
                           help="log a periodic progress heartbeat and "
                                "print the host wall-time breakdown")
    telemetry.add_argument("--log-level", default=None,
                           choices=("debug", "info", "warning", "error"),
                           help="logging verbosity (--progress implies "
                                "info)")
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument("--inject", metavar="PLAN.json", default=None,
                            help="inject faults from a JSON fault plan "
                                 "(see docs/RESILIENCE.md)")
    resilience.add_argument("--fault-seed", type=int, default=None,
                            metavar="N",
                            help="fault-injection PRNG seed (overrides "
                                 "the plan's seed)")
    resilience.add_argument("--watchdog", type=int, default=None,
                            metavar="CYCLES",
                            help="enable the forward-progress watchdog "
                                 "with this window")
    resilience.add_argument("--check-invariants", type=int, default=None,
                            metavar="CYCLES",
                            help="run conservation checks every N cycles")
    resilience.add_argument("--pause-at", type=int, default=None,
                            metavar="CYCLE", dest="pause_at",
                            help="pause at this cycle, write a "
                                 "checkpoint (--checkpoint-out) and exit "
                                 "(mirrors Simulation.run(pause_at=))")
    resilience.add_argument("--checkpoint-at", type=int, metavar="CYCLE",
                            dest="pause_at", action=_DeprecatedAlias,
                            canonical="--pause-at",
                            help=argparse.SUPPRESS)
    resilience.add_argument("--checkpoint-out", metavar="PATH",
                            default=None,
                            help="where --pause-at writes the "
                                 "checkpoint")
    resilience.add_argument("--resume", metavar="PATH", default=None,
                            help="resume a checkpoint written by "
                                 "--pause-at (kernel/config flags "
                                 "are taken from the checkpoint)")
    return parser


def telemetry_from_args(args: argparse.Namespace,
                        base: TelemetryConfig | None = None,
                        ) -> TelemetryConfig:
    """Fold the CLI telemetry flags into a TelemetryConfig.

    Flags layer on top of ``base`` (the telemetry section of a loaded
    ``--config`` file), so an explicit ``--sample-interval`` in either
    place survives and ``--metrics-out`` only implies the default grid
    when neither specified one.
    """
    base = base or TelemetryConfig()
    sample_interval = args.sample_interval or base.sample_interval
    if args.metrics_out is not None and not sample_interval:
        sample_interval = DEFAULT_SAMPLE_INTERVAL
    return TelemetryConfig(
        sample_interval=sample_interval,
        histograms=base.histograms or args.metrics_out is not None,
        chrome_trace=base.chrome_trace or args.chrome_trace is not None,
        progress=base.progress or args.progress,
        progress_cycles=base.progress_cycles,
        host_profile=(base.host_profile or args.progress
                      or args.metrics_out is not None))


def make_workload(kernel: str, cores: int, size: int | None):
    """Instantiate a kernel with a sensible size argument."""
    return kernels.instantiate(kernel, cores, size)


# -- the profile subcommand --------------------------------------------------


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coyote-sim profile",
        description="Run a kernel with the guest profiler and report "
                    "CPI stacks, hot basic blocks and per-PC cache-"
                    "miss attribution (docs/OBSERVABILITY.md).")
    parser.add_argument("--kernel", choices=sorted(KERNELS),
                        default="scalar-spmv", help="workload to profile")
    parser.add_argument("--cores", type=int, default=8,
                        help="number of simulated cores")
    parser.add_argument("--size", type=int, default=None,
                        help="problem size (kernel-specific default)")
    parser.add_argument("--l2-mode", choices=("shared", "private"),
                        default="shared", help="L2 sharing mode")
    parser.add_argument("--mapping", choices=policy_names(),
                        default="set-interleaving",
                        help="address-to-bank mapping policy")
    parser.add_argument("--noc-crossbar-latency", type=int, default=6,
                        dest="noc_crossbar_latency",
                        help="crossbar NoC latency in cycles")
    parser.add_argument("--noc-latency", type=int,
                        dest="noc_crossbar_latency",
                        action=_DeprecatedAlias,
                        canonical="--noc-crossbar-latency",
                        help=argparse.SUPPRESS)
    parser.add_argument("--mem-latency", type=int, default=100,
                        help="memory access latency in cycles")
    parser.add_argument("--vlen", type=int, default=512,
                        help="vector register length in bits")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="blocks / miss PCs shown per table")
    parser.add_argument("--per-core", action="store_true",
                        help="also print each core's CPI stack")
    parser.add_argument("--annotate", action="store_true",
                        help="print disassembly of the hottest blocks "
                             "with per-PC miss/stall markers")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable profile "
                             "document (schema "
                             "coyote-guest-profile/v1)")
    parser.add_argument("--chrome-trace", metavar="JSON", default=None,
                        help="also write a Chrome trace with the "
                             "per-core stall-class counter tracks")
    return parser


def profile_main(argv: list[str]) -> int:
    from repro.telemetry.profile_report import (
        profile_document,
        render_annotated,
        render_flat,
    )
    parser = build_profile_parser()
    args = parser.parse_args(argv)
    try:
        if args.top < 1:
            raise ValueError(f"--top must be >= 1, got {args.top}")
        for path in (args.json, args.chrome_trace):
            if path is not None:
                directory = os.path.dirname(path) or "."
                if not os.path.isdir(directory):
                    raise ValueError(
                        f"output directory does not exist: {directory}")
        config = SimulationConfig.for_cores(
            args.cores, l2_mode=args.l2_mode,
            mapping_policy=args.mapping,
            mem_latency=args.mem_latency, vlen_bits=args.vlen,
            telemetry=TelemetryConfig(
                guest_profile=True,
                chrome_trace=args.chrome_trace is not None),
            **{"noc.latency": args.noc_crossbar_latency})
        config.validate()
    except ValueError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG

    workload = make_workload(args.kernel, args.cores, args.size)
    simulation = Simulation(config, workload.program)
    try:
        results = simulation.run()
    except KeyboardInterrupt:
        _dump_partial(simulation)
        return EXIT_INTERRUPT
    except DeadlockError as exc:
        _report_deadlock(exc)
        return EXIT_DEADLOCK
    except SimulationError as exc:
        print(f"simulation error: {exc}", file=sys.stderr)
        return EXIT_FAILURE

    profile = results.guest_profile
    verified = workload.verify(simulation.memory)
    print(f"kernel               : {workload.name}")
    print(f"cores                : {args.cores}")
    print(f"cycles               : {results.cycles}")
    print(f"instructions         : {results.instructions}")
    print(f"output verified      : {verified}")
    print()
    print(render_flat(profile, top=args.top, per_core=args.per_core))
    if args.annotate:
        print()
        print(render_annotated(profile, top=args.top))
    if args.chrome_trace is not None:
        path = simulation.write_chrome_trace(args.chrome_trace)
        print(f"chrome trace written : {path}")
    if args.json is not None:
        document = profile_document(profile, kernel=workload.name,
                                    cores=args.cores, verified=verified)
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        print(f"profile written      : {args.json}")

    ok = verified and results.succeeded()
    if not ok:
        _report_failure(workload, results)
    return EXIT_OK if ok else EXIT_VERIFY


# -- the serve / jobs subcommands (durable campaign service) -----------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coyote-sim serve",
        description="Run the durable campaign service: execute queued "
                    "sweep points under leases, serve overlapping "
                    "points from the result cache, survive being "
                    "killed at any instant (docs/RESILIENCE.md).")
    parser.add_argument("--root", metavar="DIR", required=True,
                        help="service root directory (journal, inbox, "
                             "result cache)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="concurrent worker processes")
    parser.add_argument("--lease-seconds", type=float, default=30.0,
                        metavar="S",
                        help="wall-clock lease per claimed point; a "
                             "worker silent this long is reclaimed")
    parser.add_argument("--max-queue", type=int, default=4096,
                        metavar="N",
                        help="bound on outstanding points; beyond it "
                             "submissions are rejected, not queued")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="re-run a crashed/expired point up to N "
                             "times before quarantining it")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="retry-backoff jitter seed")
    parser.add_argument("--drain", action="store_true",
                        help="exit once the queue and inbox are empty "
                             "instead of serving forever")
    parser.add_argument("--poll-seconds", type=float, default=0.2,
                        metavar="S",
                        help="idle inbox/queue poll interval")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="stop serving after this long (testing)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync every journal append (survives "
                             "host power loss, not just process kills)")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="logging verbosity")
    return parser


def serve_main(argv: list[str]) -> int:
    from repro.resilience.locking import CampaignLockError
    from repro.resilience.supervisor import RetryPolicy
    from repro.service.service import CampaignService
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        service = CampaignService(
            args.root, workers=args.workers,
            max_queue=args.max_queue,
            lease_seconds=args.lease_seconds,
            retry=RetryPolicy(max_attempts=args.max_retries + 1),
            seed=args.seed, fsync=args.fsync)
    except ValueError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    try:
        with service:
            return service.serve(poll_seconds=args.poll_seconds,
                                 drain=args.drain,
                                 max_seconds=args.max_seconds)
    except CampaignLockError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except SimulationError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


# -- the cluster subcommand (multi-node campaign tier) -----------------------


def build_cluster_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coyote-sim cluster",
        description="Run the multi-node campaign tier: a dispatcher "
                    "granting fenced leases to node executors over the "
                    "shared-filesystem transport, with dead-node "
                    "rebalancing and graceful cluster-to-local "
                    "degradation (docs/RESILIENCE.md).")
    parser.add_argument("--root", metavar="DIR", required=True,
                        help="cluster root directory (journal, inbox, "
                             "result cache, transport mailboxes)")
    role = parser.add_argument_group(
        "role", "default: dispatcher (owns the journal and grants "
                "leases); --node joins an existing cluster root as an "
                "executor")
    role.add_argument("--node", action="store_true",
                      help="run a node executor instead of the "
                           "dispatcher")
    role.add_argument("--node-id", default=None, metavar="ID",
                      help="node identity (default: host- and "
                           "pid-qualified, collision-resistant)")
    parser.add_argument("--nodes", type=int, default=2, metavar="N",
                        help="node executor subprocesses the dispatcher "
                             "launches itself (0 = rely on externally "
                             "joined --node processes)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes per node (and the "
                             "dispatcher's own pool if it degrades to "
                             "local execution)")
    parser.add_argument("--fence", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="enforce fencing tokens on every node "
                             "write; --no-fence demonstrates the "
                             "unsafe at-least-once legacy behaviour")
    parser.add_argument("--fault-plan", metavar="PLAN.json", default=None,
                        help="seeded service-fault plan injected into "
                             "the transport (drop/delay/duplicate/"
                             "partition; see "
                             "examples/service_fault_plan.json)")
    parser.add_argument("--lease-seconds", type=float, default=30.0,
                        metavar="S",
                        help="wall-clock lease per granted point")
    parser.add_argument("--node-deadline-seconds", type=float,
                        default=None, metavar="S",
                        help="declare a node dead after this heartbeat "
                             "silence and rebalance its leases "
                             "(default: --lease-seconds)")
    parser.add_argument("--heartbeat-seconds", type=float, default=0.5,
                        metavar="S",
                        help="node heartbeat / work-request cadence")
    parser.add_argument("--grace-seconds", type=float, default=5.0,
                        metavar="S",
                        help="how long the dispatcher waits for a "
                             "first node before degrading to local "
                             "execution")
    parser.add_argument("--max-queue", type=int, default=4096,
                        metavar="N",
                        help="bound on outstanding points; beyond it "
                             "submissions are rejected, not queued")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="re-run a crashed/lost point up to N "
                             "times before quarantining it")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="retry-backoff jitter seed")
    parser.add_argument("--drain", action="store_true",
                        help="exit once the queue and inbox are empty "
                             "instead of serving forever")
    parser.add_argument("--poll-seconds", type=float, default=0.2,
                        metavar="S",
                        help="idle poll interval")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="stop after this long (testing)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync every journal append")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="logging verbosity")
    return parser


def _node_argv(args, rank: int) -> list[str]:
    return [sys.executable, "-m", "repro.coyote.cli", "cluster",
            "--node", "--root", str(args.root),
            "--node-id", f"node-{rank}",
            "--workers", str(args.workers),
            "--heartbeat-seconds", str(args.heartbeat_seconds),
            "--log-level", args.log_level]


def _reap_children(children: list) -> None:
    """Collect launched node processes; escalate politely on stragglers."""
    for child in children:
        try:
            child.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            child.terminate()
            try:
                child.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait()


def cluster_main(argv: list[str]) -> int:
    from repro.resilience.locking import CampaignLockError
    from repro.resilience.supervisor import RetryPolicy
    from repro.service.cluster import ClusterDispatcher, ClusterNode
    from repro.service.transport import ServiceFaultPlan
    parser = build_cluster_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    if args.node:
        try:
            node = ClusterNode(args.root, args.node_id,
                               workers=args.workers,
                               heartbeat_seconds=args.heartbeat_seconds)
        except ValueError as exc:
            print(f"configuration error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        try:
            node.run(max_seconds=args.max_seconds)
        except KeyboardInterrupt:
            return EXIT_INTERRUPT
        return EXIT_OK
    plan = None
    if args.fault_plan is not None:
        try:
            plan = ServiceFaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"configuration error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
    try:
        dispatcher = ClusterDispatcher(
            args.root, fault_plan=plan, fence=args.fence,
            node_deadline_seconds=args.node_deadline_seconds,
            grace_seconds=args.grace_seconds,
            local_workers=args.workers,
            lease_seconds=args.lease_seconds,
            max_queue=args.max_queue,
            retry=RetryPolicy(max_attempts=args.max_retries + 1),
            seed=args.seed, fsync=args.fsync)
    except ValueError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    children: list = []
    try:
        with dispatcher:
            for rank in range(args.nodes):
                children.append(subprocess.Popen(_node_argv(args, rank)))
            return dispatcher.serve(poll_seconds=args.poll_seconds,
                                    drain=args.drain,
                                    max_seconds=args.max_seconds)
    except CampaignLockError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except SimulationError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    finally:
        # The dispatcher's close() already told every node to shut
        # down; collect the subprocesses it launched.
        _reap_children(children)


def build_jobs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coyote-sim jobs",
        description="Submit to and query the durable campaign service "
                    "(see `coyote-sim serve`).")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="enqueue a sweep campaign; prints the job id")
    submit.add_argument("--root", metavar="DIR", required=True)
    submit.add_argument("--kernel", choices=sorted(KERNELS),
                        default="scalar-spmv", help="workload to sweep")
    submit.add_argument("--cores", type=int, default=8)
    submit.add_argument("--size", type=int, default=None)
    submit.add_argument("--axes", action="append", metavar="NAME=V1,V2",
                        default=[], required=True,
                        help="one sweep axis (repeatable)")
    submit.add_argument("--no-verify", action="store_true",
                        help="do not require workload verification")

    status = commands.add_parser(
        "status", help="print a job's queue-state summary as JSON")
    status.add_argument("--root", metavar="DIR", required=True)
    status.add_argument("job_id")

    result = commands.add_parser(
        "result", help="print a completed job's sweep table")
    result.add_argument("--root", metavar="DIR", required=True)
    result.add_argument("job_id")
    result.add_argument("--wait", action="store_true",
                        help="run the queue in this process until the "
                             "job completes (requires the service lock)")
    result.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for --wait")
    result.add_argument("--metrics", default="cycles", metavar="M1,M2",
                        help="comma-separated metrics to tabulate")
    result.add_argument("--out", metavar="JSON", default=None,
                        help="write the canonical table "
                             "(SweepTable.to_dict) as JSON")

    cancel = commands.add_parser(
        "cancel", help="cancel a job's remaining points")
    cancel.add_argument("--root", metavar="DIR", required=True)
    cancel.add_argument("job_id")

    listing = commands.add_parser(
        "list", help="list every job the service knows, oldest first")
    listing.add_argument("--root", metavar="DIR", required=True)
    listing.add_argument("--status", default=None,
                         choices=("active", "complete", "cancelled"),
                         help="only jobs in this phase (active = "
                              "execution still outstanding)")
    listing.add_argument("--json", action="store_true",
                         help="print a JSON array of job-status "
                              "objects instead of the text table")
    return parser


def _job_phase(summary) -> str:
    """Collapse a JobStatus into the list-filter phases."""
    if summary.state == "cancelled":
        return "cancelled"
    return "complete" if summary.complete else "active"


def jobs_main(argv: list[str]) -> int:
    from repro import api
    from repro.resilience.checkpoint import CampaignCorruptError
    from repro.resilience.locking import CampaignLockError
    from repro.service.service import readonly_store
    parser = build_jobs_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "submit":
            axes = parse_axes(args.axes)
            job_id = api.submit(args.kernel, root=args.root, axes=axes,
                                cores=args.cores, size=args.size,
                                require_verified=not args.no_verify)
            print(job_id)
            return EXIT_OK
        if args.command == "status":
            print(json.dumps(api.status(args.job_id,
                                        root=args.root).to_dict(),
                             indent=1))
            return EXIT_OK
        if args.command == "result":
            metrics = tuple(name.strip()
                            for name in args.metrics.split(",")
                            if name.strip())
            table = api.result(args.job_id, root=args.root,
                               wait=args.wait, workers=args.workers)
            print(table.to_text(metrics=metrics))
            if args.out is not None:
                with open(args.out, "w") as handle:
                    json.dump(table.to_dict(metrics=metrics), handle,
                              indent=1)
                    handle.write("\n")
                print(f"table written        : {args.out}")
            return sweep_exit_code(table)
        if args.command == "cancel":
            print(json.dumps(api.cancel(args.job_id,
                                        root=args.root).to_dict(),
                             indent=1))
            return EXIT_OK
        if args.command == "list":
            store = readonly_store(args.root)
            summaries = [store.status(job_id)
                         for job_id in store.jobs_in_order()]
            if args.status is not None:
                summaries = [summary for summary in summaries
                             if _job_phase(summary) == args.status]
            if args.json:
                print(json.dumps([summary.to_dict()
                                  for summary in summaries], indent=1))
                return EXIT_OK
            for summary in summaries:
                print(f"{summary.job_id}  {summary.state:<9} "
                      f"{summary.done}/{summary.total} done, "
                      f"{summary.pending} pending, "
                      f"{summary.leased} leased, "
                      f"{summary.quarantined} quarantined")
            return EXIT_OK
    except ValueError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except (CampaignCorruptError, CampaignLockError,
            SimulationError) as exc:
        print(f"service error: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return EXIT_FAILURE
    raise AssertionError(f"unhandled jobs command {args.command!r}")


# -- the sweep subcommand ----------------------------------------------------


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="coyote-sim sweep",
        description="Run a cartesian design-space sweep, optionally "
                    "fanned out to a pool of worker processes.")
    parser.add_argument("--kernel", choices=sorted(KERNELS),
                        default="scalar-spmv", help="workload to sweep")
    parser.add_argument("--cores", type=int, default=8,
                        help="number of simulated cores per point")
    parser.add_argument("--size", type=int, default=None,
                        help="problem size (kernel-specific default)")
    parser.add_argument("--axes", action="append", metavar="NAME=V1,V2",
                        default=[], required=True,
                        help="one sweep axis (repeatable): a config "
                             "field name and its comma-separated values")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (1 = in-process)")
    parser.add_argument("--on-error", choices=("raise", "skip"),
                        default="skip",
                        help="campaign failure policy (default: skip — "
                             "record the point and carry on)")
    parser.add_argument("--metrics", default="cycles",
                        metavar="M1,M2",
                        help="comma-separated result metrics to tabulate")
    parser.add_argument("--out", metavar="JSON", default=None,
                        help="write the canonical table "
                             "(SweepTable.to_dict) plus the campaign "
                             "aggregate as JSON")
    parser.add_argument("--campaign", metavar="PATH", default=None,
                        help="campaign checkpoint: completed points are "
                             "persisted here and a restarted sweep "
                             "warm-starts from them")
    parser.add_argument("--progress", action="store_true",
                        help="stream k/n-points progress with ETA "
                             "through the telemetry logger")
    parser.add_argument("--best", metavar="METRIC", default=None,
                        help="also print the best point under this "
                             "metric (minimised)")
    supervisor = parser.add_argument_group(
        "supervision",
        "any of these flags runs every point under the supervised "
        "lifecycle (heartbeats, reaping, retries, quarantine — see "
        "docs/RESILIENCE.md)")
    supervisor.add_argument("--point-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="wall-clock budget per point attempt; "
                                 "an overrunning worker is reaped "
                                 "(SIGTERM, then SIGKILL)")
    supervisor.add_argument("--heartbeat-interval", type=float,
                            default=None, metavar="SECONDS",
                            help="worker heartbeat cadence; a worker "
                                 "silent for 5 intervals is reaped")
    supervisor.add_argument("--max-retries", type=int, default=0,
                            metavar="N",
                            help="re-dispatch a crashed/reaped point up "
                                 "to N times (exponential backoff with "
                                 "seeded jitter) before quarantining it")
    supervisor.add_argument("--max-rss-mb", type=float, default=None,
                            metavar="MB",
                            help="per-worker RSS ceiling; a worker "
                                 "reporting more is reaped")
    supervisor.add_argument("--chrome-trace", metavar="JSON",
                            default=None,
                            help="write the supervisor's per-attempt "
                                 "spans as a Chrome trace-event file")
    return parser


def supervisor_policy_from_args(args: argparse.Namespace):
    """The SupervisorPolicy the sweep flags describe (None = legacy)."""
    from repro.resilience.supervisor import RetryPolicy, SupervisorPolicy
    if (args.point_timeout is None and args.heartbeat_interval is None
            and args.max_rss_mb is None and not args.max_retries):
        return None
    policy = SupervisorPolicy(
        point_timeout_seconds=args.point_timeout,
        heartbeat_interval_seconds=args.heartbeat_interval or 0.0,
        max_rss_mb=args.max_rss_mb,
        retry=RetryPolicy(max_attempts=args.max_retries + 1))
    policy.validate()
    return policy


def parse_axis_token(token: str):
    """One axis value: int, float, bool, or plain string."""
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(token)
        except ValueError:
            continue
    return token


def parse_axes(specs: list[str]) -> dict[str, list]:
    """``["l2_mode=shared,private", "noc.latency=2,6"]`` -> axes dict."""
    axes: dict[str, list] = {}
    for spec in specs:
        name, separator, values = spec.partition("=")
        name = name.strip()
        if not separator or not name or not values:
            raise ValueError(
                f"bad axis {spec!r} (expected NAME=VALUE[,VALUE...])")
        if name in axes:
            raise ValueError(f"duplicate axis {name!r}")
        tokens = [token.strip() for token in values.split(",")]
        if not all(tokens) or any("=" in token for token in tokens):
            raise ValueError(
                f"bad axis {spec!r} (expected NAME=VALUE[,VALUE...])")
        axes[name] = [parse_axis_token(token) for token in tokens]
    return axes


def sweep_exit_code(table) -> int:
    """The taxonomy code of a finished campaign.

    Quarantined points are the supervisor doing its job — the campaign
    terminated with the poison points isolated and recorded — so under
    ``on_error="skip"`` they do not fail the exit code; any *other*
    failure still does.
    """
    from repro.resilience.supervisor import QuarantinedPoint
    hard = [error for _settings, error in table.failures()
            if not isinstance(error, QuarantinedPoint)]
    return EXIT_OK if not hard else EXIT_FAILURE


def sweep_main(argv: list[str]) -> int:
    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    if args.progress:
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        axes = parse_axes(args.axes)
        sweep = Sweep(base_cores=args.cores, axes=axes)
        policy = supervisor_policy_from_args(args)
        for path in (args.out, args.chrome_trace):
            if path is not None:
                directory = os.path.dirname(path) or "."
                if not os.path.isdir(directory):
                    raise ValueError(
                        f"output directory does not exist: {directory}")
    except ValueError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    kernel, cores, size = args.kernel, args.cores, args.size

    def factory():
        return make_workload(kernel, cores, size)

    metrics = tuple(name.strip() for name in args.metrics.split(",")
                    if name.strip())
    from repro.coyote.parallel import ParallelSweep
    engine = ParallelSweep(sweep, workers=args.workers,
                           on_error=args.on_error,
                           progress=args.progress,
                           campaign_path=args.campaign, policy=policy)
    try:
        table = engine.run(factory)
    except KeyboardInterrupt:
        # The engine drained its pool and flushed the partial campaign
        # checkpoint before letting the interrupt reach us.
        print("interrupted", file=sys.stderr)
        if args.campaign is not None:
            print(f"  campaign checkpoint: {args.campaign} "
                  f"(rerun with --campaign to warm-start)",
                  file=sys.stderr)
        return EXIT_INTERRUPT
    except (ValueError, DeadlockError, SimulationError) as exc:
        print(f"sweep failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return (EXIT_DEADLOCK if isinstance(exc, DeadlockError)
                else EXIT_FAILURE)
    print(table.to_text(metrics=metrics))
    aggregate = table.aggregate(metrics)
    print(f"\npoints               : {aggregate['points']} "
          f"({aggregate['failed']} failed)")
    print(f"workers              : {table.workers}")
    print(f"campaign wall time   : {table.wall_seconds:.2f} s")
    if policy is not None:
        counters = engine.monitor.counters
        print(f"supervisor           : {counters['attempts']} attempts, "
              f"{counters['retries']} retries, "
              f"{counters['quarantined']} quarantined")
    for event in table.degradations:
        print(f"pool degraded        : {event.from_workers} -> "
              f"{event.to_workers or 'serial'} workers "
              f"({event.reason})", file=sys.stderr)
    if args.best is not None and aggregate["succeeded"]:
        best = table.best(args.best)
        print(f"best {args.best:<15}: {best.settings} "
              f"({best.metric(args.best):g})")
    for settings, error in table.failures():
        print(f"failed point {settings}: {type(error).__name__}: {error}",
              file=sys.stderr)
        tail = getattr(error, "stderr_tail", "")
        if tail:
            print(f"  worker stderr tail: {tail}", file=sys.stderr)
    if args.chrome_trace is not None:
        with open(args.chrome_trace, "w") as handle:
            json.dump(engine.monitor.chrome_trace(), handle, indent=1)
            handle.write("\n")
        print(f"chrome trace written : {args.chrome_trace}")
    if args.out is not None:
        document = table.to_dict(metrics=metrics)
        document["aggregate"] = aggregate
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        print(f"table written        : {args.out}")
    return sweep_exit_code(table)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "cluster":
        return cluster_main(argv[1:])
    if argv and argv[0] == "jobs":
        return jobs_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.sample_interval < 0:
        parser.error(f"--sample-interval must be >= 0, "
                     f"got {args.sample_interval}")
    if (args.pause_at is None) != (args.checkpoint_out is None):
        parser.error("--pause-at (formerly --checkpoint-at) and "
                     "--checkpoint-out go together")
    if args.resume is not None and args.config is not None:
        parser.error("--resume restores the checkpointed configuration; "
                     "--config cannot apply")
    for path in (args.metrics_out, args.chrome_trace,
                 args.checkpoint_out):
        if path is not None:
            directory = os.path.dirname(path) or "."
            if not os.path.isdir(directory):
                parser.error(f"output directory does not exist: "
                             f"{directory}")
    if args.log_level is not None or args.progress:
        logging.basicConfig(
            level=getattr(logging, (args.log_level or "info").upper()),
            format="%(asctime)s %(name)s %(levelname)s %(message)s")

    try:
        if args.resume is not None:
            simulation, metadata = load_checkpoint(args.resume)
            kernel = metadata["kernel"]
            cores = metadata["cores"]
            size = metadata["size"]
        else:
            kernel, cores, size = args.kernel, args.cores, args.size
            if args.config is not None:
                config = SimulationConfig.load(args.config)
                if args.trace is not None:
                    config.trace_misses = True
                if args.no_translate:
                    config.translate = False
                cores = config.num_cores
            else:
                config = SimulationConfig.for_cores(
                    args.cores, l2_mode=args.l2_mode,
                    mapping_policy=args.mapping,
                    mem_latency=args.mem_latency,
                    vlen_bits=args.vlen,
                    translate=not args.no_translate,
                    trace_misses=args.trace is not None,
                    **{"noc.kind": args.noc_topology,
                       "noc.latency": args.noc_crossbar_latency,
                       "noc.routing": args.noc_routing,
                       "noc.columns": args.noc_columns,
                       "noc.router_latency": args.noc_router_latency,
                       "noc.link_latency": args.noc_link_latency,
                       "noc.link_capacity": args.noc_link_capacity,
                       "noc.wrap": args.noc_wrap})
            resilience = config.resilience
            if args.inject is not None:
                FaultPlan.load(args.inject).apply(resilience)
            if args.fault_seed is not None:
                resilience.fault_seed = args.fault_seed
            if args.watchdog is not None:
                resilience.watchdog_cycles = args.watchdog
            if args.check_invariants is not None:
                resilience.invariant_interval = args.check_invariants
            config.validate()
            telemetry = telemetry_from_args(args, config.telemetry)
            if telemetry.enabled:
                config.telemetry = telemetry
            if args.save_config is not None:
                config.save(args.save_config)
    except (ValueError, KeyError, OSError, SimulationError) as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG

    workload = make_workload(kernel, cores, size)
    if args.resume is None:
        simulation = Simulation(config, workload.program)

    try:
        results = simulation.run(pause_at=args.pause_at)
    except KeyboardInterrupt:
        _dump_partial(simulation)
        return EXIT_INTERRUPT
    except DeadlockError as exc:
        _report_deadlock(exc)
        return EXIT_DEADLOCK
    except SimulationError as exc:
        print(f"simulation error: {exc}", file=sys.stderr)
        return EXIT_FAILURE

    if simulation.paused:
        metadata = {"kernel": kernel, "cores": cores, "size": size}
        path = save_checkpoint(simulation, args.checkpoint_out, metadata)
        cycle = simulation.orchestrator.scheduler.current_cycle
        print(f"checkpoint written   : {path} (cycle {cycle})")
        return EXIT_OK

    print(f"kernel               : {workload.name}")
    print(f"cores                : {cores}")
    print(results.summary())
    verified = workload.verify(simulation.memory)
    print(f"output verified      : {verified}")
    injector = simulation.orchestrator.fault_injector
    if injector is not None:
        applied = ", ".join(
            f"{sample.name}={sample.value:g}"
            for sample in injector.stats.samples() if sample.value)
        print(f"faults injected      : {applied or 'none'}")
    if args.hierarchy_stats:
        print("\n-- modelled hierarchy --")
        print(results.hierarchy_report())
    if args.progress and results.host_profile is not None:
        profiler = simulation.telemetry.profiler
        print(profiler.format_report())
    if args.trace is not None:
        prv, pcf = simulation.write_trace(args.trace)
        print(f"trace written        : {prv} / {pcf}")
    if args.chrome_trace is not None:
        path = simulation.write_chrome_trace(args.chrome_trace)
        print(f"chrome trace written : {path}")
    if args.metrics_out is not None:
        with open(args.metrics_out, "w") as handle:
            json.dump(results.to_dict(), handle, indent=1)
            handle.write("\n")
        print(f"metrics written      : {args.metrics_out}")

    ok = verified and results.succeeded()
    if not ok:
        _report_failure(workload, results)
    return EXIT_OK if ok else EXIT_VERIFY


def _dump_partial(simulation) -> None:
    """Progress dump on SIGINT, so an interrupted campaign still tells
    where it was."""
    orchestrator = simulation.orchestrator
    scheduler = orchestrator.scheduler
    instructions = sum(core.instructions for core in orchestrator.cores)
    halted = sum(1 for core in orchestrator.cores if core.halted)
    print("interrupted", file=sys.stderr)
    print(f"  cycle            : {scheduler.current_cycle}",
          file=sys.stderr)
    print(f"  instructions     : {instructions}", file=sys.stderr)
    print(f"  events fired     : {scheduler.events_fired}",
          file=sys.stderr)
    print(f"  cores halted     : {halted}/{len(orchestrator.cores)}",
          file=sys.stderr)


def _report_deadlock(error: DeadlockError) -> None:
    """Summarise the watchdog's diagnostic snapshot on stderr."""
    print(f"DEADLOCK: {error}", file=sys.stderr)
    snapshot = error.snapshot
    sched = snapshot["scheduler"]
    print(f"  pending events   : {sched['pending_events']} "
          f"(next at {sched['next_event_cycle']})", file=sys.stderr)
    for core in snapshot["cores"]:
        if core["state"] in ("active", "halted"):
            continue
        print(f"  core {core['core_id']}: {core['state']} at "
              f"pc={core['pc']:#x} for {core.get('stalled_for', 0)} "
              f"cycles, busy regs {core['busy_registers']}",
              file=sys.stderr)
    for miss in snapshot["orphaned_misses"]:
        print(f"  orphaned: miss {miss['miss_id']} of core "
              f"{miss['core_id']} (registers {miss['registers']})",
              file=sys.stderr)
    noc = snapshot.get("noc", {})
    for link, depth in sorted(noc.get("busy_links", {}).items(),
                              key=lambda item: -item[1]["backlog_cycles"]):
        print(f"  congested link {link}: "
              f"{depth['backlog_cycles']} cycles of granted backlog "
              f"({depth['slots_used']} slot(s) in the last cycle)",
              file=sys.stderr)
    if noc.get("in_network"):
        print(f"  noc: {noc['in_network']} message(s) still in the "
              f"network after {noc.get('queue_cycles', 0)} total "
              f"queued cycles", file=sys.stderr)


def _report_failure(workload, results) -> None:
    """Explain a nonzero exit on stderr (which cores / what mismatched)."""
    print(f"FAILED: kernel {workload.name!r} did not complete cleanly",
          file=sys.stderr)
    nonzero = {core: code for core, code in results.exit_codes.items()
               if code != 0}
    if nonzero:
        for core, code in sorted(nonzero.items()):
            print(f"  core {core} exited with code {code}",
                  file=sys.stderr)
    missing = sorted(set(range(results.num_cores))
                     - set(results.exit_codes))
    if missing:
        print(f"  cores {missing} never reached exit", file=sys.stderr)
    if not nonzero and not missing:
        print("  all cores exited 0 but the kernel output did not match "
              "the expected result (verify mismatch)", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
