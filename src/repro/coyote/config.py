"""Top-level simulation configuration.

Composes the functional-side parameters (cores, VLEN, L1 geometry) with
the modelled-hierarchy parameters (:class:`~repro.memhier.hierarchy.
MemHierConfig`).  ``SimulationConfig.for_cores(n)`` builds the paper-style
tiled layout: VAS tiles of eight cores, two L2 banks per tile.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.memhier.hierarchy import MemHierConfig
from repro.memhier.noc import NocConfig
from repro.resilience.config import ResilienceConfig
from repro.spike.simulator import L1Config
from repro.telemetry.config import TelemetryConfig
from repro.utils.bitops import is_power_of_two
from repro.utils.deprecation import warn_deprecated

DEFAULT_CORES_PER_TILE = 8   # one VAS tile holds eight cores (paper §I-A)
DEFAULT_BANKS_PER_TILE = 2

# Pre-NocConfig flat spellings, still accepted (with a deprecation
# warning) as for_cores overrides and in saved config files.
_LEGACY_NOC_FIELDS = {
    "noc_kind": "kind",
    "noc_latency": "latency",
    "mesh_columns": "columns",
}


def _split_noc_overrides(overrides: dict) -> tuple[dict, dict]:
    """Separate dotted ``noc.*`` keys (and deprecated flat spellings)
    from the remaining ``for_cores`` overrides."""
    noc_overrides: dict = {}
    rest: dict = {}
    for key, value in overrides.items():
        legacy = _LEGACY_NOC_FIELDS.get(key)
        if legacy is not None:
            warn_deprecated(f"the {key!r} override",
                            f"'noc.{legacy}'", stacklevel=4)
            noc_overrides[legacy] = value
        elif key.startswith("noc."):
            noc_overrides[key[len("noc."):]] = value
        else:
            rest[key] = value
    unknown = set(noc_overrides) - set(NocConfig.__dataclass_fields__)
    if unknown:
        raise ValueError(f"unknown noc.* override(s): {sorted(unknown)}")
    return noc_overrides, rest


@dataclass
class SimulationConfig:
    """Everything needed to build a Coyote simulation."""

    memhier: MemHierConfig = field(default_factory=MemHierConfig)
    l1: L1Config = field(default_factory=L1Config)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    vlen_bits: int = 512
    max_cycles: int = 200_000_000
    trace_misses: bool = False
    # Trace-compiled ISS fast path (repro.spike.translate).  Bit-exact
    # with the interpreter by construction and proven so differentially;
    # ``translate=False`` opts out for debugging comparisons.
    translate: bool = True

    def __post_init__(self) -> None:
        self.validate()

    @property
    def num_cores(self) -> int:
        return self.memhier.num_cores

    @property
    def noc(self) -> NocConfig:
        """The interconnect configuration (``memhier.noc``)."""
        return self.memhier.noc

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        self.memhier.validate()
        self.telemetry.validate()
        self.resilience.validate()
        if self.vlen_bits % 64 or self.vlen_bits < 64:
            raise ValueError(f"VLEN must be a positive multiple of 64, "
                             f"got {self.vlen_bits}")
        if self.l1.line_bytes != self.memhier.line_bytes:
            raise ValueError(
                f"L1 and L2 line sizes must match "
                f"({self.l1.line_bytes} != {self.memhier.line_bytes})")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be positive")

    @classmethod
    def builder(cls, num_cores: int = 8) -> "ConfigBuilder":
        """Start a fluent builder: ``SimulationConfig.builder(8).
        l2_mode("private").noc("mesh").build()``."""
        return ConfigBuilder(num_cores)

    @classmethod
    def for_cores(cls, num_cores: int, **overrides) -> "SimulationConfig":
        """Build the default tiled layout for ``num_cores`` cores.

        Core counts of eight and above use full tiles of
        ``DEFAULT_CORES_PER_TILE`` cores; smaller (power-of-two) counts use
        a single partial tile.  Keyword overrides are applied to the
        :class:`MemHierConfig` (for its field names) or to the
        ``SimulationConfig`` itself.  Interconnect fields are addressed
        with dotted keys (``**{"noc.kind": "torus", "noc.routing":
        "adaptive"}``) or by passing a whole ``noc=NocConfig(...)``; the
        pre-``NocConfig`` flat spellings (``noc_kind=``, ``noc_latency=``,
        ``mesh_columns=``) still work but warn.
        """
        if num_cores < 1:
            raise ValueError(f"need at least one core, got {num_cores}")
        if num_cores >= DEFAULT_CORES_PER_TILE:
            if num_cores % DEFAULT_CORES_PER_TILE:
                raise ValueError(
                    f"{num_cores} cores is not a whole number of "
                    f"{DEFAULT_CORES_PER_TILE}-core tiles")
            num_tiles = num_cores // DEFAULT_CORES_PER_TILE
            if not is_power_of_two(num_tiles):
                raise ValueError(f"tile count must be a power of two, "
                                 f"got {num_tiles}")
            memhier = MemHierConfig(num_tiles=num_tiles,
                                    cores_per_tile=DEFAULT_CORES_PER_TILE,
                                    banks_per_tile=DEFAULT_BANKS_PER_TILE)
        else:
            memhier = MemHierConfig(num_tiles=1, cores_per_tile=num_cores,
                                    banks_per_tile=DEFAULT_BANKS_PER_TILE)
        noc_overrides, overrides = _split_noc_overrides(overrides)
        memhier_fields = set(MemHierConfig.__dataclass_fields__)
        memhier_overrides = {key: value for key, value in overrides.items()
                             if key in memhier_fields}
        config_overrides = {key: value for key, value in overrides.items()
                            if key not in memhier_fields}
        memhier = replace(memhier, **memhier_overrides)
        if noc_overrides:
            # Dotted keys layer on top of a whole-object noc= override.
            memhier = replace(
                memhier,
                noc=replace(NocConfig.from_value(memhier.noc),
                            **noc_overrides))
        return cls(memhier=memhier, **config_overrides)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serialisable view of the full configuration."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Unknown keys raise, so stale config files fail loudly.  The one
        exception: pre-``NocConfig`` files spelling the interconnect as
        flat ``noc_kind``/``noc_latency``/``mesh_columns`` keys still
        load, with a deprecation warning.
        """
        data = dict(data)
        memhier_data = dict(data.pop("memhier", {}))
        noc = NocConfig.from_value(memhier_data.pop("noc", None))
        legacy = {}
        for old, new in _LEGACY_NOC_FIELDS.items():
            if old in memhier_data:
                warn_deprecated(f"the config key 'memhier.{old}'",
                                f"'memhier.noc.{new}'")
                legacy[new] = memhier_data.pop(old)
        if legacy:
            noc = replace(noc, **legacy)
        memhier = MemHierConfig(noc=noc, **memhier_data)
        l1 = L1Config(**data.pop("l1", {}))
        telemetry = TelemetryConfig(**data.pop("telemetry", {}))
        resilience = ResilienceConfig.from_dict(
            data.pop("resilience", {}))
        known = set(cls.__dataclass_fields__) - {"memhier", "l1",
                                                "telemetry", "resilience"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(memhier=memhier, l1=l1, telemetry=telemetry,
                   resilience=resilience, **data)

    def save(self, path: str | Path) -> Path:
        """Write the configuration as JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SimulationConfig":
        """Read a configuration written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


class ConfigBuilder:
    """Fluent construction of a :class:`SimulationConfig`.

    Every setter returns the builder, and :meth:`build` routes through
    :meth:`SimulationConfig.for_cores`, so the builder accepts exactly
    the same knobs (``MemHierConfig`` fields or ``SimulationConfig``
    fields) with the same validation.  Unknown names fail at
    :meth:`build` with the dataclass's own error.

    >>> config = (SimulationConfig.builder(8)
    ...           .l2_mode("private").noc("mesh")
    ...           .max_cycles(1_000_000).build())
    """

    def __init__(self, num_cores: int = 8):
        self._num_cores = num_cores
        self._overrides: dict = {}

    def cores(self, num_cores: int) -> "ConfigBuilder":
        self._num_cores = num_cores
        return self

    def set(self, **overrides) -> "ConfigBuilder":
        """Set any ``for_cores`` override by keyword."""
        self._overrides.update(overrides)
        return self

    # Named setters for the knobs every design study touches.

    def l2_mode(self, mode: str) -> "ConfigBuilder":
        return self.set(l2_mode=mode)

    def mapping(self, policy: str) -> "ConfigBuilder":
        return self.set(mapping_policy=policy)

    def noc(self, kind: str | NocConfig | None = None,
            **options) -> "ConfigBuilder":
        """Configure the interconnect.

        Accepts a whole :class:`NocConfig`, a kind string
        (``"crossbar"``/``"mesh"``/``"torus"``), keyword options naming
        ``NocConfig`` fields (``routing=``, ``columns=``,
        ``link_capacity=``, ...), or any combination of kind and
        options: ``builder.noc("torus", routing="adaptive")``.
        """
        if isinstance(kind, NocConfig):
            self.set(noc=kind)
        elif kind is not None:
            self.set(**{"noc.kind": kind})
        if options:
            self.set(**{f"noc.{name}": value
                        for name, value in options.items()})
        return self

    def noc_latency(self, cycles: int) -> "ConfigBuilder":
        """Deprecated spelling of ``noc(latency=...)``."""
        warn_deprecated("ConfigBuilder.noc_latency()",
                        "ConfigBuilder.noc(latency=...)")
        return self.set(**{"noc.latency": cycles})

    def mem_latency(self, cycles: int) -> "ConfigBuilder":
        return self.set(mem_latency=cycles)

    def vlen(self, bits: int) -> "ConfigBuilder":
        return self.set(vlen_bits=bits)

    def max_cycles(self, cycles: int) -> "ConfigBuilder":
        return self.set(max_cycles=cycles)

    def trace_misses(self, enabled: bool = True) -> "ConfigBuilder":
        return self.set(trace_misses=enabled)

    def translate(self, enabled: bool = True) -> "ConfigBuilder":
        return self.set(translate=enabled)

    def telemetry(self, telemetry: TelemetryConfig) -> "ConfigBuilder":
        return self.set(telemetry=telemetry)

    def resilience(self, resilience: ResilienceConfig) -> "ConfigBuilder":
        return self.set(resilience=resilience)

    def build(self) -> SimulationConfig:
        return SimulationConfig.for_cores(self._num_cores,
                                          **self._overrides)
