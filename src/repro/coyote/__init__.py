"""Coyote: the execution-driven simulator (orchestrator + public API)."""

from repro.coyote.config import SimulationConfig
from repro.coyote.orchestrator import Orchestrator, SimulationError
from repro.coyote.simulation import Simulation
from repro.coyote.stats import CoreStats, SimulationResults
from repro.coyote.sweep import Sweep, SweepPoint, SweepTable
from repro.coyote.trace import MissTraceRecorder
from repro.telemetry import TelemetryConfig

__all__ = [
    "CoreStats",
    "MissTraceRecorder",
    "TelemetryConfig",
    "Orchestrator",
    "Simulation",
    "SimulationConfig",
    "SimulationError",
    "SimulationResults",
    "Sweep",
    "SweepPoint",
    "SweepTable",
]
