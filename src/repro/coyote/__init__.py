"""Coyote: the execution-driven simulator (orchestrator + public API).

The canonical import surface is :mod:`repro.api`; this package
re-exports the blessed names from there (lazily, to stay cycle-free)
so historical ``from repro.coyote import Simulation`` imports keep
working, plus the internal-but-stable extras (:class:`Orchestrator`,
:class:`MissTraceRecorder`) that live below the facade.
"""

import importlib

# Names served from the repro.api facade (the canonical path).
_API_NAMES = frozenset({
    "ConfigBuilder",
    "CoreStats",
    "NocConfig",
    "ParallelSweep",
    "RemoteError",
    "RoutingPolicy",
    "Simulation",
    "SimulationConfig",
    "SimulationError",
    "SimulationResults",
    "Sweep",
    "SweepError",
    "SweepPoint",
    "SweepTable",
    "TelemetryConfig",
    "WorkerCrash",
})

# Internal-but-stable names that stay below the facade.
_LOCAL_NAMES = {
    "MissTraceRecorder": "repro.coyote.trace",
    "Orchestrator": "repro.coyote.orchestrator",
}

__all__ = sorted(_API_NAMES | set(_LOCAL_NAMES))


def __getattr__(name: str):
    if name in _API_NAMES:
        api = importlib.import_module("repro.api")
        value = getattr(api, name)
    elif name in _LOCAL_NAMES:
        value = getattr(importlib.import_module(_LOCAL_NAMES[name]), name)
    else:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value  # cache: subsequent lookups skip this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
