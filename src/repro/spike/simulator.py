"""The functional multicore simulator (our "Spike").

Two layers live here:

* :class:`CoreModel` — one core with private L1 I/D caches.  Its
  :meth:`CoreModel.step` executes a single instruction functionally and
  classifies every memory access against the L1s, reporting the misses
  that must be sent into the Sparta-modelled hierarchy.  This is the
  per-cycle entry point used by the Coyote orchestrator.

* :class:`SpikeSimulator` — a free-running multicore ISS without timing,
  supporting Spike's *interleaving* optimisation (execute N instructions
  per core before switching).  Coyote runs with interleaving disabled
  (N = 1), which is the performance effect Figure 3 analyses; the raw ISS
  exposes the knob so the ablation benchmark can measure it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.assembler.program import Program
from repro.spike.hart import Hart, Trap
from repro.spike.l1cache import L1Cache
from repro.spike.machine import BareMetalMachine


class AccessKind(enum.Enum):
    """Classification of a request leaving a core for the hierarchy."""

    IFETCH = "ifetch"
    LOAD = "load"
    STORE = "store"
    WRITEBACK = "writeback"


@dataclass(frozen=True)
class MissRequest:
    """An L1 miss that must be serviced by the modelled hierarchy."""

    core_id: int
    line_address: int
    kind: AccessKind
    registers: tuple = ()  # registers released when the miss completes


class StepStatus(enum.Enum):
    """Outcome of attempting to execute one instruction on a core."""

    EXECUTED = "executed"
    RAW_STALL = "raw-stall"
    FETCH_MISS = "fetch-miss"
    HALTED = "halted"


@dataclass
class CoreStep:
    """Everything the orchestrator needs to know about one core-step."""

    status: StepStatus
    mnemonic: str | None = None
    misses: list[MissRequest] = field(default_factory=list)
    exited: bool = False
    exit_code: int = 0


@dataclass
class L1Config:
    """Geometry of the private L1 caches (identical across cores)."""

    icache_bytes: int = 16 * 1024
    dcache_bytes: int = 32 * 1024
    associativity: int = 8
    line_bytes: int = 64


class CoreModel:
    """One simulated core: hart + private L1 I/D caches."""

    def __init__(self, hart: Hart, machine: BareMetalMachine,
                 l1: L1Config | None = None):
        l1 = l1 or L1Config()
        self.hart = hart
        self.machine = machine
        self.core_id = hart.hart_id
        self.l1i = L1Cache(l1.icache_bytes, l1.associativity, l1.line_bytes,
                           name=f"core{self.core_id}.l1i")
        self.l1d = L1Cache(l1.dcache_bytes, l1.associativity, l1.line_bytes,
                           name=f"core{self.core_id}.l1d")
        self.halted = False
        self.raw_stalls = 0
        self.fetch_stalls = 0
        self.instructions = 0

    def peek_registers(self) -> tuple:
        """Source+destination registers of the next instruction.

        The orchestrator checks these against the scoreboard *before*
        calling :meth:`step`; both sources (RAW) and destinations (WAW on
        a pending fill) must be free.
        """
        return self.hart.decode_at(self.hart.pc).all_regs

    def step(self) -> CoreStep:
        """Execute one instruction, classifying accesses against the L1s."""
        if self.halted:
            return CoreStep(StepStatus.HALTED)

        misses: list[MissRequest] = []
        hart = self.hart

        # Instruction fetch through the L1I.
        fetch = self.l1i.access(hart.pc, is_write=False)
        if not fetch.hit:
            self.fetch_stalls += 1
            misses.append(MissRequest(self.core_id, fetch.line_address,
                                      AccessKind.IFETCH))
            if fetch.writeback_address is not None:
                misses.append(MissRequest(self.core_id,
                                          fetch.writeback_address,
                                          AccessKind.WRITEBACK))
            return CoreStep(StepStatus.FETCH_MISS, misses=misses)

        instr = hart.step()
        self.instructions += 1

        # Classify this step's data accesses, coalescing per cache line:
        # a repeated (line, kind) pair within one instruction (e.g. a
        # unit-stride vector load) produces a single request.
        accesses = hart.accesses
        if accesses:
            l1d = self.l1d
            line_bytes = l1d.line_bytes
            seen: set[tuple[int, bool]] | None = \
                set() if len(accesses) > 1 else None
            for access in accesses:
                is_write = access.is_write
                first_line = l1d.line_address(access.address)
                last_line = l1d.line_address(access.address
                                             + access.size - 1)
                line = first_line
                while line <= last_line:
                    if seen is not None:
                        key = (line, is_write)
                        if key in seen:
                            line += line_bytes
                            continue
                        seen.add(key)
                    result = l1d.access(line, is_write)
                    if not result.hit:
                        kind = (AccessKind.STORE if is_write
                                else AccessKind.LOAD)
                        registers = (instr.dests
                                     if kind is AccessKind.LOAD else ())
                        misses.append(MissRequest(self.core_id, line,
                                                  kind, registers))
                        if result.writeback_address is not None:
                            misses.append(MissRequest(
                                self.core_id, result.writeback_address,
                                AccessKind.WRITEBACK))
                    line += line_bytes

        event = self.machine.check_htif(hart.accesses, hart)
        if event.exited:
            self.halted = True
        return CoreStep(StepStatus.EXECUTED, mnemonic=instr.mnemonic,
                        misses=misses, exited=event.exited,
                        exit_code=event.exit_code)


class SpikeSimulator:
    """Free-running functional multicore simulation (no timing model).

    This is the raw ISS: it executes instructions as fast as possible with
    a configurable interleaving batch, and is used standalone for
    functional kernel testing and for the interleaving ablation.
    """

    def __init__(self, program: Program, num_cores: int = 1,
                 vlen_bits: int = 512, interleave: int = 1):
        if interleave < 1:
            raise ValueError(f"interleave must be >= 1, got {interleave}")
        self.machine = BareMetalMachine(program, num_cores,
                                        vlen_bits=vlen_bits)
        self.interleave = interleave
        self.halted = [False] * num_cores
        self.instructions = 0

    @property
    def harts(self) -> list[Hart]:
        return self.machine.harts

    def run(self, max_instructions: int = 100_000_000) -> int:
        """Run until every hart halts; returns instructions executed.

        Raises ``RuntimeError`` if ``max_instructions`` is exhausted first
        (a runaway-program backstop) or if a hart traps.
        """
        remaining = max_instructions
        harts = self.machine.harts
        while not all(self.halted):
            progress = False
            for hart in harts:
                if self.halted[hart.hart_id]:
                    continue
                progress = True
                for _ in range(self.interleave):
                    try:
                        hart.step()
                    except Trap as exc:
                        raise RuntimeError(
                            f"hart {hart.hart_id} trapped: {exc}") from exc
                    self.instructions += 1
                    remaining -= 1
                    if remaining <= 0:
                        raise RuntimeError(
                            f"instruction budget exhausted "
                            f"({max_instructions})")
                    event = self.machine.check_htif(hart.accesses, hart)
                    if event.exited:
                        self.halted[hart.hart_id] = True
                        break
            if not progress:
                break
        return self.instructions
