"""The functional multicore simulator (our "Spike").

Two layers live here:

* :class:`CoreModel` — one core with private L1 I/D caches.  Its
  :meth:`CoreModel.step` executes a single instruction functionally and
  classifies every memory access against the L1s, reporting the misses
  that must be sent into the Sparta-modelled hierarchy.  This is the
  per-cycle entry point used by the Coyote orchestrator.

* :class:`SpikeSimulator` — a free-running multicore ISS without timing,
  supporting Spike's *interleaving* optimisation (execute N instructions
  per core before switching).  Coyote runs with interleaving disabled
  (N = 1), which is the performance effect Figure 3 analyses; the raw ISS
  exposes the knob so the ablation benchmark can measure it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.assembler.program import Program
from repro.spike.hart import Hart, Trap
from repro.spike.l1cache import L1Cache
from repro.spike.machine import BareMetalMachine


class AccessKind(enum.Enum):
    """Classification of a request leaving a core for the hierarchy."""

    IFETCH = "ifetch"
    LOAD = "load"
    STORE = "store"
    WRITEBACK = "writeback"


@dataclass(frozen=True)
class MissRequest:
    """An L1 miss that must be serviced by the modelled hierarchy."""

    core_id: int
    line_address: int
    kind: AccessKind
    registers: tuple = ()  # registers released when the miss completes
    pc: int = 0            # faulting pc (guest-profile attribution)


class StepStatus(enum.Enum):
    """Outcome of attempting to execute one instruction on a core."""

    EXECUTED = "executed"
    RAW_STALL = "raw-stall"
    FETCH_MISS = "fetch-miss"
    HALTED = "halted"


@dataclass
class CoreStep:
    """Everything the orchestrator needs to know about one core-step."""

    status: StepStatus
    mnemonic: str | None = None
    misses: list[MissRequest] = field(default_factory=list)
    exited: bool = False
    exit_code: int = 0


# Shared outcome instances for the two allocation-free hot cases.  A
# clean executed step (no misses) is the overwhelmingly common outcome,
# and nothing downstream reads ``mnemonic`` or mutates ``misses``, so a
# single immutable-by-convention instance serves every such step.
# ``CLEAN_STEP`` is public: the orchestrator's hot loop recognises it by
# identity and skips all post-step bookkeeping for it.
CLEAN_STEP = CoreStep(StepStatus.EXECUTED, misses=[])
_HALTED_STEP = CoreStep(StepStatus.HALTED, misses=[])


@dataclass
class L1Config:
    """Geometry of the private L1 caches (identical across cores)."""

    icache_bytes: int = 16 * 1024
    dcache_bytes: int = 32 * 1024
    associativity: int = 8
    line_bytes: int = 64


class CoreModel:
    """One simulated core: hart + private L1 I/D caches."""

    def __init__(self, hart: Hart, machine: BareMetalMachine,
                 l1: L1Config | None = None):
        l1 = l1 or L1Config()
        self.hart = hart
        self.machine = machine
        self.core_id = hart.hart_id
        self.l1i = L1Cache(l1.icache_bytes, l1.associativity, l1.line_bytes,
                           name=f"core{self.core_id}.l1i")
        self.l1d = L1Cache(l1.dcache_bytes, l1.associativity, l1.line_bytes,
                           name=f"core{self.core_id}.l1d")
        self.halted = False
        # RAW-stall *cycles* are accounted once, by the orchestrator's
        # per-core state (the single source of truth surfaced as
        # ``CoreStats.raw_stall_cycles``); ``fetch_stalls`` here counts
        # fetch-miss *events* observed by :meth:`step`.
        self.fetch_stalls = 0
        self.instructions = 0
        # Guest-profile hook: a CoreProfile when profiling is enabled,
        # None otherwise (the step pays one is-None test per retire).
        self.profile = None

    def peek_registers(self) -> tuple:
        """Source+destination registers of the next instruction.

        The orchestrator checks these against the scoreboard *before*
        calling :meth:`step`; both sources (RAW) and destinations (WAW on
        a pending fill) must be free.
        """
        return self.hart.decode_at(self.hart.pc).all_regs

    def step(self) -> CoreStep:
        """Execute one instruction, classifying accesses against the L1s.

        Hot-path notes: lookups go through the allocation-free
        ``L1Cache.access_fast`` (hits return ``None``), the miss list is
        only materialised when a miss actually occurs, the HTIF check is
        skipped for instructions that made no memory access, and steps
        with nothing to report return a shared outcome instance — all
        behaviour-preserving specialisations of the original loop.
        """
        if self.halted:
            return _HALTED_STEP

        hart = self.hart
        pc = hart.pc

        # Instruction fetch through the L1I.
        fetch_miss = self.l1i.access_fast(pc, False)
        if fetch_miss is not None:
            self.fetch_stalls += 1
            fetch_line, fetch_writeback = fetch_miss
            misses = [MissRequest(self.core_id, fetch_line,
                                  AccessKind.IFETCH, pc=pc)]
            if fetch_writeback is not None:
                misses.append(MissRequest(self.core_id, fetch_writeback,
                                          AccessKind.WRITEBACK, pc=pc))
            return CoreStep(StepStatus.FETCH_MISS, misses=misses)

        instr = hart.step()
        self.instructions += 1
        profile = self.profile
        if profile is not None:
            profile.retire(pc, instr)

        # Classify this step's data accesses, coalescing per cache line:
        # a repeated (line, kind) pair within one instruction (e.g. a
        # unit-stride vector load) produces a single request.
        accesses = hart.accesses
        if not accesses:
            return CLEAN_STEP

        misses: list[MissRequest] | None = None
        l1d = self.l1d
        access_fast = l1d.access_fast
        line_bytes = l1d.line_bytes
        core_id = self.core_id
        seen: set[tuple[int, bool]] | None = \
            set() if len(accesses) > 1 else None
        for access in accesses:
            is_write = access.is_write
            address = access.address
            first_line = l1d.line_address(address)
            last_line = l1d.line_address(address + access.size - 1)
            line = first_line
            while line <= last_line:
                if seen is not None:
                    key = (line, is_write)
                    if key in seen:
                        line += line_bytes
                        continue
                    seen.add(key)
                result = access_fast(line, is_write)
                if result is not None:
                    kind = (AccessKind.STORE if is_write
                            else AccessKind.LOAD)
                    registers = (instr.dests
                                 if kind is AccessKind.LOAD else ())
                    if misses is None:
                        misses = []
                    misses.append(MissRequest(core_id, line,
                                              kind, registers, pc=pc))
                    if result[1] is not None:
                        misses.append(MissRequest(
                            core_id, result[1],
                            AccessKind.WRITEBACK, pc=pc))
                line += line_bytes

        event = self.machine.check_htif(accesses, hart)
        if event.exited:
            self.halted = True
            return CoreStep(StepStatus.EXECUTED,
                            mnemonic=instr.mnemonic,
                            misses=misses if misses is not None else [],
                            exited=True, exit_code=event.exit_code)

        if misses is None:
            return CLEAN_STEP
        return CoreStep(StepStatus.EXECUTED, mnemonic=instr.mnemonic,
                        misses=misses)


class SpikeSimulator:
    """Free-running functional multicore simulation (no timing model).

    This is the raw ISS: it executes instructions as fast as possible with
    a configurable interleaving batch, and is used standalone for
    functional kernel testing and for the interleaving ablation.
    """

    def __init__(self, program: Program, num_cores: int = 1,
                 vlen_bits: int = 512, interleave: int = 1):
        if interleave < 1:
            raise ValueError(f"interleave must be >= 1, got {interleave}")
        self.machine = BareMetalMachine(program, num_cores,
                                        vlen_bits=vlen_bits)
        self.interleave = interleave
        self.halted = [False] * num_cores
        self.instructions = 0

    @property
    def harts(self) -> list[Hart]:
        return self.machine.harts

    def run(self, max_instructions: int = 100_000_000) -> int:
        """Run until every hart halts; returns instructions executed.

        Raises ``RuntimeError`` if ``max_instructions`` is exhausted first
        (a runaway-program backstop) or if a hart traps.
        """
        remaining = max_instructions
        harts = self.machine.harts
        while not all(self.halted):
            progress = False
            for hart in harts:
                if self.halted[hart.hart_id]:
                    continue
                progress = True
                for _ in range(self.interleave):
                    try:
                        hart.step()
                    except Trap as exc:
                        raise RuntimeError(
                            f"hart {hart.hart_id} trapped: {exc}") from exc
                    self.instructions += 1
                    remaining -= 1
                    if remaining <= 0:
                        raise RuntimeError(
                            f"instruction budget exhausted "
                            f"({max_instructions})")
                    event = self.machine.check_htif(hart.accesses, hart)
                    if event.exited:
                        self.halted[hart.hart_id] = True
                        break
            if not progress:
                break
        return self.instructions
