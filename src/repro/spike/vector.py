"""RVV-subset vector executors.

Registered into :data:`repro.spike.hart.EXEC` on import.  The model follows
RVV 1.0 semantics for the subset the kernels need: vset{i}vl{i}, unit-stride
/ strided / indexed loads and stores, integer and FP arithmetic (including
multiply-accumulate), reductions, masks, merges, slides and gathers.

Elements are stored little-endian inside each vector register's backing
``bytearray``; LMUL > 1 treats consecutive registers as one group.  Masked
elements (``vm = 0`` and mask bit clear) are left undisturbed, which is a
legal mask-undisturbed implementation.
"""

from __future__ import annotations

import math
import struct

from repro.isa.decoder import Instruction
from repro.isa.vtype import VType
from repro.spike.hart import (
    EXEC,
    Hart,
    Trap,
    bits_to_f32,
    bits_to_f64,
    executor,
    f32_to_bits,
    f64_to_bits,
    fp_div,
    fp_max,
    fp_min,
    fp_sgnj,
    fp_sgnjx,
    round_f32,
)
from repro.utils.bitops import MASK64, sign_extend

_SEWS = (8, 16, 32, 64)


class VectorConfigError(Trap):
    """Raised when a vector instruction runs under an unusable vtype."""

    def __init__(self, pc: int, reason: str):
        super().__init__(f"vector configuration error: {reason}", pc)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@executor("vsetvli")
def _vsetvli(hart: Hart, instr: Instruction) -> None:
    vtype = VType.decode(instr.imm)
    _apply_vset(hart, instr, vtype, avl_reg=instr.rs1)


@executor("vsetivli")
def _vsetivli(hart: Hart, instr: Instruction) -> None:
    vtype = VType.decode(instr.imm)
    new_vl = hart.set_vl(instr.shamt, vtype)
    hart.write_reg(instr.rd, new_vl)


@executor("vsetvl")
def _vsetvl(hart: Hart, instr: Instruction) -> None:
    vtype = VType.decode(hart.regs[instr.rs2])
    _apply_vset(hart, instr, vtype, avl_reg=instr.rs1)


def _apply_vset(hart: Hart, instr: Instruction, vtype: VType,
                avl_reg: int) -> None:
    if avl_reg != 0:
        avl = hart.regs[avl_reg]
    elif instr.rd != 0:
        avl = (1 << 62)  # AVL = ~0: request VLMAX
    else:
        avl = hart.vl  # keep vl, change vtype only
    new_vl = hart.set_vl(avl, vtype)
    hart.write_reg(instr.rd, new_vl)


def _require_vconfig(hart: Hart) -> int:
    if hart.vtype.vill:
        raise VectorConfigError(hart.pc, "vtype is vill")
    return hart.vtype.sew


def _active(hart: Hart, instr: Instruction, index: int) -> bool:
    return bool(instr.vm) or bool(hart.read_vmask_bit(index))


# ---------------------------------------------------------------------------
# Loads and stores
# ---------------------------------------------------------------------------

def _unit_stride(hart: Hart, instr: Instruction, eew: int,
                 is_load: bool) -> None:
    base = hart.regs[instr.rs1]
    step = eew // 8
    for i in range(hart.vl):
        if not _active(hart, instr, i):
            continue
        address = (base + i * step) & MASK64
        if is_load:
            hart.write_velem(instr.rd, i, eew,
                             hart.load_int(address, step))
        else:
            hart.store_int(address, hart.read_velem(instr.rd, i, eew), step)


def _strided(hart: Hart, instr: Instruction, eew: int,
             is_load: bool) -> None:
    base = hart.regs[instr.rs1]
    stride = sign_extend(hart.regs[instr.rs2], 64)
    step = eew // 8
    for i in range(hart.vl):
        if not _active(hart, instr, i):
            continue
        address = (base + i * stride) & MASK64
        if is_load:
            hart.write_velem(instr.rd, i, eew,
                             hart.load_int(address, step))
        else:
            hart.store_int(address, hart.read_velem(instr.rd, i, eew), step)


def _indexed(hart: Hart, instr: Instruction, index_eew: int,
             is_load: bool) -> None:
    sew = _require_vconfig(hart)
    base = hart.regs[instr.rs1]
    step = sew // 8
    for i in range(hart.vl):
        if not _active(hart, instr, i):
            continue
        offset = hart.read_velem(instr.rs2, i, index_eew)
        address = (base + offset) & MASK64
        if is_load:
            hart.write_velem(instr.rd, i, sew, hart.load_int(address, step))
        else:
            hart.store_int(address, hart.read_velem(instr.rd, i, sew), step)


def _register_vector_memops() -> None:
    for eew in _SEWS:
        def make_unit(eew=eew, is_load=True):
            def fn(hart, instr):
                _unit_stride(hart, instr, eew, is_load)
            return fn

        def make_strided(eew=eew, is_load=True):
            def fn(hart, instr):
                _strided(hart, instr, eew, is_load)
            return fn

        def make_indexed(eew=eew, is_load=True):
            def fn(hart, instr):
                _indexed(hart, instr, eew, is_load)
            return fn

        EXEC[f"vle{eew}.v"] = make_unit(eew, True)

        def unit_store(hart, instr, eew=eew):
            _unit_stride(hart, instr, eew, False)
        EXEC[f"vse{eew}.v"] = unit_store

        EXEC[f"vlse{eew}.v"] = make_strided(eew, True)

        def strided_store(hart, instr, eew=eew):
            _strided(hart, instr, eew, False)
        EXEC[f"vsse{eew}.v"] = strided_store

        EXEC[f"vluxei{eew}.v"] = make_indexed(eew, True)
        EXEC[f"vloxei{eew}.v"] = make_indexed(eew, True)

        def indexed_store(hart, instr, eew=eew):
            _indexed(hart, instr, eew, False)
        EXEC[f"vsuxei{eew}.v"] = indexed_store
        EXEC[f"vsoxei{eew}.v"] = indexed_store


_register_vector_memops()


# ---------------------------------------------------------------------------
# Integer arithmetic
# ---------------------------------------------------------------------------

def _mask_to(value: int, sew: int) -> int:
    return value & ((1 << sew) - 1)


_V_INT_BINOPS = {
    "vadd": lambda a, b, sew: a + b,
    "vsub": lambda a, b, sew: a - b,
    "vrsub": lambda a, b, sew: b - a,
    "vand": lambda a, b, sew: a & b,
    "vor": lambda a, b, sew: a | b,
    "vxor": lambda a, b, sew: a ^ b,
    "vsll": lambda a, b, sew: a << (b & (sew - 1)),
    "vsrl": lambda a, b, sew: a >> (b & (sew - 1)),
    "vsra": lambda a, b, sew: sign_extend(a, sew) >> (b & (sew - 1)),
    "vmin": lambda a, b, sew: min(sign_extend(a, sew), sign_extend(b, sew)),
    "vminu": lambda a, b, sew: min(a, b),
    "vmax": lambda a, b, sew: max(sign_extend(a, sew), sign_extend(b, sew)),
    "vmaxu": lambda a, b, sew: max(a, b),
    "vmul": lambda a, b, sew: a * b,
    "vmulh": lambda a, b, sew:
        (sign_extend(a, sew) * sign_extend(b, sew)) >> sew,
    "vmulhu": lambda a, b, sew: (a * b) >> sew,
    "vmulhsu": lambda a, b, sew: (sign_extend(a, sew) * b) >> sew,
    "vdivu": lambda a, b, sew: (a // b) if b else (1 << sew) - 1,
    "vremu": lambda a, b, sew: (a % b) if b else a,
}


def _signed_div(a: int, b: int, sew: int) -> int:
    sa, sb = sign_extend(a, sew), sign_extend(b, sew)
    if sb == 0:
        return -1
    if sa == -(1 << (sew - 1)) and sb == -1:
        return sa
    quotient = abs(sa) // abs(sb)
    return -quotient if (sa < 0) != (sb < 0) else quotient


def _signed_rem(a: int, b: int, sew: int) -> int:
    sa, sb = sign_extend(a, sew), sign_extend(b, sew)
    if sb == 0:
        return sa
    return sa - _signed_div(a, b, sew) * sb


_V_INT_BINOPS["vdiv"] = _signed_div
_V_INT_BINOPS["vrem"] = _signed_rem


def _v_operand2(hart: Hart, instr: Instruction, index: int, sew: int,
                shape: str) -> int:
    if shape == "vv":
        return hart.read_velem(instr.rs1, index, sew)
    if shape == "vx":
        return _mask_to(hart.regs[instr.rs1], sew)
    return _mask_to(instr.imm, sew)  # vi


def _register_int_binops() -> None:
    for base, fn in _V_INT_BINOPS.items():
        for shape in ("vv", "vx", "vi"):
            def vexec(hart, instr, fn=fn, shape=shape):
                sew = _require_vconfig(hart)
                for i in range(hart.vl):
                    if not _active(hart, instr, i):
                        continue
                    a = hart.read_velem(instr.rs2, i, sew)
                    b = _v_operand2(hart, instr, i, sew, shape)
                    hart.write_velem(instr.rd, i, sew,
                                     _mask_to(fn(a, b, sew), sew))
            EXEC[f"{base}.{shape}"] = vexec


_register_int_binops()


_V_MACC = {
    # result = fn(vd, vs1/rs1, vs2)
    "vmacc": lambda vd, op1, vs2: vd + op1 * vs2,
    "vnmsac": lambda vd, op1, vs2: vd - op1 * vs2,
    "vmadd": lambda vd, op1, vs2: vd * op1 + vs2,
    "vnmsub": lambda vd, op1, vs2: vs2 - vd * op1,
}


def _register_int_macc() -> None:
    for base, fn in _V_MACC.items():
        for shape in ("vv", "vx"):
            def vexec(hart, instr, fn=fn, shape=shape):
                sew = _require_vconfig(hart)
                for i in range(hart.vl):
                    if not _active(hart, instr, i):
                        continue
                    vd = hart.read_velem(instr.rd, i, sew)
                    op1 = (hart.read_velem(instr.rs1, i, sew) if shape == "vv"
                           else _mask_to(hart.regs[instr.rs1], sew))
                    vs2 = hart.read_velem(instr.rs2, i, sew)
                    hart.write_velem(instr.rd, i, sew,
                                     _mask_to(fn(vd, op1, vs2), sew))
            EXEC[f"{base}.{shape}"] = vexec


_register_int_macc()


_V_INT_COMPARES = {
    "vmseq": lambda a, b, sew: a == b,
    "vmsne": lambda a, b, sew: a != b,
    "vmsltu": lambda a, b, sew: a < b,
    "vmslt": lambda a, b, sew: sign_extend(a, sew) < sign_extend(b, sew),
    "vmsleu": lambda a, b, sew: a <= b,
    "vmsle": lambda a, b, sew: sign_extend(a, sew) <= sign_extend(b, sew),
    "vmsgtu": lambda a, b, sew: a > b,
    "vmsgt": lambda a, b, sew: sign_extend(a, sew) > sign_extend(b, sew),
}


def _register_int_compares() -> None:
    for base, fn in _V_INT_COMPARES.items():
        for shape in ("vv", "vx", "vi"):
            def vexec(hart, instr, fn=fn, shape=shape):
                sew = _require_vconfig(hart)
                for i in range(hart.vl):
                    if not _active(hart, instr, i):
                        continue
                    a = hart.read_velem(instr.rs2, i, sew)
                    b = _v_operand2(hart, instr, i, sew, shape)
                    hart.write_vmask_bit(instr.rd, i,
                                         1 if fn(a, b, sew) else 0)
            EXEC[f"{base}.{shape}"] = vexec


_register_int_compares()


_V_REDUCTIONS = {
    "vredsum": lambda acc, v, sew: acc + v,
    "vredand": lambda acc, v, sew: acc & v,
    "vredor": lambda acc, v, sew: acc | v,
    "vredxor": lambda acc, v, sew: acc ^ v,
    "vredminu": lambda acc, v, sew: min(acc, v),
    "vredmaxu": lambda acc, v, sew: max(acc, v),
    "vredmin": lambda acc, v, sew:
        min(sign_extend(acc, sew), sign_extend(v, sew)),
    "vredmax": lambda acc, v, sew:
        max(sign_extend(acc, sew), sign_extend(v, sew)),
}


def _register_int_reductions() -> None:
    for base, fn in _V_REDUCTIONS.items():
        def vexec(hart, instr, fn=fn):
            sew = _require_vconfig(hart)
            acc = hart.read_velem(instr.rs1, 0, sew)
            for i in range(hart.vl):
                if not _active(hart, instr, i):
                    continue
                acc = _mask_to(fn(acc, hart.read_velem(instr.rs2, i, sew),
                                  sew), sew)
            hart.write_velem(instr.rd, 0, sew, acc)
        EXEC[f"{base}.vs"] = vexec


_register_int_reductions()


# ---------------------------------------------------------------------------
# Moves, merges, slides, gathers, vid/viota
# ---------------------------------------------------------------------------

@executor("vmv.v.v")
def _vmv_v_v(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    for i in range(hart.vl):
        hart.write_velem(instr.rd, i, sew,
                         hart.read_velem(instr.rs1, i, sew))


@executor("vmv.v.x")
def _vmv_v_x(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    value = _mask_to(hart.regs[instr.rs1], sew)
    for i in range(hart.vl):
        hart.write_velem(instr.rd, i, sew, value)


@executor("vmv.v.i")
def _vmv_v_i(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    value = _mask_to(instr.imm, sew)
    for i in range(hart.vl):
        hart.write_velem(instr.rd, i, sew, value)


@executor("vmv.x.s")
def _vmv_x_s(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    hart.write_reg(instr.rd,
                   sign_extend(hart.read_velem(instr.rs2, 0, sew), sew)
                   & MASK64)


@executor("vmv.s.x")
def _vmv_s_x(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    if hart.vl > 0:
        hart.write_velem(instr.rd, 0, sew, _mask_to(hart.regs[instr.rs1],
                                                    sew))


@executor("vid.v")
def _vid(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    for i in range(hart.vl):
        if _active(hart, instr, i):
            hart.write_velem(instr.rd, i, sew, _mask_to(i, sew))


@executor("viota.m")
def _viota(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    count = 0
    for i in range(hart.vl):
        if not _active(hart, instr, i):
            continue
        hart.write_velem(instr.rd, i, sew, _mask_to(count, sew))
        if (hart.vregs[instr.rs2][i >> 3] >> (i & 7)) & 1:
            count += 1


def _merge_operand(hart: Hart, instr: Instruction, index: int, sew: int,
                   shape: str) -> int:
    if shape == "vvm":
        return hart.read_velem(instr.rs1, index, sew)
    if shape == "vxm":
        return _mask_to(hart.regs[instr.rs1], sew)
    return _mask_to(instr.imm, sew)


def _register_merges() -> None:
    for shape in ("vvm", "vxm", "vim"):
        def vexec(hart, instr, shape=shape):
            sew = _require_vconfig(hart)
            for i in range(hart.vl):
                if hart.read_vmask_bit(i):
                    value = _merge_operand(hart, instr, i, sew, shape)
                else:
                    value = hart.read_velem(instr.rs2, i, sew)
                hart.write_velem(instr.rd, i, sew, value)
        EXEC[f"vmerge.{shape}"] = vexec


_register_merges()


@executor("vslideup.vx", "vslideup.vi")
def _vslideup(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    offset = (hart.regs[instr.rs1] if instr.mnemonic.endswith(".vx")
              else instr.imm)
    for i in range(hart.vl - 1, -1, -1):
        if i < offset or not _active(hart, instr, i):
            continue
        hart.write_velem(instr.rd, i, sew,
                         hart.read_velem(instr.rs2, i - offset, sew))


@executor("vslidedown.vx", "vslidedown.vi")
def _vslidedown(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    offset = (hart.regs[instr.rs1] if instr.mnemonic.endswith(".vx")
              else instr.imm)
    vlmax = hart.vlmax()
    for i in range(hart.vl):
        if not _active(hart, instr, i):
            continue
        source = i + offset
        value = (hart.read_velem(instr.rs2, source, sew)
                 if source < vlmax else 0)
        hart.write_velem(instr.rd, i, sew, value)


@executor("vrgather.vv", "vrgather.vx", "vrgather.vi")
def _vrgather(hart: Hart, instr: Instruction) -> None:
    sew = _require_vconfig(hart)
    vlmax = hart.vlmax()
    results = []
    for i in range(hart.vl):
        if not _active(hart, instr, i):
            results.append(None)
            continue
        if instr.mnemonic.endswith(".vv"):
            index = hart.read_velem(instr.rs1, i, sew)
        elif instr.mnemonic.endswith(".vx"):
            index = hart.regs[instr.rs1]
        else:
            index = instr.imm
        results.append(hart.read_velem(instr.rs2, index, sew)
                       if index < vlmax else 0)
    for i, value in enumerate(results):
        if value is not None:
            hart.write_velem(instr.rd, i, sew, value)


# ---------------------------------------------------------------------------
# Floating-point
# ---------------------------------------------------------------------------

def _read_vfp(hart: Hart, reg: int, index: int, sew: int) -> float:
    raw = hart.read_velem(reg, index, sew)
    return bits_to_f64(raw) if sew == 64 else bits_to_f32(raw)


def _write_vfp(hart: Hart, reg: int, index: int, sew: int,
               value: float) -> None:
    if sew == 64:
        hart.write_velem(reg, index, sew, f64_to_bits(value))
    else:
        hart.write_velem(reg, index, sew, f32_to_bits(round_f32(value)))


def _fp_sew(hart: Hart) -> int:
    sew = _require_vconfig(hart)
    if sew not in (32, 64):
        raise VectorConfigError(hart.pc, f"FP vector op at SEW={sew}")
    return sew


_V_FP_BINOPS = {
    "vfadd": lambda a, b: a + b,
    "vfsub": lambda a, b: a - b,
    "vfmul": lambda a, b: a * b,
    "vfdiv": fp_div,
    "vfmin": fp_min,
    "vfmax": fp_max,
    "vfsgnj": fp_sgnj,
    "vfsgnjn": lambda a, b: fp_sgnj(a, -b),
    "vfsgnjx": fp_sgnjx,
}


def _register_fp_binops() -> None:
    for base, fn in _V_FP_BINOPS.items():
        for shape in ("vv", "vf"):
            def vexec(hart, instr, fn=fn, shape=shape):
                sew = _fp_sew(hart)
                for i in range(hart.vl):
                    if not _active(hart, instr, i):
                        continue
                    a = _read_vfp(hart, instr.rs2, i, sew)
                    b = (_read_vfp(hart, instr.rs1, i, sew) if shape == "vv"
                         else hart.fregs[instr.rs1])
                    _write_vfp(hart, instr.rd, i, sew, fn(a, b))
            EXEC[f"{base}.{shape}"] = vexec


_register_fp_binops()


_V_FP_MACC = {
    # result = fn(vd, op1, vs2) matching RVV operand roles
    "vfmacc": lambda vd, op1, vs2: op1 * vs2 + vd,
    "vfnmacc": lambda vd, op1, vs2: -(op1 * vs2) - vd,
    "vfmsac": lambda vd, op1, vs2: op1 * vs2 - vd,
    "vfnmsac": lambda vd, op1, vs2: -(op1 * vs2) + vd,
    "vfmadd": lambda vd, op1, vs2: vd * op1 + vs2,
    "vfnmadd": lambda vd, op1, vs2: -(vd * op1) - vs2,
    "vfmsub": lambda vd, op1, vs2: vd * op1 - vs2,
    "vfnmsub": lambda vd, op1, vs2: -(vd * op1) + vs2,
}


def _register_fp_macc() -> None:
    for base, fn in _V_FP_MACC.items():
        for shape in ("vv", "vf"):
            def vexec(hart, instr, fn=fn, shape=shape):
                sew = _fp_sew(hart)
                for i in range(hart.vl):
                    if not _active(hart, instr, i):
                        continue
                    vd = _read_vfp(hart, instr.rd, i, sew)
                    op1 = (_read_vfp(hart, instr.rs1, i, sew)
                           if shape == "vv" else hart.fregs[instr.rs1])
                    vs2 = _read_vfp(hart, instr.rs2, i, sew)
                    _write_vfp(hart, instr.rd, i, sew, fn(vd, op1, vs2))
            EXEC[f"{base}.{shape}"] = vexec


_register_fp_macc()


_V_FP_COMPARES = {
    "vmfeq": lambda a, b: a == b,
    "vmfne": lambda a, b: a != b,
    "vmflt": lambda a, b: a < b,
    "vmfle": lambda a, b: a <= b,
}


def _register_fp_compares() -> None:
    for base, fn in _V_FP_COMPARES.items():
        for shape in ("vv", "vf"):
            def vexec(hart, instr, fn=fn, shape=shape):
                sew = _fp_sew(hart)
                for i in range(hart.vl):
                    if not _active(hart, instr, i):
                        continue
                    a = _read_vfp(hart, instr.rs2, i, sew)
                    b = (_read_vfp(hart, instr.rs1, i, sew) if shape == "vv"
                         else hart.fregs[instr.rs1])
                    if math.isnan(a) or math.isnan(b):
                        result = 1 if base == "vmfne" else 0
                    else:
                        result = 1 if fn(a, b) else 0
                    hart.write_vmask_bit(instr.rd, i, result)
            EXEC[f"{base}.{shape}"] = vexec


_register_fp_compares()


_V_FP_REDUCTIONS = {
    "vfredosum": lambda acc, v: acc + v,
    "vfredusum": lambda acc, v: acc + v,
    "vfredmin": fp_min,
    "vfredmax": fp_max,
}


def _register_fp_reductions() -> None:
    for base, fn in _V_FP_REDUCTIONS.items():
        def vexec(hart, instr, fn=fn):
            sew = _fp_sew(hart)
            acc = _read_vfp(hart, instr.rs1, 0, sew)
            for i in range(hart.vl):
                if not _active(hart, instr, i):
                    continue
                acc = fn(acc, _read_vfp(hart, instr.rs2, i, sew))
            _write_vfp(hart, instr.rd, 0, sew, acc)
        EXEC[f"{base}.vs"] = vexec


_register_fp_reductions()


@executor("vfmv.v.f")
def _vfmv_v_f(hart: Hart, instr: Instruction) -> None:
    sew = _fp_sew(hart)
    for i in range(hart.vl):
        _write_vfp(hart, instr.rd, i, sew, hart.fregs[instr.rs1])


@executor("vfmv.f.s")
def _vfmv_f_s(hart: Hart, instr: Instruction) -> None:
    sew = _fp_sew(hart)
    hart.fregs[instr.rd] = _read_vfp(hart, instr.rs2, 0, sew)


@executor("vfmv.s.f")
def _vfmv_s_f(hart: Hart, instr: Instruction) -> None:
    sew = _fp_sew(hart)
    if hart.vl > 0:
        _write_vfp(hart, instr.rd, 0, sew, hart.fregs[instr.rs1])


@executor("vfmerge.vfm")
def _vfmerge(hart: Hart, instr: Instruction) -> None:
    sew = _fp_sew(hart)
    for i in range(hart.vl):
        if hart.read_vmask_bit(i):
            _write_vfp(hart, instr.rd, i, sew, hart.fregs[instr.rs1])
        else:
            hart.write_velem(instr.rd, i, sew,
                             hart.read_velem(instr.rs2, i, sew))
