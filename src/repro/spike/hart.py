"""The functional RISC-V hart (core) model.

A :class:`Hart` executes RV64IMAFD + RVV-subset instructions against a
shared :class:`~repro.soc.memory.SparseMemory`.  Execution is purely
functional; every data memory access performed by a step is recorded in
``hart.accesses`` so the caching/timing layers above can classify it.

Executor functions are registered in the module-level ``EXEC`` dispatch
table via the :func:`executor` decorator; :mod:`repro.spike.vector`
registers the vector ISA on import.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from repro.isa import csr as csrdef
from repro.isa.decoder import IllegalInstruction, Instruction, decode
from repro.isa.vtype import VType
from repro.soc.memory import SparseMemory
from repro.utils.bitops import MASK32, MASK64, sign_extend, to_signed

DEFAULT_VLEN_BITS = 512


class Trap(Exception):
    """Base class for architectural traps."""

    def __init__(self, cause: str, pc: int):
        self.cause = cause
        self.pc = pc
        super().__init__(f"{cause} at pc={pc:#x}")


class EnvironmentCall(Trap):
    """Raised by ``ecall`` (bare-metal mode has no syscall handler)."""

    def __init__(self, pc: int):
        super().__init__("environment call", pc)


class Breakpoint(Trap):
    """Raised by ``ebreak``."""

    def __init__(self, pc: int):
        super().__init__("breakpoint", pc)


class IllegalInstructionTrap(Trap):
    """Raised when execution reaches an undecodable or unsupported word."""

    def __init__(self, pc: int, word: int):
        self.word = word
        super().__init__(f"illegal instruction {word:#010x}", pc)


@dataclass(frozen=True)
class MemAccess:
    """One data memory access performed by an instruction."""

    address: int
    size: int
    is_write: bool


class CodeCacheRegistry:
    """Machine-wide invalidation fan-out for derived-from-code caches.

    Decoded instructions (``Hart._decode_cache``) and translated block
    functions (:mod:`repro.spike.translate`) are both derived from code
    bytes in shared memory, so a store into a page *any* hart has
    decoded from must drop the derived state everywhere — not only on
    ``fence.i``.  ``pages`` holds every page number known to contain
    decoded code; the hart store helpers consult it with a single set
    membership test, so programs that never write near their code pay
    one ``in`` check per store and nothing else.
    """

    def __init__(self):
        self.pages: set[int] = set()
        self.harts: list[Hart] = []
        # Translation caches; each exposes invalidate_range()/drop_all().
        self.caches: list = []

    def register_hart(self, hart: "Hart") -> None:
        self.harts.append(hart)

    def register_cache(self, cache) -> None:
        self.caches.append(cache)

    def note_store(self, address: int, size: int) -> None:
        """A store touched a known code page: drop overlapping entries.

        Any 4-byte instruction slot overlapping ``[address, address +
        size)`` starts at a pc in ``[address - 3, address + size - 1]``,
        so that range bounds both the decode-cache sweep and the
        translated-block overlap test.
        """
        lo = address - 3
        hi = address + size - 1
        for hart in self.harts:
            cache = hart._decode_cache
            if cache:
                for pc in range(lo, hi + 1):
                    cache.pop(pc, None)
        for cache in self.caches:
            cache.invalidate_range(lo, hi)


# The executor dispatch table: mnemonic -> callable(hart, instr).
EXEC: dict = {}


def executor(*mnemonics: str):
    """Register a function as the executor for ``mnemonics``."""
    def register(fn):
        for mnemonic in mnemonics:
            if mnemonic in EXEC:
                raise RuntimeError(f"duplicate executor for {mnemonic}")
            EXEC[mnemonic] = fn
        return fn
    return register


def f64_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_f64(raw: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", raw & MASK64))[0]


def f32_to_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_f32(raw: int) -> float:
    return struct.unpack("<f", struct.pack("<I", raw & MASK32))[0]


def round_f32(value: float) -> float:
    """Round a double to the nearest representable float32."""
    return struct.unpack("<f", struct.pack("<f", value))[0]


class Hart:
    """Architectural state and functional execution for one core."""

    def __init__(self, hart_id: int, memory: SparseMemory,
                 vlen_bits: int = DEFAULT_VLEN_BITS, reset_pc: int = 0,
                 code_registry: CodeCacheRegistry | None = None):
        if vlen_bits % 64 or vlen_bits < 64:
            raise ValueError(f"VLEN must be a multiple of 64: {vlen_bits}")
        self.hart_id = hart_id
        self.memory = memory
        self.vlen_bits = vlen_bits
        self.vlenb = vlen_bits // 8

        self.pc = reset_pc
        self.regs = [0] * 32
        self.fregs = [0.0] * 32
        self.vregs = [bytearray(self.vlenb) for _ in range(32)]
        self.vl = 0
        self.vtype = VType(vill=True)
        self.csrs: dict[int, int] = {}
        self.instret = 0
        self.reservation: int | None = None
        self.frm = 0

        # Populated by step(); consumed by the caching layer.
        self.accesses: list[MemAccess] = []
        # Cycle source injected by the orchestrator so rdcycle works;
        # None falls back to the retired-instruction count.  Kept a
        # plain (picklable) attribute so a whole hart — decode cache
        # aside — can be checkpointed with the rest of the simulation.
        self.cycle_source = None

        self._decode_cache: dict[int, tuple[Instruction, object]] = {}
        self._pc_next = 0
        # Code-cache invalidation plumbing: the registry is shared by
        # every hart of one machine (stores by any hart must invalidate
        # everyone's decoded state); ``_code_pages`` aliases its page
        # set for the one-test store guard, and ``_code_caches`` lists
        # this hart's translation caches for drop_code_caches().
        self.code_registry = (code_registry if code_registry is not None
                              else CodeCacheRegistry())
        self.code_registry.register_hart(self)
        self._code_pages = self.code_registry.pages
        self._code_caches: list = []

    # -- register helpers ---------------------------------------------------

    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & MASK64

    # -- memory helpers (record every data access) --------------------------

    def load_int(self, address: int, size: int, signed: bool = False) -> int:
        self.accesses.append(MemAccess(address, size, False))
        value = self.memory.load_int(address, size)
        if signed:
            return sign_extend(value, 8 * size) & MASK64
        return value

    def store_int(self, address: int, value: int, size: int) -> None:
        self.accesses.append(MemAccess(address, size, True))
        self.memory.store_int(address, value, size)
        if (address >> 12) in self._code_pages \
                or ((address + size - 1) >> 12) in self._code_pages:
            self.code_registry.note_store(address, size)

    def load_f64(self, address: int) -> float:
        self.accesses.append(MemAccess(address, 8, False))
        return bits_to_f64(self.memory.load_int(address, 8))

    def store_f64(self, address: int, value: float) -> None:
        self.accesses.append(MemAccess(address, 8, True))
        self.memory.store_int(address, f64_to_bits(value), 8)
        if (address >> 12) in self._code_pages \
                or ((address + 7) >> 12) in self._code_pages:
            self.code_registry.note_store(address, 8)

    # -- CSR access ---------------------------------------------------------

    def read_csr(self, address: int) -> int:
        if address == csrdef.MHARTID:
            return self.hart_id
        if address in (csrdef.CYCLE, csrdef.MCYCLE, csrdef.TIME):
            source = self.cycle_source
            return (source() if source is not None else self.instret) \
                & MASK64
        if address in (csrdef.INSTRET, csrdef.MINSTRET):
            return self.instret & MASK64
        if address == csrdef.VL:
            return self.vl
        if address == csrdef.VTYPE:
            return self.vtype.encode()
        if address == csrdef.VLENB:
            return self.vlenb
        if address == csrdef.FRM:
            return self.frm
        return self.csrs.get(address, 0)

    def write_csr(self, address: int, value: int) -> None:
        if address in csrdef.READ_ONLY_CSRS:
            raise IllegalInstructionTrap(self.pc, 0)
        if address == csrdef.FRM:
            self.frm = value & 0b111
            return
        self.csrs[address] = value & MASK64

    # -- vector state -------------------------------------------------------

    def vlmax(self) -> int:
        return self.vtype.vlmax(self.vlen_bits)

    def set_vl(self, avl: int, vtype: VType) -> int:
        """Apply a vset{i}vl{i}; returns the new vl."""
        self.vtype = vtype
        if vtype.vill:
            self.vl = 0
            return 0
        self.vl = min(avl, vtype.vlmax(self.vlen_bits))
        return self.vl

    def read_velem(self, base_reg: int, index: int, sew: int) -> int:
        """Element ``index`` of the register group starting at ``base_reg``."""
        elem_bytes = sew // 8
        per_reg = self.vlen_bits // sew
        reg = base_reg + index // per_reg
        offset = (index % per_reg) * elem_bytes
        return int.from_bytes(self.vregs[reg][offset:offset + elem_bytes],
                              "little")

    def write_velem(self, base_reg: int, index: int, sew: int,
                    value: int) -> None:
        elem_bytes = sew // 8
        per_reg = self.vlen_bits // sew
        reg = base_reg + index // per_reg
        offset = (index % per_reg) * elem_bytes
        self.vregs[reg][offset:offset + elem_bytes] = \
            (value & ((1 << sew) - 1)).to_bytes(elem_bytes, "little")

    def read_vmask_bit(self, index: int) -> int:
        """Bit ``index`` of the mask register v0."""
        return (self.vregs[0][index >> 3] >> (index & 7)) & 1

    def write_vmask_bit(self, base_reg: int, index: int, value: int) -> None:
        byte_index = index >> 3
        bit = 1 << (index & 7)
        if value:
            self.vregs[base_reg][byte_index] |= bit
        else:
            self.vregs[base_reg][byte_index] &= ~bit & 0xFF

    # -- execution ----------------------------------------------------------

    def decode_at(self, pc: int) -> Instruction:
        """Decode (and cache) the instruction at ``pc`` without executing."""
        return self._decode_entry(pc)[0]

    def _decode_entry(self, pc: int) -> tuple[Instruction, object]:
        entry = self._decode_cache.get(pc)
        if entry is None:
            word = self.memory.load_int(pc, 4)
            try:
                instr = decode(word)
            except IllegalInstruction as exc:
                raise IllegalInstructionTrap(pc, word) from exc
            fn = EXEC.get(instr.mnemonic)
            if fn is None:
                raise IllegalInstructionTrap(pc, word)
            entry = (instr, fn)
            self._decode_cache[pc] = entry
            pages = self._code_pages
            pages.add(pc >> 12)
            if (pc + 3) >> 12 != pc >> 12:
                pages.add((pc + 3) >> 12)
        return entry

    def drop_code_caches(self) -> None:
        """Drop every cache derived from code bytes for this hart.

        The single invalidation entry point: ``fence.i`` and checkpoint
        serialisation both route through here, clearing the decode cache
        and any registered translation caches so no stale executor — and
        no unpicklable compiled closure — can survive.
        """
        self._decode_cache.clear()
        for cache in self._code_caches:
            cache.drop_all()

    def flush_decode_cache(self) -> None:
        """Historical spelling of :meth:`drop_code_caches`."""
        self.drop_code_caches()

    def step(self) -> Instruction:
        """Execute one instruction; returns the decoded instruction.

        ``hart.accesses`` afterwards holds the data accesses performed.
        Raises a :class:`Trap` subclass for ecall/ebreak/illegal.
        """
        pc = self.pc
        instr, fn = self._decode_entry(pc)
        self.accesses.clear()
        self._pc_next = pc + 4
        fn(self, instr)
        self.pc = self._pc_next
        self.instret += 1
        return instr


# ---------------------------------------------------------------------------
# Scalar integer executors
# ---------------------------------------------------------------------------

@executor("lui")
def _lui(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, instr.imm)


@executor("auipc")
def _auipc(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.pc + instr.imm)


@executor("jal")
def _jal(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.pc + 4)
    hart._pc_next = (hart.pc + instr.imm) & MASK64


@executor("jalr")
def _jalr(hart: Hart, instr: Instruction) -> None:
    target = (hart.regs[instr.rs1] + instr.imm) & ~1 & MASK64
    hart.write_reg(instr.rd, hart.pc + 4)
    hart._pc_next = target


_BRANCH_TESTS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_signed(a) < to_signed(b),
    "bge": lambda a, b: to_signed(a) >= to_signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


@executor(*_BRANCH_TESTS)
def _branch(hart: Hart, instr: Instruction) -> None:
    if _BRANCH_TESTS[instr.mnemonic](hart.regs[instr.rs1],
                                     hart.regs[instr.rs2]):
        hart._pc_next = (hart.pc + instr.imm) & MASK64


_LOAD_SIZES = {"lb": (1, True), "lh": (2, True), "lw": (4, True),
               "ld": (8, True), "lbu": (1, False), "lhu": (2, False),
               "lwu": (4, False)}


@executor(*_LOAD_SIZES)
def _load(hart: Hart, instr: Instruction) -> None:
    size, signed = _LOAD_SIZES[instr.mnemonic]
    address = (hart.regs[instr.rs1] + instr.imm) & MASK64
    hart.write_reg(instr.rd, hart.load_int(address, size, signed))


_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


@executor(*_STORE_SIZES)
def _store(hart: Hart, instr: Instruction) -> None:
    size = _STORE_SIZES[instr.mnemonic]
    address = (hart.regs[instr.rs1] + instr.imm) & MASK64
    hart.store_int(address, hart.regs[instr.rs2], size)


@executor("addi")
def _addi(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.regs[instr.rs1] + instr.imm)


@executor("slti")
def _slti(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd,
                   1 if to_signed(hart.regs[instr.rs1]) < instr.imm else 0)


@executor("sltiu")
def _sltiu(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd,
                   1 if hart.regs[instr.rs1] < (instr.imm & MASK64) else 0)


@executor("xori")
def _xori(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.regs[instr.rs1] ^ (instr.imm & MASK64))


@executor("ori")
def _ori(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.regs[instr.rs1] | (instr.imm & MASK64))


@executor("andi")
def _andi(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.regs[instr.rs1] & (instr.imm & MASK64))


@executor("slli")
def _slli(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.regs[instr.rs1] << instr.shamt)


@executor("srli")
def _srli(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, hart.regs[instr.rs1] >> instr.shamt)


@executor("srai")
def _srai(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, to_signed(hart.regs[instr.rs1]) >> instr.shamt)


@executor("addiw")
def _addiw(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd,
                   sign_extend(hart.regs[instr.rs1] + instr.imm, 32))


@executor("slliw")
def _slliw(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd,
                   sign_extend(hart.regs[instr.rs1] << instr.shamt, 32))


@executor("srliw")
def _srliw(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(
        instr.rd,
        sign_extend((hart.regs[instr.rs1] & MASK32) >> instr.shamt, 32))


@executor("sraiw")
def _sraiw(hart: Hart, instr: Instruction) -> None:
    value = sign_extend(hart.regs[instr.rs1], 32) >> instr.shamt
    hart.write_reg(instr.rd, sign_extend(value, 32))


def _div(a: int, b: int) -> int:
    if b == 0:
        return -1
    if a == -(1 << 63) and b == -1:
        return a
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    if a == -(1 << 63) and b == -1:
        return 0
    return a - _div(a, b) * b


_OP_FUNCS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "sll": lambda a, b: a << (b & 63),
    "slt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 63),
    "sra": lambda a, b: to_signed(a) >> (b & 63),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: a * b,
    "mulh": lambda a, b: (to_signed(a) * to_signed(b)) >> 64,
    "mulhsu": lambda a, b: (to_signed(a) * b) >> 64,
    "mulhu": lambda a, b: (a * b) >> 64,
    "div": lambda a, b: _div(to_signed(a), to_signed(b)),
    "divu": lambda a, b: (a // b) if b else MASK64,
    "rem": lambda a, b: _rem(to_signed(a), to_signed(b)),
    "remu": lambda a, b: (a % b) if b else a,
}


@executor(*_OP_FUNCS)
def _op(hart: Hart, instr: Instruction) -> None:
    result = _OP_FUNCS[instr.mnemonic](hart.regs[instr.rs1],
                                       hart.regs[instr.rs2])
    hart.write_reg(instr.rd, result)


_OP32_FUNCS = {
    "addw": lambda a, b: a + b,
    "subw": lambda a, b: a - b,
    "sllw": lambda a, b: a << (b & 31),
    "srlw": lambda a, b: (a & MASK32) >> (b & 31),
    "sraw": lambda a, b: sign_extend(a, 32) >> (b & 31),
    "mulw": lambda a, b: a * b,
    "divw": lambda a, b: _div(sign_extend(a, 32), sign_extend(b, 32)),
    "divuw": lambda a, b: ((a & MASK32) // (b & MASK32)) if (b & MASK32)
    else MASK64,
    "remw": lambda a, b: _rem(sign_extend(a, 32), sign_extend(b, 32)),
    "remuw": lambda a, b: ((a & MASK32) % (b & MASK32)) if (b & MASK32)
    else (a & MASK32),
}


@executor(*_OP32_FUNCS)
def _op32(hart: Hart, instr: Instruction) -> None:
    result = _OP32_FUNCS[instr.mnemonic](hart.regs[instr.rs1],
                                         hart.regs[instr.rs2])
    hart.write_reg(instr.rd, sign_extend(result, 32))


# ---------------------------------------------------------------------------
# System executors
# ---------------------------------------------------------------------------

@executor("ecall")
def _ecall(hart: Hart, instr: Instruction) -> None:
    raise EnvironmentCall(hart.pc)


@executor("ebreak")
def _ebreak(hart: Hart, instr: Instruction) -> None:
    raise Breakpoint(hart.pc)


@executor("fence")
def _fence(hart: Hart, instr: Instruction) -> None:
    return None


@executor("fence.i")
def _fence_i(hart: Hart, instr: Instruction) -> None:
    hart.drop_code_caches()


@executor("wfi")
def _wfi(hart: Hart, instr: Instruction) -> None:
    return None


@executor("mret")
def _mret(hart: Hart, instr: Instruction) -> None:
    hart._pc_next = hart.read_csr(csrdef.MEPC)


@executor("csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci")
def _csr(hart: Hart, instr: Instruction) -> None:
    mnemonic = instr.mnemonic
    old = hart.read_csr(instr.csr)
    operand = instr.imm if mnemonic.endswith("i") else hart.regs[instr.rs1]
    if mnemonic.startswith("csrrw"):
        hart.write_csr(instr.csr, operand)
    elif mnemonic.startswith("csrrs"):
        if operand:
            hart.write_csr(instr.csr, old | operand)
    else:  # csrrc
        if operand:
            hart.write_csr(instr.csr, old & ~operand)
    hart.write_reg(instr.rd, old)


# ---------------------------------------------------------------------------
# Atomics
# ---------------------------------------------------------------------------

def _amo_size(mnemonic: str) -> int:
    return 4 if mnemonic.endswith(".w") else 8


@executor("lr.w", "lr.d")
def _lr(hart: Hart, instr: Instruction) -> None:
    size = _amo_size(instr.mnemonic)
    address = hart.regs[instr.rs1]
    hart.reservation = address
    hart.write_reg(instr.rd, hart.load_int(address, size, signed=True))


@executor("sc.w", "sc.d")
def _sc(hart: Hart, instr: Instruction) -> None:
    size = _amo_size(instr.mnemonic)
    address = hart.regs[instr.rs1]
    if hart.reservation == address:
        hart.store_int(address, hart.regs[instr.rs2], size)
        hart.write_reg(instr.rd, 0)
    else:
        hart.write_reg(instr.rd, 1)
    hart.reservation = None


_AMO_FUNCS = {
    "amoswap": lambda old, val: val,
    "amoadd": lambda old, val: old + val,
    "amoxor": lambda old, val: old ^ val,
    "amoand": lambda old, val: old & val,
    "amoor": lambda old, val: old | val,
    "amomin": lambda old, val: min(old, val, key=lambda v: v),
    "amomax": lambda old, val: max(old, val, key=lambda v: v),
    "amominu": min,
    "amomaxu": max,
}


@executor(*[f"{base}.{sz}" for base in _AMO_FUNCS for sz in ("w", "d")])
def _amo(hart: Hart, instr: Instruction) -> None:
    base, _, _size_name = instr.mnemonic.rpartition(".")
    size = _amo_size(instr.mnemonic)
    width = 8 * size
    address = hart.regs[instr.rs1]
    old_raw = hart.load_int(address, size)
    value_raw = hart.regs[instr.rs2] & ((1 << width) - 1)
    if base in ("amomin", "amomax"):
        old_cmp, value_cmp = sign_extend(old_raw, width), \
            sign_extend(value_raw, width)
        result = min(old_cmp, value_cmp) if base == "amomin" \
            else max(old_cmp, value_cmp)
    else:
        result = _AMO_FUNCS[base](old_raw, value_raw)
    hart.store_int(address, result, size)
    hart.write_reg(instr.rd, sign_extend(old_raw, width))


# ---------------------------------------------------------------------------
# Scalar FP executors (double-precision plus the float32 subset)
# ---------------------------------------------------------------------------

@executor("fld")
def _fld(hart: Hart, instr: Instruction) -> None:
    address = (hart.regs[instr.rs1] + instr.imm) & MASK64
    hart.fregs[instr.rd] = hart.load_f64(address)


@executor("fsd")
def _fsd(hart: Hart, instr: Instruction) -> None:
    address = (hart.regs[instr.rs1] + instr.imm) & MASK64
    hart.store_f64(address, hart.fregs[instr.rs2])


@executor("flw")
def _flw(hart: Hart, instr: Instruction) -> None:
    address = (hart.regs[instr.rs1] + instr.imm) & MASK64
    raw = hart.load_int(address, 4)
    hart.fregs[instr.rd] = bits_to_f32(raw)


@executor("fsw")
def _fsw(hart: Hart, instr: Instruction) -> None:
    address = (hart.regs[instr.rs1] + instr.imm) & MASK64
    hart.store_int(address, f32_to_bits(hart.fregs[instr.rs2]), 4)


def fp_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        sign = -1.0 if (a < 0) != (math.copysign(1.0, b) < 0) else 1.0
        return sign * math.inf
    return a / b


def fp_min(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == 0.0 and b == 0.0:  # -0.0 is the minimum
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def fp_max(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == 0.0 and b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def fp_sgnj(a: float, b: float) -> float:
    """Copy b's sign onto a's magnitude."""
    if math.isnan(a):
        return math.nan
    return math.copysign(abs(a), b)


def fp_sgnjx(a: float, b: float) -> float:
    """Result sign is the XOR of both operand signs, on a's magnitude."""
    if math.isnan(a):
        return math.nan
    negative = (math.copysign(1.0, a) < 0) != (math.copysign(1.0, b) < 0)
    return math.copysign(abs(a), -1.0 if negative else 1.0)


_FP_BIN_D = {
    "fadd.d": lambda a, b: a + b,
    "fsub.d": lambda a, b: a - b,
    "fmul.d": lambda a, b: a * b,
    "fdiv.d": fp_div,
    "fmin.d": fp_min,
    "fmax.d": fp_max,
    "fsgnj.d": fp_sgnj,
    "fsgnjn.d": lambda a, b: fp_sgnj(a, -b),
    "fsgnjx.d": fp_sgnjx,
}


@executor(*_FP_BIN_D)
def _fp_bin_d(hart: Hart, instr: Instruction) -> None:
    hart.fregs[instr.rd] = _FP_BIN_D[instr.mnemonic](
        hart.fregs[instr.rs1], hart.fregs[instr.rs2])


_FP_BIN_S = {
    "fadd.s": lambda a, b: a + b,
    "fsub.s": lambda a, b: a - b,
    "fmul.s": lambda a, b: a * b,
    "fdiv.s": fp_div,
    "fmin.s": fp_min,
    "fmax.s": fp_max,
    "fsgnj.s": _FP_BIN_D["fsgnj.d"],
    "fsgnjn.s": _FP_BIN_D["fsgnjn.d"],
    "fsgnjx.s": _FP_BIN_D["fsgnjx.d"],
}


@executor(*_FP_BIN_S)
def _fp_bin_s(hart: Hart, instr: Instruction) -> None:
    result = _FP_BIN_S[instr.mnemonic](hart.fregs[instr.rs1],
                                       hart.fregs[instr.rs2])
    hart.fregs[instr.rd] = round_f32(result)


@executor("fsqrt.d")
def _fsqrt_d(hart: Hart, instr: Instruction) -> None:
    value = hart.fregs[instr.rs1]
    hart.fregs[instr.rd] = math.sqrt(value) if value >= 0 else math.nan


@executor("fsqrt.s")
def _fsqrt_s(hart: Hart, instr: Instruction) -> None:
    value = hart.fregs[instr.rs1]
    hart.fregs[instr.rd] = round_f32(
        math.sqrt(value) if value >= 0 else math.nan)


_FMA_FUNCS = {
    "fmadd": lambda a, b, c: a * b + c,
    "fmsub": lambda a, b, c: a * b - c,
    "fnmadd": lambda a, b, c: -(a * b) - c,
    "fnmsub": lambda a, b, c: -(a * b) + c,
}


@executor(*[f"{base}.{sz}" for base in _FMA_FUNCS for sz in ("s", "d")])
def _fma(hart: Hart, instr: Instruction) -> None:
    base, _, size = instr.mnemonic.rpartition(".")
    result = _FMA_FUNCS[base](hart.fregs[instr.rs1], hart.fregs[instr.rs2],
                              hart.fregs[instr.rs3])
    if size == "s":
        result = round_f32(result)
    hart.fregs[instr.rd] = result


_FP_CMP_FUNCS = {
    "feq": lambda a, b: a == b,
    "flt": lambda a, b: a < b,
    "fle": lambda a, b: a <= b,
}


@executor(*[f"{base}.{sz}" for base in _FP_CMP_FUNCS for sz in ("s", "d")])
def _fp_cmp(hart: Hart, instr: Instruction) -> None:
    base = instr.mnemonic[:3]
    a, b = hart.fregs[instr.rs1], hart.fregs[instr.rs2]
    if math.isnan(a) or math.isnan(b):
        hart.write_reg(instr.rd, 0)
    else:
        hart.write_reg(instr.rd, 1 if _FP_CMP_FUNCS[base](a, b) else 0)


def _fcvt_to_int(value: float, width: int, signed: bool) -> int:
    if math.isnan(value):
        return (1 << (width - 1)) - 1 if signed else (1 << width) - 1
    truncated = math.trunc(value) if math.isfinite(value) else value
    if signed:
        low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
    else:
        low, high = 0, (1 << width) - 1
    if truncated == math.inf or truncated > high:
        return high
    if truncated == -math.inf or truncated < low:
        return low
    return int(truncated)


_FCVT_TO_INT = {
    "fcvt.w.d": (32, True), "fcvt.wu.d": (32, False),
    "fcvt.l.d": (64, True), "fcvt.lu.d": (64, False),
    "fcvt.w.s": (32, True), "fcvt.wu.s": (32, False),
    "fcvt.l.s": (64, True), "fcvt.lu.s": (64, False),
}


@executor(*_FCVT_TO_INT)
def _fcvt_int(hart: Hart, instr: Instruction) -> None:
    width, signed = _FCVT_TO_INT[instr.mnemonic]
    result = _fcvt_to_int(hart.fregs[instr.rs1], width, signed)
    hart.write_reg(instr.rd, sign_extend(result & ((1 << width) - 1),
                                         width) & MASK64
                   if width == 32 else result & MASK64)


_FCVT_FROM_INT = {
    "fcvt.d.w": (32, True, False), "fcvt.d.wu": (32, False, False),
    "fcvt.d.l": (64, True, False), "fcvt.d.lu": (64, False, False),
    "fcvt.s.w": (32, True, True), "fcvt.s.wu": (32, False, True),
    "fcvt.s.l": (64, True, True), "fcvt.s.lu": (64, False, True),
}


@executor(*_FCVT_FROM_INT)
def _fcvt_float(hart: Hart, instr: Instruction) -> None:
    width, signed, single = _FCVT_FROM_INT[instr.mnemonic]
    raw = hart.regs[instr.rs1] & ((1 << width) - 1)
    value = float(sign_extend(raw, width) if signed else raw)
    hart.fregs[instr.rd] = round_f32(value) if single else value


@executor("fcvt.s.d")
def _fcvt_s_d(hart: Hart, instr: Instruction) -> None:
    hart.fregs[instr.rd] = round_f32(hart.fregs[instr.rs1])


@executor("fcvt.d.s")
def _fcvt_d_s(hart: Hart, instr: Instruction) -> None:
    hart.fregs[instr.rd] = hart.fregs[instr.rs1]


@executor("fmv.x.d")
def _fmv_x_d(hart: Hart, instr: Instruction) -> None:
    hart.write_reg(instr.rd, f64_to_bits(hart.fregs[instr.rs1]))


@executor("fmv.d.x")
def _fmv_d_x(hart: Hart, instr: Instruction) -> None:
    hart.fregs[instr.rd] = bits_to_f64(hart.regs[instr.rs1])


@executor("fmv.x.w")
def _fmv_x_w(hart: Hart, instr: Instruction) -> None:
    raw = f32_to_bits(hart.fregs[instr.rs1])
    hart.write_reg(instr.rd, sign_extend(raw, 32) & MASK64)


@executor("fmv.w.x")
def _fmv_w_x(hart: Hart, instr: Instruction) -> None:
    hart.fregs[instr.rd] = bits_to_f32(hart.regs[instr.rs1])


@executor("fclass.d", "fclass.s")
def _fclass(hart: Hart, instr: Instruction) -> None:
    value = hart.fregs[instr.rs1]
    if math.isnan(value):
        result = 1 << 9  # quiet NaN
    elif value == math.inf:
        result = 1 << 7
    elif value == -math.inf:
        result = 1 << 0
    elif value == 0.0:
        result = 1 << 4 if math.copysign(1.0, value) > 0 else 1 << 3
    elif value > 0:
        result = 1 << 6
    else:
        result = 1 << 1
    hart.write_reg(instr.rd, result)


# Vector executors register themselves into EXEC on import.
from repro.spike import vector as _vector  # noqa: E402,F401
