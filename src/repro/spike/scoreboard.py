"""RAW-dependency scoreboard for pending L1 misses.

The orchestration model from the paper: when an instruction's L1 miss is
outstanding, the registers it writes are *unavailable*.  A younger
instruction that reads (or overwrites) one of those registers marks the
core inactive until the miss is serviced.  The scoreboard tracks, per
core, the set of busy registers and the mapping from in-flight miss ids
to the registers they will release.
"""

from __future__ import annotations

from dataclasses import dataclass

RegRef = tuple[str, int]  # ("x" | "f" | "v", index)


@dataclass
class PendingMiss:
    """One outstanding L1 miss and the registers it will release."""

    miss_id: int
    core_id: int
    registers: frozenset[RegRef]


class Scoreboard:
    """Tracks busy registers per core for RAW-dependency stalls."""

    def __init__(self, num_cores: int):
        self._busy: list[dict[RegRef, int]] = [dict()
                                               for _ in range(num_cores)]
        self._pending: dict[int, PendingMiss] = {}
        self._next_id = 0

    # -- registration -------------------------------------------------------

    def register_miss(self, core_id: int,
                      registers: tuple[RegRef, ...]) -> int:
        """Record an in-flight miss; returns its miss id.

        ``registers`` may be empty (store misses, writebacks, fetch misses)
        — the miss id is still allocated so completions can be correlated.
        """
        miss_id = self._next_id
        self._next_id += 1
        reg_set = frozenset(registers)
        self._pending[miss_id] = PendingMiss(miss_id, core_id, reg_set)
        busy = self._busy[core_id]
        for reg in reg_set:
            busy[reg] = busy.get(reg, 0) + 1
        return miss_id

    def complete_miss(self, miss_id: int) -> int:
        """Mark a miss serviced, releasing its registers; returns core id."""
        pending = self._pending.pop(miss_id)
        busy = self._busy[pending.core_id]
        for reg in pending.registers:
            count = busy[reg] - 1
            if count:
                busy[reg] = count
            else:
                del busy[reg]
        return pending.core_id

    # -- queries ------------------------------------------------------------

    def blocks(self, core_id: int, registers: tuple[RegRef, ...]) -> bool:
        """True when any of ``registers`` is produced by a pending miss."""
        busy = self._busy[core_id]
        if not busy:
            return False
        return any(reg in busy for reg in registers)

    def busy_map(self, core_id: int) -> dict[RegRef, int]:
        """The live busy-register map of one core.

        The returned dict is the scoreboard's own (mutated in place as
        misses register and complete), so a caller may hoist it once and
        test ``if busy_map`` per cycle: when it is empty no RAW check can
        block, letting the orchestrator skip the pre-step decode.
        """
        return self._busy[core_id]

    def busy_registers(self, core_id: int) -> frozenset[RegRef]:
        """The currently unavailable registers of one core."""
        return frozenset(self._busy[core_id])

    def pending(self) -> list[PendingMiss]:
        """Every outstanding miss, ordered by miss id (diagnostics)."""
        return [self._pending[miss_id]
                for miss_id in sorted(self._pending)]

    def outstanding(self, core_id: int | None = None) -> int:
        """Number of outstanding misses (for one core, or in total)."""
        if core_id is None:
            return len(self._pending)
        return sum(1 for miss in self._pending.values()
                   if miss.core_id == core_id)
