"""The functional side of Coyote: harts, L1 caches, bare-metal machine.

Mirrors the role Spike plays in the paper — functional execution of
multicore RV64 + RVV programs with in-simulator L1 caches, so that only L1
misses cross into the event-driven memory-hierarchy model.
"""

from repro.spike.hart import (
    Breakpoint,
    EnvironmentCall,
    Hart,
    IllegalInstructionTrap,
    MemAccess,
    Trap,
)
from repro.spike.l1cache import L1Access, L1Cache, L1Stats
from repro.spike.machine import BareMetalMachine
from repro.spike.scoreboard import Scoreboard
from repro.spike.simulator import (
    AccessKind,
    CoreModel,
    CoreStep,
    L1Config,
    MissRequest,
    SpikeSimulator,
    StepStatus,
)

__all__ = [
    "AccessKind",
    "BareMetalMachine",
    "Breakpoint",
    "CoreModel",
    "CoreStep",
    "EnvironmentCall",
    "Hart",
    "IllegalInstructionTrap",
    "L1Access",
    "L1Cache",
    "L1Config",
    "L1Stats",
    "MemAccess",
    "MissRequest",
    "Scoreboard",
    "SpikeSimulator",
    "StepStatus",
    "Trap",
]
