"""Bare-metal machine environment (Spike's HTIF conventions).

The paper runs Spike in bare-metal mode "with very limited availability of
syscalls".  We reproduce the same environment: a program communicates with
the host only through the ``tohost`` word.

Protocol (per 64-bit store to ``tohost``):

* ``value >> 48 == 0`` and ``value & 1 == 1`` — the *storing hart* halts
  with exit code ``value >> 1`` (code 0 is success).  Simulation finishes
  when every hart has halted.
* ``value >> 48 == 0x0101`` — console putchar of ``value & 0xFF``
  (HTIF device 1, command 1).

Each hart boots at the program entry with ``a0 = hart_id`` and a private
stack, mirroring a minimal SMP firmware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembler.program import Program
from repro.soc.memory import SparseMemory
from repro.spike.hart import CodeCacheRegistry, Hart, MemAccess

DEFAULT_STACK_TOP = 0x9000_0000
DEFAULT_STACK_BYTES = 64 * 1024

TOHOST_SYMBOL = "tohost"
_HTIF_CONSOLE_TAG = 0x0101


@dataclass
class HtifEvent:
    """Result of inspecting one instruction's stores for HTIF activity."""

    exited: bool = False
    exit_code: int = 0


class BareMetalMachine:
    """Shared memory, harts, and the HTIF host interface."""

    def __init__(self, program: Program, num_cores: int,
                 vlen_bits: int = 512,
                 stack_top: int = DEFAULT_STACK_TOP,
                 stack_bytes: int = DEFAULT_STACK_BYTES):
        self.program = program
        self.memory = SparseMemory()
        program.load_into(self.memory)
        self.tohost_address = program.symbols.get(TOHOST_SYMBOL)
        self.console = bytearray()
        self.harts = []
        self.exit_codes: dict[int, int] = {}
        # One registry for the whole machine: a store by any hart into a
        # decoded code page invalidates every hart's derived caches.
        self.code_registry = CodeCacheRegistry()
        for core_id in range(num_cores):
            hart = Hart(core_id, self.memory, vlen_bits=vlen_bits,
                        reset_pc=program.entry,
                        code_registry=self.code_registry)
            hart.regs[2] = stack_top - core_id * stack_bytes  # sp
            hart.regs[10] = core_id                           # a0
            self.harts.append(hart)

    @property
    def num_cores(self) -> int:
        return len(self.harts)

    def check_htif(self, accesses: list[MemAccess], hart: Hart) -> HtifEvent:
        """Inspect one step's stores for tohost activity."""
        if self.tohost_address is None:
            return HtifEvent()
        for access in accesses:
            if not access.is_write or access.address != self.tohost_address:
                continue
            value = self.memory.load_int(self.tohost_address, 8)
            device_command = value >> 48
            if device_command == _HTIF_CONSOLE_TAG:
                self.console.append(value & 0xFF)
                self.memory.store_int(self.tohost_address, 0, 8)
            elif device_command == 0 and value & 1:
                code = value >> 1
                self.exit_codes[hart.hart_id] = code
                return HtifEvent(exited=True, exit_code=code)
        return HtifEvent()

    def htif_store(self, hart: Hart) -> bool:
        """HTIF protocol for one just-executed store to ``tohost``.

        The translated fast path calls this directly — it already knows
        the store's address hit ``tohost`` — while :meth:`check_htif`
        remains the access-list-scanning interpreter entry point.  Both
        apply the identical protocol; returns ``True`` when the storing
        hart exits.
        """
        value = self.memory.load_int(self.tohost_address, 8)
        device_command = value >> 48
        if device_command == _HTIF_CONSOLE_TAG:
            self.console.append(value & 0xFF)
            self.memory.store_int(self.tohost_address, 0, 8)
        elif device_command == 0 and value & 1:
            self.exit_codes[hart.hart_id] = value >> 1
            return True
        return False

    def console_text(self) -> str:
        """Console output accumulated so far, decoded as UTF-8."""
        return self.console.decode("utf-8", errors="replace")

    def all_succeeded(self) -> bool:
        """True when every hart exited with code 0."""
        return (len(self.exit_codes) == self.num_cores
                and all(code == 0 for code in self.exit_codes.values()))
