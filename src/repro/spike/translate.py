"""Trace-compiled fast path for the Spike-side ISS.

The per-instruction interpreter (``CoreModel.step`` -> ``Hart.step`` ->
executor dispatch) costs ~10 Python calls per retired instruction, which
BENCH_hotloop.json shows dominating every run.  Following the
binary-translation approach of Guo & Mullins (PAPERS.md), this module
caches *basic blocks* — straight-line decode runs ending at a branch,
jump, or any instruction the interpreter must handle — and specialises
each block into one generated-and-``compile()``d Python function with
register file accesses, L1 lookups, and sparse-memory accesses inlined.

Fidelity contract (bit-identical to the interpreter, proven by
``tests/coyote/test_translate.py`` and the differential suite):

* **Cycle exactness.**  A block function takes a ``limit`` (cycles it may
  consume) and never executes more than ``limit`` instructions.  The
  single-core run-ahead loop dispatches whole bounded sprints; the
  multicore loop dispatches *micro-blocks* (``translate_uop``: at most
  one memory access, which must be instruction 0) so every
  cross-core-visible access stays on its exact lockstep cycle while the
  register-private tail runs ahead, the core skipping its next
  dispatches until the tail's last logical cycle has passed.
* **L1 exactness.**  Data-side lookups replicate ``L1Cache.access_fast``
  (stats, true-LRU touch, allocate-on-miss, dirty-victim writeback)
  inline, with the access counters constant-folded into each exit.
  Instruction-side fetches are proven resident with a fused
  probe-and-LRU-touch per 64-byte segment as execution first reaches
  it, which leaves identical final cache state.  The pure counters —
  ``instret``, ``core.instructions``, L1I ``stats.reads`` — are *not*
  updated by block code: the dispatch loop accrues the returned
  instruction counts per core and flushes them before anything can
  observe the difference (interpreter steps, telemetry samples, loop
  exits), trading three read-modify-writes per dispatch for one per
  flush.
* **Fallback edges.**  The block exits back to the interpreter loop at
  L1 misses, HTIF halts, line-crossing accesses, stores into decoded
  code pages, and every untranslatable instruction (vector, AMO, CSR,
  system).  A zero-progress exit tells the caller to take one
  interpreter step instead.
* **Invalidation.**  Every translated instruction was decoded through
  ``Hart.decode_at``, which registers its page(s) in the shared
  :class:`~repro.spike.hart.CodeCacheRegistry`; stores into those pages
  invalidate overlapping translated blocks (and the translating store's
  own block stops right after the store).  ``fence.i`` and checkpoint
  serialisation drop everything via ``Hart.drop_code_caches``.

The protocol of a generated ``run(limit)`` function:

* ``None`` — executed exactly ``limit`` instructions cleanly.
* ``int n`` (0 < n < limit) — executed ``n`` instructions cleanly and
  stopped (block boundary / resident-probe failure); ``hart.pc`` is set.
* :class:`BlockExit` with ``executed > 0`` — the last instruction
  missed in the L1D (``misses``) and/or halted the hart (``halted``).
* :class:`BlockExit` with ``executed == 0`` — no progress; the caller
  must fall back to one interpreter ``CoreModel.step``.

In every case the caller owes the executed count to ``hart.instret``,
``core.instructions`` and the L1I ``stats.reads`` counter (batched
crediting, above); the block itself has already committed everything
else.
"""

from __future__ import annotations

import math
import struct

from repro.soc.memory import PAGE_SIZE
from repro.spike.hart import (
    _FCVT_FROM_INT,
    _FCVT_TO_INT,
    _FP_BIN_D,
    _FP_BIN_S,
    _OP32_FUNCS,
    _OP_FUNCS,
    Trap,
    _fcvt_to_int,
    bits_to_f32,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    round_f32,
)
from repro.spike.simulator import AccessKind, MissRequest
from repro.utils.bitops import MASK32, MASK64, sign_extend

MAX_BLOCK = 64

_M64 = "0xFFFFFFFFFFFFFFFF"


class BlockExit:
    """Mutable exit record reused by one core's block dispatches."""

    __slots__ = ("executed", "misses", "halted")

    def __init__(self):
        self.executed = 0
        self.misses = None
        self.halted = False

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<BlockExit executed={self.executed} "
                f"misses={self.misses} halted={self.halted}>")


def _data_miss(l1, tag, is_write, core_id, registers, pc):
    """Replicate ``L1Cache.access_fast``'s miss half; returns requests.

    The call site has already bumped ``stats.reads``/``writes`` and
    established ``tag not in ways``; this records the miss, evicts the
    LRU victim (emitting a WRITEBACK request when dirty) and installs
    the new line, exactly as the interpreter path does.
    """
    stats = l1.stats
    if is_write:
        stats.write_misses += 1
        kind = AccessKind.STORE
    else:
        stats.read_misses += 1
        kind = AccessKind.LOAD
    offset_bits = l1._offset_bits
    index = tag & l1._index_mask
    ways = l1._sets[index]
    misses = [MissRequest(core_id, tag << offset_bits, kind, registers,
                          pc=pc)]
    if len(ways) >= l1.associativity:
        victim_tag, victim_dirty = next(iter(ways.items()))
        del ways[victim_tag]
        if victim_dirty:
            stats.writebacks += 1
            misses.append(MissRequest(core_id, victim_tag << offset_bits,
                                      AccessKind.WRITEBACK, pc=pc))
    ways[tag] = is_write
    l1._mru[index] = tag
    return misses


def _fclass_value(value):
    if math.isnan(value):
        return 1 << 9
    if value == math.inf:
        return 1 << 7
    if value == -math.inf:
        return 1 << 0
    if value == 0.0:
        return 1 << 4 if math.copysign(1.0, value) > 0 else 1 << 3
    if value > 0:
        return 1 << 6
    return 1 << 1


# -- helper-op dictionaries (rare operations stay as one call) --------------

def _masked(fn):
    return lambda a, b: fn(a, b) & MASK64


def _masked_w(fn):
    return lambda a, b: sign_extend(fn(a, b), 32) & MASK64


def _rounded(fn):
    return lambda a, b: round_f32(fn(a, b))


OPS: dict = {}
for _name in ("mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"):
    OPS[_name] = _masked(_OP_FUNCS[_name])
for _name in ("divw", "divuw", "remw", "remuw"):
    OPS[_name] = _masked_w(_OP32_FUNCS[_name])
for _name in ("fdiv.d", "fmin.d", "fmax.d",
              "fsgnj.d", "fsgnjn.d", "fsgnjx.d"):
    OPS[_name] = _FP_BIN_D[_name]
for _name in ("fdiv.s", "fmin.s", "fmax.s",
              "fsgnj.s", "fsgnjn.s", "fsgnjx.s"):
    OPS[_name] = _rounded(_FP_BIN_S[_name])


def _fcvt_int_op(width, signed):
    if width == 32:
        return lambda v: sign_extend(_fcvt_to_int(v, 32, signed) & MASK32,
                                     32) & MASK64
    return lambda v: _fcvt_to_int(v, 64, signed) & MASK64


def _fcvt_float_op(width, signed, single):
    mask = (1 << width) - 1

    def convert(raw):
        raw &= mask
        value = float(sign_extend(raw, width) if signed else raw)
        return round_f32(value) if single else value
    return convert


UN: dict = {
    "fsqrt.d": lambda v: math.sqrt(v) if v >= 0 else math.nan,
    "fsqrt.s": lambda v: round_f32(math.sqrt(v) if v >= 0 else math.nan),
    "fcvt.s.d": round_f32,
    "fcvt.d.s": lambda v: v,
    "fmv.x.d": f64_to_bits,
    "fmv.d.x": bits_to_f64,
    "fmv.x.w": lambda v: sign_extend(f32_to_bits(v), 32) & MASK64,
    "fmv.w.x": bits_to_f32,
    "fclass.d": _fclass_value,
    "fclass.s": _fclass_value,
}
for _name, (_width, _signed) in _FCVT_TO_INT.items():
    UN[_name] = _fcvt_int_op(_width, _signed)
for _name, (_width, _signed, _single) in _FCVT_FROM_INT.items():
    UN[_name] = _fcvt_float_op(_width, _signed, _single)

# Unary-op register routing: f->f, f->x, x->f.
_UN_FF = frozenset({"fsqrt.d", "fsqrt.s", "fcvt.s.d", "fcvt.d.s"})
_UN_FX = frozenset({"fmv.x.d", "fmv.x.w", "fclass.d", "fclass.s"}
                   | set(_FCVT_TO_INT))
_UN_XF = frozenset({"fmv.d.x", "fmv.w.x"} | set(_FCVT_FROM_INT))

# -- mnemonic categories ----------------------------------------------------

_I_OPS = frozenset({"addi", "slti", "sltiu", "xori", "ori", "andi", "slli",
                    "srli", "srai", "addiw", "slliw", "srliw", "sraiw",
                    "lui", "auipc"})
_R_SIMPLE = frozenset({"add", "sub", "sll", "slt", "sltu", "xor", "srl",
                       "sra", "or", "and", "mul"})
_R_HELPER = frozenset({"mulh", "mulhsu", "mulhu", "div", "divu", "rem",
                       "remu", "divw", "divuw", "remw", "remuw"})
_W_SIMPLE = frozenset({"addw", "subw", "sllw", "srlw", "sraw", "mulw"})
_BRANCH_OPS = {"beq": "==", "bne": "!=", "bltu": "<", "bgeu": ">=",
               "blt": "<", "bge": ">="}
_SIGNED_BRANCHES = frozenset({"blt", "bge"})
_LOAD_OPS = frozenset({"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu",
                       "flw", "fld"})
_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4,
              "ld": 8, "flw": 4, "fld": 8}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4, "sd": 8, "fsw": 4, "fsd": 8}
_FP_ARITH = {"fadd": "+", "fsub": "-", "fmul": "*"}
_FMA_EXPR = {"fmadd": "f[{a}] * f[{b}] + f[{c}]",
             "fmsub": "f[{a}] * f[{b}] - f[{c}]",
             "fnmadd": "-(f[{a}] * f[{b}]) - f[{c}]",
             "fnmsub": "-(f[{a}] * f[{b}]) + f[{c}]"}
_FCMP = {"feq": "==", "flt": "<", "fle": "<="}

_CONTROL_OK = frozenset(_BRANCH_OPS) | {"jal", "jalr"}

_TRANSLATABLE = frozenset(
    set(_I_OPS) | _R_SIMPLE | _R_HELPER | _W_SIMPLE | set(_BRANCH_OPS)
    | {"jal", "jalr"} | _LOAD_OPS | set(_STORE_SIZE)
    | {f"{base}.{sz}" for base in _FP_ARITH for sz in ("s", "d")}
    | set(OPS) - set(_OP_FUNCS) - set(_OP32_FUNCS)
    | {f"{base}.{sz}" for base in _FMA_EXPR for sz in ("s", "d")}
    | {f"{base}.{sz}" for base in _FCMP for sz in ("s", "d")}
    | _UN_FF | _UN_FX | _UN_XF)

# Globals shared by every compiled factory (the generated code's module
# namespace).  Struct methods are pre-bound so a load is one call.
_G = {
    # Generated code runs with empty builtins by design; the one
    # exception class the fused cache probes catch is passed in.
    "__builtins__": {},
    "KeyError": KeyError,
    "OPS": OPS,
    "UN": UN,
    "DMISS": _data_miss,
    "R": round_f32,
    "U2": struct.Struct("<H").unpack_from,
    "U4": struct.Struct("<I").unpack_from,
    "U8": struct.Struct("<Q").unpack_from,
    "UD": struct.Struct("<d").unpack_from,
    "UF": struct.Struct("<f").unpack_from,
    "P2": struct.Struct("<H").pack_into,
    "P4": struct.Struct("<I").pack_into,
    "P8": struct.Struct("<Q").pack_into,
    "PD": struct.Struct("<d").pack_into,
    "PF": struct.Struct("<f").pack_into,
}


def _x(reg: int) -> str:
    return "0" if reg == 0 else f"x[{reg}]"


def _sx64(setup: list, reg: int, tmp: str) -> str:
    """Signed view of integer register ``reg`` (64-bit)."""
    if reg == 0:
        return "0"
    setup.append(f"{tmp} = x[{reg}]")
    return f"({tmp} - (({tmp} >> 63) << 64))"


_SIGN_OR = {1: ("0x80", "0xFFFFFFFFFFFFFF00"),
            2: ("0x8000", "0xFFFFFFFFFFFF0000"),
            4: ("0x80000000", "0xFFFFFFFF00000000")}


def _discover(hart, pc: int, uop: bool = False) -> list:
    """Collect the translatable straight-line run starting at ``pc``.

    Branches and jumps are included as block enders; anything the
    interpreter must execute (vector, AMO, CSR, system, unknown) stops
    the block *before* itself.  Decoding goes through ``decode_at`` so
    every instruction's page is registered for store invalidation.

    With ``uop=True`` the run additionally stops *before* any memory
    instruction past position 0: the resulting micro-block performs its
    one (optional) memory access on the cycle it is dispatched and the
    rest of the block touches only this core's registers.  The multicore
    lockstep loop exploits that shape to dispatch whole micro-blocks
    while keeping every cross-core-visible access on its exact cycle
    (docs/INTERNALS.md, "Translated fast path").
    """
    instrs = []
    cursor = pc
    while len(instrs) < MAX_BLOCK:
        try:
            instr = hart.decode_at(cursor)
        except Trap:
            break
        mnemonic = instr.mnemonic
        if mnemonic in _CONTROL_OK:
            instrs.append(instr)
            break
        if instr.is_control or mnemonic not in _TRANSLATABLE:
            break
        if uop and instrs and (mnemonic in _LOAD_OPS
                               or mnemonic in _STORE_SIZE):
            break
        instrs.append(instr)
        cursor += 4
    return instrs


def _build_source(pc0: int, instrs: list, profiled: bool, tohost: int,
                  i_off: int, i_mask: int, d_off: int, d_mask: int,
                  checked: bool = True) -> str:
    """Generate the factory source for one basic block.

    Every exit point inlines its own constant-folded commit (L1D access
    counters for the accesses actually made, the next pc) followed by a
    direct ``return`` — straight-line code with no shared epilogue or
    state variables, because at micro-block sizes the scaffolding would
    otherwise rival the body.

    ``checked=False`` drops the per-instruction cycle-budget guards and
    the ``None``-for-exactly-``limit`` return convention: the variant is
    only ever dispatched with ``limit`` at least the block length, so a
    clean exit after ``n`` instructions is a plain ``return n`` (which
    may equal ``limit``; dispatchers treat any int uniformly).

    Two commitments are deliberately NOT made by the generated code:

    * ``hart.instret`` / ``core.instructions`` / L1I ``stats.reads``
      are pure order-insensitive sums, so the dispatch loop credits
      them in batch from the returned instruction count (see the
      orchestrator's credit/flush bookkeeping).  One flush per stretch
      replaces three attribute read-modify-writes per dispatch.
    * The I-line LRU touch happens at the residency *probe* (a fused
      ``pop``/reinsert), not at exit.  Equivalent ordering: within one
      call nothing else touches that L1I set, and on the zero-progress
      paths the interpreter's own fetch of the same pc performs the
      identical touch.
    """
    count = len(instrs)
    line_bytes = 1 << d_off
    line_mask = line_bytes - 1

    # I-cache segments: consecutive pcs sharing one I-line.
    seg_tags: list[int] = []
    seg_first: list[int] = []
    for k in range(count):
        tag = (pc0 + 4 * k) >> i_off
        if not seg_tags or tag != seg_tags[-1]:
            seg_tags.append(tag)
            seg_first.append(k)

    # Prefix counts of data accesses: an exit retiring n instructions
    # has made exactly loads_before[n] reads and stores_before[n]
    # writes, so the L1D access counters are committed as constants.
    loads_before = [0] * (count + 1)
    stores_before = [0] * (count + 1)
    for k, ins in enumerate(instrs):
        loads_before[k + 1] = loads_before[k] + \
            (1 if ins.mnemonic in _LOAD_OPS else 0)
        stores_before[k + 1] = stores_before[k] + \
            (1 if ins.mnemonic in _STORE_SIZE else 0)

    pre: list[str] = []
    body: list[str] = []

    def emit(indent: int, text: str) -> None:
        body.append("    " * indent + text)

    def commit(indent: int, n: int) -> None:
        """Commit the L1D access counters for n retired instructions
        (instret/instructions/L1I reads are credited by the caller)."""
        if loads_before[n]:
            emit(indent, f"dst.reads += {loads_before[n]}")
        if stores_before[n]:
            emit(indent, f"dst.writes += {stores_before[n]}")

    def emit_clean(indent: int, n: int, npc) -> None:
        """Clean stop after instruction n-1; ``npc`` is an int or an
        expression string already holding the next pc."""
        commit(indent, n)
        emit(indent, f"hart.pc = {npc}")
        if checked:
            emit(indent, f"return None if limit == {n} else {n}")
        else:
            emit(indent, f"return {n}")

    def emit_zero(indent: int) -> None:
        # No progress: hart.pc still equals the dispatch pc, and E is
        # reused across dispatches, so clear its stale fields.
        emit(indent, "E.executed = 0")
        emit(indent, "E.misses = None")
        emit(indent, "E.halted = False")
        emit(indent, "return E")

    def emit_stall(indent: int, k: int, pc: int) -> None:
        """Clean stop *before* instruction k (probe failure or a
        line-crossing access); the budget guard for k already passed,
        so ``limit > k`` and the int return is unambiguous."""
        if k == 0:
            emit_zero(indent)
        else:
            commit(indent, k)
            emit(indent, f"hart.pc = {pc}")
            emit(indent, f"return {k}")

    def emit_event(indent: int, n: int, npc: int) -> None:
        """Miss and/or halt exit: E.misses/E.halted are already set."""
        commit(indent, n)
        emit(indent, f"hart.pc = {npc}")
        emit(indent, f"E.executed = {n}")
        emit(indent, "return E")

    seg_index = 0
    for k, ins in enumerate(instrs):
        pc = pc0 + 4 * k
        npc = pc + 4
        m = ins.mnemonic
        rd, rs1, rs2, rs3 = ins.rd, ins.rs1, ins.rs2, ins.rs3
        imm, sh = ins.imm, ins.shamt

        # Cycle-budget boundary: stop cleanly *before* instruction k.
        if checked and k:
            emit(2, f"if limit == {k}:")
            commit(3, k)
            emit(3, f"hart.pc = {pc}")
            emit(3, "return None")
        # New I-line: prove residency with a fused probe-and-LRU-touch
        # (``pop`` raises on a cold line).  Touching here rather than
        # at exit is order-equivalent — see the function docstring.
        # The MRU shadow short-circuits the overwhelmingly common case
        # of re-entering the same line (a loop body): when the tag is
        # already the set's newest key, the re-insert would not change
        # LRU order, so residency is proven by one list compare.
        if seg_index < len(seg_tags) and seg_first[seg_index] == k:
            tag = seg_tags[seg_index]
            si = tag & i_mask
            emit(2, f"if IM[{si}] != {tag}:")
            emit(3, "try:")
            emit(4, f"iw{seg_index}[{tag}] = iw{seg_index}.pop({tag})")
            emit(3, "except KeyError:")
            emit_stall(4, k, pc)
            emit(3, f"IM[{si}] = {tag}")
            seg_index += 1

        is_mem = m in _LOAD_OPS or m in _STORE_SIZE
        if is_mem:
            size = _LOAD_SIZE.get(m) or _STORE_SIZE[m]
            if rs1 == 0:
                emit(2, f"a = {imm & MASK64}")
            elif imm == 0:
                emit(2, f"a = x[{rs1}]")
            else:
                emit(2, f"a = (x[{rs1}] + {imm}) & {_M64}")
            if size > 1:
                # Line-crossing access: bail to the interpreter, which
                # classifies it per line.  Within-line implies
                # within-page (line <= page), so the fast path below
                # may index one backing page directly.
                emit(2, f"if (a & {line_mask}) > {line_bytes - size}:")
                emit_stall(3, k, pc)
        if profiled:
            emit(2, f"prof.retire({pc}, i{k})")
            pre.append(f"i{k} = instrs[{k}]")

        if m in _LOAD_OPS:
            # Loads read the backing page inside try/except: the page
            # is present for every address a program has ever written,
            # so the KeyError arm (read of untouched memory -> zero)
            # costs nothing on the path that matters.
            def emit_value(base: int) -> None:
                if m == "fld":
                    emit(base, "try:")
                    emit(base + 1,
                         f"f[{rd}] = UD(pages[a >> 12], a & 4095)[0]")
                    emit(base, "except KeyError:")
                    emit(base + 1, f"f[{rd}] = 0.0")
                elif m == "flw":
                    emit(base, "try:")
                    emit(base + 1,
                         f"f[{rd}] = UF(pages[a >> 12], a & 4095)[0]")
                    emit(base, "except KeyError:")
                    emit(base + 1, f"f[{rd}] = 0.0")
                elif rd:
                    if size == 1:
                        raw = "pages[a >> 12][a & 4095]"
                    else:
                        unpack = {2: "U2", 4: "U4", 8: "U8"}[size]
                        raw = f"{unpack}(pages[a >> 12], a & 4095)[0]"
                    if m in ("lb", "lh", "lw"):
                        threshold, high = _SIGN_OR[size]
                        emit(base, "try:")
                        emit(base + 1, f"v = {raw}")
                        emit(base, "except KeyError:")
                        emit(base + 1, "v = 0")
                        emit(base, f"x[{rd}] = v if v < {threshold} "
                             f"else v | {high}")
                    else:
                        emit(base, "try:")
                        emit(base + 1, f"x[{rd}] = {raw}")
                        emit(base, "except KeyError:")
                        emit(base + 1, f"x[{rd}] = 0")
            emit(2, f"t = a >> {d_off}")
            emit(2, f"dw = dsets[t & {d_mask}]")
            emit(2, "try:")
            emit(3, "dw[t] = dw.pop(t)")
            emit(2, "except KeyError:")
            emit(3, f"E.misses = DMISS(l1d, t, False, cid, r{k}, {pc})")
            emit(3, "E.halted = False")
            emit_value(3)
            emit_event(3, k + 1, npc)
            emit_value(2)
            pre.append(f"r{k} = instrs[{k}].dests")

        elif m in _STORE_SIZE:
            emit(2, f"t = a >> {d_off}")
            emit(2, f"dw = dsets[t & {d_mask}]")
            emit(2, "try:")
            emit(3, "dw.pop(t)")
            emit(3, "dw[t] = True")
            emit(3, "ms = None")
            emit(2, "except KeyError:")
            emit(3, f"ms = DMISS(l1d, t, True, cid, (), {pc})")
            emit(2, "g = a >> 12")
            emit(2, "try:")
            emit(3, "p = pages[g]")
            emit(2, "except KeyError:")
            emit(3, "p = alloc(g)")
            if m == "fsd":
                emit(2, f"PD(p, a & 4095, f[{rs2}])")
            elif m == "fsw":
                emit(2, f"PF(p, a & 4095, f[{rs2}])")
            elif m == "sb":
                emit(2, f"p[a & 4095] = {_x(rs2)} & 0xFF"
                     if rs2 else "p[a & 4095] = 0")
            else:
                pack = {2: "P2", 4: "P4", 8: "P8"}[size]
                val = _x(rs2)
                if size < 8 and rs2:
                    val = f"{val} & {(1 << (8 * size)) - 1:#x}"
                emit(2, f"{pack}(p, a & 4095, {val})")
            # Rare tail: self-modifying store, HTIF, or L1D miss.  The
            # common store falls through with a single compound test.
            emit(2, f"if ms is not None or g in CP or a == {tohost}:")
            emit(3, "if g in CP:")
            emit(4, f"inv(a, {size})")
            emit(3, f"if a == {tohost} and htif(hart):")
            emit(4, "core.halted = True")
            emit(4, "E.misses = ms")
            emit(4, "E.halted = True")
            emit_event(4, k + 1, npc)
            emit(3, "if ms is not None:")
            emit(4, "E.misses = ms")
            emit(4, "E.halted = False")
            emit_event(4, k + 1, npc)
            # A store into decoded code may have invalidated this very
            # block: stop cleanly and let the caller re-dispatch.
            emit_clean(3, k + 1, npc)

        elif m in _BRANCH_OPS:
            if m in _SIGNED_BRANCHES:
                setup: list[str] = []
                left = _sx64(setup, rs1, "w1")
                right = _sx64(setup, rs2, "w2")
                for text in setup:
                    emit(2, text)
                cond = f"{left} {_BRANCH_OPS[m]} {right}"
            else:
                cond = f"{_x(rs1)} {_BRANCH_OPS[m]} {_x(rs2)}"
            emit(2, f"if {cond}:")
            emit_clean(3, k + 1, (pc + imm) & MASK64)
            emit_clean(2, k + 1, npc)

        elif m == "jal":
            if rd:
                emit(2, f"x[{rd}] = {npc & MASK64}")
            emit_clean(2, k + 1, (pc + imm) & MASK64)

        elif m == "jalr":
            # Target reads rs1 *before* the link write (rd may == rs1).
            if imm:
                emit(2, f"npc = ({_x(rs1)} + {imm}) & 0xFFFFFFFFFFFFFFFE")
            else:
                emit(2, f"npc = {_x(rs1)} & 0xFFFFFFFFFFFFFFFE")
            if rd:
                emit(2, f"x[{rd}] = {npc & MASK64}")
            emit_clean(2, k + 1, "npc")

        elif m in _I_OPS:
            if rd:
                _emit_alu_imm(emit, m, rd, rs1, imm, sh, pc)
        elif m in _R_SIMPLE or m in _W_SIMPLE:
            if rd:
                _emit_alu_reg(emit, m, rd, rs1, rs2)
        elif m in _R_HELPER:
            if rd:
                pre.append(f"O{k} = OPS[{m!r}]")
                emit(2, f"x[{rd}] = O{k}({_x(rs1)}, {_x(rs2)})")
        elif m[:4] in _FP_ARITH and m[4:] in (".s", ".d"):
            expr = f"f[{rs1}] {_FP_ARITH[m[:4]]} f[{rs2}]"
            if m.endswith(".s"):
                expr = f"R({expr})"
            emit(2, f"f[{rd}] = {expr}")
        elif m in OPS and m[0] == "f":
            pre.append(f"O{k} = OPS[{m!r}]")
            emit(2, f"f[{rd}] = O{k}(f[{rs1}], f[{rs2}])")
        elif m[:-2] in _FMA_EXPR and m[-2:] in (".s", ".d"):
            expr = _FMA_EXPR[m[:-2]].format(a=rs1, b=rs2, c=rs3)
            if m.endswith(".s"):
                expr = f"R({expr})"
            emit(2, f"f[{rd}] = {expr}")
        elif m[:3] in _FCMP and m[3:] in (".s", ".d"):
            # Python comparisons on NaN are all False, matching the
            # executor's explicit isnan -> 0 handling.
            if rd:
                emit(2, f"x[{rd}] = 1 if f[{rs1}] {_FCMP[m[:3]]} "
                     f"f[{rs2}] else 0")
        elif m in _UN_FF:
            pre.append(f"U{k} = UN[{m!r}]")
            emit(2, f"f[{rd}] = U{k}(f[{rs1}])")
        elif m in _UN_FX:
            if rd:
                pre.append(f"U{k} = UN[{m!r}]")
                emit(2, f"x[{rd}] = U{k}(f[{rs1}])")
        elif m in _UN_XF:
            pre.append(f"U{k} = UN[{m!r}]")
            emit(2, f"f[{rd}] = U{k}({_x(rs1)})")
        else:  # pragma: no cover - _discover only admits known mnemonics
            raise AssertionError(f"untranslatable mnemonic {m}")

    last = instrs[-1]
    if last.mnemonic not in _CONTROL_OK:
        emit_clean(2, count, pc0 + 4 * count)

    for s in range(len(seg_tags)):
        pre.append(f"iw{s} = isets[{seg_tags[s] & i_mask}]")

    lines = [
        "def _factory(C):",
        "    (hart, x, f, core, E, prof, instrs, l1i, l1d, pages, alloc,",
        "     CP, inv, htif, cid) = C",
        "    isets = l1i._sets",
        "    IM = l1i._mru",
        "    dsets = l1d._sets",
        "    dst = l1d.stats",
    ]
    lines += ["    " + text for text in pre]
    # The unchecked twin never reads its budget; dropping the parameter
    # shaves the argument pass off every dispatch.
    lines.append("    def run(limit):" if checked else "    def run():")
    lines += body
    lines.append("    return run")
    return "\n".join(lines) + "\n"


def _emit_w_result(emit, rd: int, expr32: str) -> None:
    """Write the 32-bit value ``expr32`` sign-extended into x[rd]."""
    emit(2, f"w1 = {expr32}")
    emit(2, f"x[{rd}] = (w1 - ((w1 >> 31) << 32)) & {_M64}")


def _emit_alu_imm(emit, m, rd, rs1, imm, sh, pc) -> None:
    a = _x(rs1)
    if m == "lui":
        emit(2, f"x[{rd}] = {imm & MASK64}")
    elif m == "auipc":
        emit(2, f"x[{rd}] = {(pc + imm) & MASK64}")
    elif m == "addi":
        if rs1 == 0:
            emit(2, f"x[{rd}] = {imm & MASK64}")
        elif imm == 0:
            emit(2, f"x[{rd}] = x[{rs1}]")
        else:
            emit(2, f"x[{rd}] = (x[{rs1}] + {imm}) & {_M64}")
    elif m == "slti":
        setup: list[str] = []
        left = _sx64(setup, rs1, "w1")
        for text in setup:
            emit(2, text)
        emit(2, f"x[{rd}] = 1 if {left} < {imm} else 0")
    elif m == "sltiu":
        emit(2, f"x[{rd}] = 1 if {a} < {imm & MASK64} else 0")
    elif m == "xori":
        emit(2, f"x[{rd}] = {a} ^ {imm & MASK64}")
    elif m == "ori":
        emit(2, f"x[{rd}] = {a} | {imm & MASK64}")
    elif m == "andi":
        emit(2, f"x[{rd}] = {a} & {imm & MASK64}")
    elif m == "slli":
        emit(2, f"x[{rd}] = ({a} << {sh}) & {_M64}")
    elif m == "srli":
        emit(2, f"x[{rd}] = {a} >> {sh}")
    elif m == "srai":
        setup = []
        left = _sx64(setup, rs1, "w1")
        for text in setup:
            emit(2, text)
        emit(2, f"x[{rd}] = ({left} >> {sh}) & {_M64}")
    elif m == "addiw":
        _emit_w_result(emit, rd, f"({a} + {imm}) & 0xFFFFFFFF")
    elif m == "slliw":
        _emit_w_result(emit, rd, f"({a} << {sh}) & 0xFFFFFFFF")
    elif m == "srliw":
        _emit_w_result(emit, rd, f"({a} & 0xFFFFFFFF) >> {sh}")
    elif m == "sraiw":
        emit(2, f"w1 = {a} & 0xFFFFFFFF")
        emit(2, f"x[{rd}] = ((w1 - ((w1 >> 31) << 32)) >> {sh}) & {_M64}")
    else:  # pragma: no cover
        raise AssertionError(m)


def _emit_alu_reg(emit, m, rd, rs1, rs2) -> None:
    a, b = _x(rs1), _x(rs2)
    if m == "add":
        emit(2, f"x[{rd}] = ({a} + {b}) & {_M64}")
    elif m == "sub":
        emit(2, f"x[{rd}] = ({a} - {b}) & {_M64}")
    elif m == "mul":
        emit(2, f"x[{rd}] = ({a} * {b}) & {_M64}")
    elif m == "xor":
        emit(2, f"x[{rd}] = {a} ^ {b}")
    elif m == "or":
        emit(2, f"x[{rd}] = {a} | {b}")
    elif m == "and":
        emit(2, f"x[{rd}] = {a} & {b}")
    elif m == "sll":
        emit(2, f"x[{rd}] = ({a} << ({b} & 63)) & {_M64}")
    elif m == "srl":
        emit(2, f"x[{rd}] = {a} >> ({b} & 63)")
    elif m == "sra":
        setup: list[str] = []
        left = _sx64(setup, rs1, "w1")
        for text in setup:
            emit(2, text)
        emit(2, f"x[{rd}] = ({left} >> ({b} & 63)) & {_M64}")
    elif m == "sltu":
        emit(2, f"x[{rd}] = 1 if {a} < {b} else 0")
    elif m == "slt":
        setup = []
        left = _sx64(setup, rs1, "w1")
        right = _sx64(setup, rs2, "w2")
        for text in setup:
            emit(2, text)
        emit(2, f"x[{rd}] = 1 if {left} < {right} else 0")
    elif m == "addw":
        _emit_w_result(emit, rd, f"({a} + {b}) & 0xFFFFFFFF")
    elif m == "subw":
        _emit_w_result(emit, rd, f"({a} - {b}) & 0xFFFFFFFF")
    elif m == "mulw":
        _emit_w_result(emit, rd, f"({a} * {b}) & 0xFFFFFFFF")
    elif m == "sllw":
        _emit_w_result(emit, rd, f"({a} << ({b} & 31)) & 0xFFFFFFFF")
    elif m == "srlw":
        _emit_w_result(emit, rd, f"({a} & 0xFFFFFFFF) >> ({b} & 31)")
    elif m == "sraw":
        emit(2, f"w1 = {a} & 0xFFFFFFFF")
        emit(2, f"x[{rd}] = ((w1 - ((w1 >> 31) << 32)) >> "
             f"({b} & 31)) & {_M64}")
    else:  # pragma: no cover
        raise AssertionError(m)


# Compiled factories are pure functions of (code words, geometry,
# profiled, tohost), so they are shared machine-wide: eight cores
# translating the same loop compile it once, and repeated benchmark
# reps in one process pay zero recompilation.
_FACTORY_CACHE: dict = {}
_FACTORY_CACHE_MAX = 4096


def _zero_progress_stub(exit_obj):
    """A run-fn for untranslatable pcs: reports zero progress so the
    dispatcher falls through to its interpreter path."""
    def run():
        exit_obj.executed = 0
        exit_obj.misses = None
        exit_obj.halted = False
        return exit_obj
    return run


def _factory_for(pc0, instrs, profiled, tohost, i_off, i_mask,
                 d_off, d_mask, checked=True):
    key = (pc0, tuple(ins.word for ins in instrs), profiled, tohost,
           i_off, i_mask, d_off, d_mask, checked)
    factory = _FACTORY_CACHE.get(key)
    if factory is None:
        source = _build_source(pc0, instrs, profiled, tohost,
                               i_off, i_mask, d_off, d_mask, checked)
        code = compile(source, f"<block@{pc0:#x}>", "exec")
        namespace: dict = {}
        exec(code, _G, namespace)
        factory = namespace["_factory"]
        if len(_FACTORY_CACHE) >= _FACTORY_CACHE_MAX:
            _FACTORY_CACHE.clear()
        _FACTORY_CACHE[key] = factory
    return factory


class BlockTranslator:
    """Per-core translated-block cache with store invalidation.

    ``cache`` maps a block-start pc to its compiled ``run(limit)``
    closure, or ``False`` for pcs proven untranslatable (the dispatch
    loops hoist this dict and only call :meth:`translate` on a true
    miss).  ``ucache`` holds the memory-leading micro-block variants the
    multicore lockstep loop dispatches (:meth:`translate_uop`); ``ufast``
    holds the unchecked twins of the same micro-blocks — no budget
    guards, valid only for full-budget (``limit >= block length``)
    dispatches.  All dict objects are mutated in place, never replaced,
    so hoisted references stay valid across invalidations.
    """

    def __init__(self, core, machine):
        self.core = core
        self.machine = machine
        self.cache: dict = {}
        self.ucache: dict = {}
        self.ufast: dict = {}
        self._bounds: dict = {}
        self._ubounds: dict = {}
        self._exit = BlockExit()
        hart = core.hart
        hart._code_caches.append(self)
        hart.code_registry.register_cache(self)
        # Within-line implies within-page is load/store codegen's one
        # geometric assumption; refuse to translate if it cannot hold.
        self._enabled = core.l1d.line_bytes <= PAGE_SIZE

    def translate(self, pc: int):
        """Translate the block at ``pc``; returns a run-fn or ``False``."""
        instrs = _discover(self.core.hart, pc) if self._enabled else []
        return self._install(pc, instrs, self.cache, self._bounds)

    def translate_uop(self, pc: int):
        """Translate the micro-block at ``pc`` (memory access only at
        position 0); installs the checked variant in ``ucache`` and its
        unchecked twin in ``ufast`` (sharing ``_ubounds``), returning
        the checked run-fn or ``False``."""
        instrs = _discover(self.core.hart, pc, uop=True) \
            if self._enabled else []
        fn = self._install(pc, instrs, self.ucache, self._ubounds)
        if fn is False:
            # Untranslatable pcs get a zero-progress stub instead of a
            # ``False`` sentinel: the dispatch loop then needs no
            # translatability test at all — the stub routes it to the
            # interpreter through the ordinary zero-progress exit.
            self.ufast[pc] = _zero_progress_stub(self._exit)
        else:
            self._install(pc, instrs, self.ufast, self._ubounds,
                          checked=False)
        return fn

    def _install(self, pc: int, instrs: list, cache: dict, bounds: dict,
                 checked: bool = True):
        if not instrs:
            cache[pc] = False
            bounds[pc] = pc + 3
            return False
        core = self.core
        hart = core.hart
        l1i, l1d = core.l1i, core.l1d
        machine = self.machine
        tohost = machine.tohost_address
        if tohost is None:
            tohost = -1
        profiled = core.profile is not None
        factory = _factory_for(pc, instrs, profiled, tohost,
                               l1i._offset_bits, l1i._index_mask,
                               l1d._offset_bits, l1d._index_mask,
                               checked)
        memory = machine.memory
        context = (hart, hart.regs, hart.fregs, core, self._exit,
                   core.profile, instrs, l1i, l1d, memory._pages,
                   memory._page, hart._code_pages,
                   hart.code_registry.note_store, machine.htif_store,
                   core.core_id)
        fn = factory(context)
        cache[pc] = fn
        bounds[pc] = pc + 4 * len(instrs) - 1
        return fn

    # -- invalidation (CodeCacheRegistry protocol) --------------------------

    def invalidate_range(self, lo: int, hi: int) -> None:
        """Drop every cached block overlapping byte range [lo, hi]."""
        ufast = self.ufast
        for cache, bounds in ((self.cache, self._bounds),
                              (self.ucache, self._ubounds)):
            if not bounds:
                continue
            dead = [pc for pc, end in bounds.items()
                    if pc <= hi and end >= lo]
            for pc in dead:
                del bounds[pc]
                cache.pop(pc, None)
                if cache is not self.cache:
                    ufast.pop(pc, None)

    def drop_all(self) -> None:
        self.cache.clear()
        self.ucache.clear()
        self.ufast.clear()
        self._bounds.clear()
        self._ubounds.clear()

    # -- pickling: compiled closures must never leak into checkpoints -------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["cache"] = {}
        state["ucache"] = {}
        state["ufast"] = {}
        state["_bounds"] = {}
        state["_ubounds"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Checkpoints written before the unchecked twin existed.
        self.__dict__.setdefault("ufast", {})
