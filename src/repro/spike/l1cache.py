"""L1 instruction/data cache model (the "Spike side" of the tool boundary).

As in the paper, the private L1 caches are modelled inside the functional
simulator so that only L1 *misses* cross into the Sparta-modelled memory
hierarchy, minimising tool interactions.  The cache holds tags only — data
always lives in the shared functional memory — and implements a
write-back / write-allocate policy with true-LRU replacement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitops import clog2, is_power_of_two


@dataclass(frozen=True)
class L1Access:
    """Outcome of a single L1 lookup."""

    hit: bool
    line_address: int
    writeback_address: int | None = None  # dirty victim evicted on a miss


@dataclass
class L1Stats:
    """Counters accumulated by one cache instance."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class L1Cache:
    """A set-associative, write-back, write-allocate tag cache."""

    def __init__(self, size_bytes: int = 32 * 1024, associativity: int = 8,
                 line_bytes: int = 64, name: str = "l1"):
        if not is_power_of_two(line_bytes):
            raise ValueError(f"line size must be a power of two: {line_bytes}")
        num_lines, remainder = divmod(size_bytes, line_bytes)
        if remainder:
            raise ValueError("cache size must be a multiple of the line size")
        self.num_sets, remainder = divmod(num_lines, associativity)
        if remainder or self.num_sets == 0:
            raise ValueError(
                f"size/assoc/line geometry invalid: {size_bytes}/"
                f"{associativity}/{line_bytes}")
        if not is_power_of_two(self.num_sets):
            raise ValueError(f"number of sets must be a power of two, "
                             f"got {self.num_sets}")
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self._offset_bits = clog2(line_bytes)
        self._index_mask = self.num_sets - 1
        # Per set: {tag: dirty}; dict preserves insertion order, and we
        # re-insert on touch, so the first key is always the LRU way.
        self._sets: list[dict[int, bool]] = [dict()
                                             for _ in range(self.num_sets)]
        # Per set: the most-recently-used tag (-1 = unknown).  Touching
        # the MRU way again is a no-op on LRU order, so hot paths (the
        # translated blocks especially, which re-fetch the same I-line
        # on every trip around a loop) compare against this shadow and
        # skip the pop/re-insert.  Invariant: _mru[s] == t implies t is
        # the newest key of _sets[s]; every mutation of a set either
        # maintains that or resets the entry.  The list is only ever
        # mutated in place — generated code holds a direct reference.
        self._mru: list[int] = [-1] * self.num_sets
        self.stats = L1Stats()

    # -- geometry helpers ---------------------------------------------------

    def line_address(self, address: int) -> int:
        """Address of the cache line containing ``address``."""
        return address >> self._offset_bits << self._offset_bits

    def _locate(self, address: int) -> tuple[int, int]:
        line_number = address >> self._offset_bits
        return line_number & self._index_mask, line_number

    # -- main access path ---------------------------------------------------

    def access(self, address: int, is_write: bool) -> L1Access:
        """Look up ``address``; allocates on miss and returns the outcome."""
        miss = self.access_fast(address, is_write)
        if miss is None:
            return L1Access(hit=True,
                            line_address=self.line_address(address))
        return L1Access(hit=False, line_address=miss[0],
                        writeback_address=miss[1])

    def access_fast(self, address: int,
                    is_write: bool) -> tuple[int, int | None] | None:
        """Allocation-free hot-path lookup for the per-instruction loop.

        Same side effects as :meth:`access` (statistics, LRU touch,
        allocate-on-miss, victim eviction) but returns ``None`` on a hit
        — the overwhelmingly common case pays no object construction —
        and ``(line_address, writeback_address_or_None)`` on a miss.
        """
        offset_bits = self._offset_bits
        tag = address >> offset_bits
        index = tag & self._index_mask
        ways = self._sets[index]
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        if tag in ways:
            ways[tag] = ways.pop(tag) or is_write  # re-insert as MRU
            self._mru[index] = tag
            return None

        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        writeback = None
        if len(ways) >= self.associativity:
            victim_tag, victim_dirty = next(iter(ways.items()))
            del ways[victim_tag]
            if victim_dirty:
                stats.writebacks += 1
                writeback = victim_tag << offset_bits
        ways[tag] = is_write
        self._mru[index] = tag
        return tag << offset_bits, writeback

    def probe(self, address: int) -> bool:
        """True when the line holding ``address`` is resident (no side
        effects)."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    # -- maintenance --------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every line (dirty data is *not* written back)."""
        for ways in self._sets:
            ways.clear()
        self._mru[:] = (-1,) * self.num_sets

    def flush(self) -> list[int]:
        """Drop every line, returning dirty line addresses for write-back."""
        dirty_lines = []
        for set_index, ways in enumerate(self._sets):
            for tag, dirty in ways.items():
                if dirty:
                    dirty_lines.append(tag << self._offset_bits)
            ways.clear()
        self._mru[:] = (-1,) * self.num_sets
        self.stats.writebacks += len(dirty_lines)
        return dirty_lines

    def resident_lines(self) -> int:
        """Number of currently valid lines."""
        return sum(len(ways) for ways in self._sets)
