"""Advisory file locking for campaign and journal files.

Two processes pointed at the same campaign checkpoint (or the same
service journal) must not interleave their atomic replaces: each write
is individually safe, but the two processes would silently overwrite
each other's completed points, and the survivor's file would describe
neither campaign.  :class:`PathLock` makes that mistake loud — the
second process fails fast with a :class:`CampaignLockError` naming the
path and, when readable, the PID holding it.

The lock is ``fcntl.flock`` on a sidecar ``<path>.lock`` file, so it
works on paths that do not exist yet (a campaign about to be created)
and never interferes with the atomic-replace discipline on the data
file itself.  Locks are advisory and process-scoped: the kernel drops
them automatically when the holder dies, so a SIGKILLed campaign never
leaves a stale lock behind.  On platforms without ``fcntl`` (Windows)
the lock degrades to a no-op rather than blocking campaigns entirely.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.coyote.errors import SimulationError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


class CampaignLockError(SimulationError):
    """Another process already holds the lock for this campaign path."""


class PathLock:
    """An advisory, non-blocking lock guarding one on-disk path.

    Usage::

        lock = PathLock(campaign_path)
        lock.acquire()     # raises CampaignLockError if already held
        try:
            ...            # exclusive use of campaign_path
        finally:
            lock.release()

    Also usable as a context manager.  Re-acquiring a lock this process
    already holds is an error (it would paper over double-open bugs).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.lock_path = self.path.with_name(self.path.name + ".lock")
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    @property
    def fd(self) -> int | None:
        """The lock's file descriptor while held (``None`` otherwise).

        Forked children inherit this descriptor, and an inherited
        ``flock`` keeps the lock alive for as long as *any* copy of the
        descriptor stays open — an orphaned worker would block a
        restarted service until it died.  Holders that fork workers
        should close this descriptor in the child.
        """
        return self._fd if self._fd is not None and self._fd >= 0 \
            else None

    def acquire(self) -> "PathLock":
        if self._fd is not None:
            raise CampaignLockError(
                f"lock on {self.path} is already held by this process")
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            self._fd = -1
            return self
        fd = os.open(self.lock_path,
                     os.O_RDWR | os.O_CREAT, 0o600)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            holder = self._read_holder(fd)
            os.close(fd)
            raise CampaignLockError(
                f"{self.path} is in use by another process"
                f"{holder}: two campaigns writing one file would "
                f"silently interleave their checkpoints") from None
        # Record the holder PID for the diagnostic on the losing side.
        try:
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()}\n".encode())
        except OSError:
            pass
        self._fd = fd
        return self

    @staticmethod
    def _read_holder(fd: int) -> str:
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            pid = os.read(fd, 64).decode("ascii", "replace").strip()
            return f" (pid {pid})" if pid else ""
        except OSError:
            return ""

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None or fd < 0:
            return
        try:
            os.close(fd)  # closing drops the flock
        except OSError:
            pass

    def __enter__(self) -> "PathLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
