"""Periodic conservation checks over live simulation state.

The simulator's correctness rests on a handful of conservation laws:
every response-needing request is physically somewhere, every busy
scoreboard register is owned by a pending miss, every MSHR gauge agrees
with the MSHR file it mirrors.  A model bug (or a ``drop`` fault) that
violates one of them normally surfaces minutes later as a hang or a
wrong statistic; the :class:`InvariantChecker` catches it at the next
check boundary and raises :class:`InvariantViolation` naming the
component and the numbers that disagree.

The checks only run at cycle-loop boundaries (between simulated
cycles), where the event-driven state is quiescent: no callback is
mid-flight, so a request is in *exactly one* of the scheduler queue, an
MSHR waiter list, or a bank pending queue.
"""

from __future__ import annotations

from repro.coyote.errors import SimulationError
from repro.memhier.noc import MeshNoC
from repro.resilience import introspect


class InvariantViolation(SimulationError):
    """A conservation law of the simulation state no longer holds.

    ``violations`` is the structured list of everything the check found
    wrong (each entry names the invariant and the offending component);
    ``cycle`` is the check cycle.
    """

    def __init__(self, message: str, violations: list[dict], cycle: int):
        super().__init__(message, cycle=cycle)
        self.violations = violations
        self.cycle = cycle


class InvariantChecker:
    """Runs the conservation checks every ``interval`` cycles.

    The orchestrator calls :meth:`maybe_check` at its loop-boundary
    heartbeat sites; :meth:`check` can also be called directly (tests,
    post-mortem inspection) and returns the violation list instead of
    raising when ``raise_on_violation`` is False.
    """

    def __init__(self, orchestrator, interval: int):
        if interval < 1:
            raise ValueError(
                f"invariant interval must be >= 1, got {interval}")
        self.orchestrator = orchestrator
        self.interval = interval
        self.checks_run = 0
        self._next_check = interval
        self._last_cycle = -1
        self._last_events_fired = -1

    def maybe_check(self, cycle: int) -> None:
        """Run the full check once ``interval`` cycles have passed."""
        if cycle < self._next_check:
            return
        self._next_check = cycle + self.interval
        self.check()

    # -- the checks ------------------------------------------------------------

    def check(self, raise_on_violation: bool = True) -> list[dict]:
        """Run every conservation check against the live state."""
        orchestrator = self.orchestrator
        scheduler = orchestrator.scheduler
        cycle = scheduler.current_cycle
        violations: list[dict] = []

        # Time and event counts only move forward.
        if cycle < self._last_cycle:
            violations.append({
                "invariant": "monotonic_cycle",
                "component": "scheduler",
                "detail": f"cycle moved backwards: {self._last_cycle} "
                          f"-> {cycle}",
            })
        if scheduler.events_fired < self._last_events_fired:
            violations.append({
                "invariant": "monotonic_events",
                "component": "scheduler",
                "detail": f"events_fired moved backwards: "
                          f"{self._last_events_fired} -> "
                          f"{scheduler.events_fired}",
            })
        self._last_cycle = cycle
        self._last_events_fired = scheduler.events_fired

        # Request conservation: submitted == completed + physically
        # in flight.  A shortfall means a response was lost (a dropped
        # message or a real accounting bug); an excess means something
        # was counted twice.
        in_flight = introspect.in_flight_requests(orchestrator)
        outstanding = orchestrator.hierarchy.outstanding()
        if outstanding != len(in_flight):
            violations.append({
                "invariant": "request_conservation",
                "component": "hierarchy",
                "detail": f"{outstanding} requests outstanding by the "
                          f"books but {len(in_flight)} physically in "
                          f"flight",
                "outstanding": outstanding,
                "in_flight": len(in_flight),
            })

        # Scoreboard <-> hierarchy: every pending miss must have a
        # physical request that will eventually complete it.
        orphans = introspect.orphaned_misses(orchestrator, in_flight)
        if orphans:
            violations.append({
                "invariant": "no_orphaned_misses",
                "component": "scoreboard",
                "detail": "scoreboard entries with no physical request: "
                          + ", ".join(
                              f"miss {miss['miss_id']} of core "
                              f"{miss['core_id']}" for miss in orphans),
                "orphans": orphans,
            })

        # NoC flit conservation (mesh/torus contention model): the
        # link queues must neither lose nor duplicate messages, and the
        # occupancy gauge must agree with the event queue.
        noc = orchestrator.hierarchy.noc
        if isinstance(noc, MeshNoC):
            violations.extend(noc.check_conservation(
                introspect.in_network_messages(orchestrator)))

        # Scoreboard internal consistency: the per-register busy
        # refcounts must equal a recount over the pending misses.
        violations.extend(self._check_scoreboard(orchestrator))

        # Per-bank structural checks.
        for bank in orchestrator.hierarchy.all_cache_banks():
            violations.extend(self._check_bank(bank))

        self.checks_run += 1
        if violations and raise_on_violation:
            names = sorted({entry["invariant"] for entry in violations})
            raise InvariantViolation(
                f"invariant check failed at cycle {cycle}: "
                f"{len(violations)} violation(s) [{', '.join(names)}]; "
                f"first: {violations[0]['detail']}",
                violations, cycle)
        return violations

    @staticmethod
    def _check_scoreboard(orchestrator) -> list[dict]:
        scoreboard = orchestrator.scoreboard
        violations = []
        expected: dict[int, dict] = {}
        for miss in scoreboard.pending():
            per_core = expected.setdefault(miss.core_id, {})
            for reg in miss.registers:
                per_core[reg] = per_core.get(reg, 0) + 1
        for core in orchestrator.cores:
            core_id = core.core_id
            actual = scoreboard.busy_map(core_id)
            if actual != expected.get(core_id, {}):
                violations.append({
                    "invariant": "scoreboard_refcounts",
                    "component": f"core{core_id}",
                    "detail": f"core {core_id} busy-register refcounts "
                              f"disagree with its pending misses: "
                              f"busy={dict(actual)} "
                              f"expected={expected.get(core_id, {})}",
                })
        return violations

    @staticmethod
    def _check_bank(bank) -> list[dict]:
        violations = []
        mshrs = len(bank._mshrs)
        if mshrs > bank.max_in_flight:
            violations.append({
                "invariant": "mshr_capacity",
                "component": bank.path,
                "detail": f"{bank.path} holds {mshrs} MSHRs, limit "
                          f"{bank.max_in_flight}",
            })
        occupancy = bank._stat_occupancy.value
        if occupancy != mshrs:
            violations.append({
                "invariant": "mshr_gauge",
                "component": bank.path,
                "detail": f"{bank.path} occupancy gauge says "
                          f"{occupancy} but the MSHR file holds {mshrs}",
            })
        queued = bank._stat_queue.value
        if queued != len(bank._pending):
            violations.append({
                "invariant": "pending_gauge",
                "component": bank.path,
                "detail": f"{bank.path} pending gauge says {queued} but "
                          f"the queue holds {len(bank._pending)}",
            })
        # A line with an in-flight fill must not simultaneously be
        # resident: its install happens only when the fill returns, and
        # a resident line never allocates an MSHR (the late-hit
        # re-check guarantees it).
        resident = [line for line in bank._mshrs
                    if bank.tags.contains(line)]
        if resident:
            violations.append({
                "invariant": "mshr_tags_disjoint",
                "component": bank.path,
                "detail": f"{bank.path} lines both resident and "
                          f"awaiting a fill: "
                          + ", ".join(f"{line:#x}" for line in resident),
            })
        return violations
