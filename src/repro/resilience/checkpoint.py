"""Checkpoint/restore: serialize a paused simulation and resume it.

A long campaign should survive preemption.  The approach is whole-state
serialization: a :class:`~repro.coyote.simulation.Simulation` paused at
a cycle boundary (``run(pause_at=N)``) is one self-contained object
graph — harts, functional memory, scheduler queue, MSHRs, scoreboard,
statistics, telemetry builders, miss-trace recorder, fault-injector RNG
— and the orchestrator keeps that graph free of unpicklable members
(no lambdas, no open files), so ``pickle`` captures all of it.  A
resumed run is bit-identical to an uninterrupted one: the differential
test compares final statistics and Paraver traces byte for byte.

The module deliberately imports nothing from ``repro.coyote`` beyond
the errors module: ``repro.coyote.config`` imports this package for
``ResilienceConfig``, so anything heavier here would cycle.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from repro.coyote.errors import SimulationError

# Bump when the checkpoint payload layout changes; loads refuse a
# mismatched format instead of failing somewhere inside unpickling.
CHECKPOINT_FORMAT = 1


class CheckpointError(SimulationError):
    """Saving or loading a checkpoint failed."""


class CampaignCorruptError(CheckpointError):
    """A campaign file on disk is corrupt (truncated, unreadable
    pickle, or checksum mismatch).

    Structured so callers can tell *damage* apart from *misuse* (axes
    mismatch, unsupported format — plain :class:`CheckpointError`):
    the parallel engine treats a corrupt checkpoint as a cold start
    with a warning, while refusing to guess about a mismatched one.
    ``path`` names the offending file.
    """

    def __init__(self, message: str, *, path=None, **details):
        super().__init__(message, **details)
        self.path = path


def save_checkpoint(simulation, path: str | Path,
                    metadata: dict | None = None) -> Path:
    """Serialize a paused (or not-yet-started) simulation to ``path``.

    ``metadata`` is an arbitrary JSON-like dict stored alongside the
    state (the CLI records the kernel name, size and core count so a
    later ``--resume`` can rebuild the matching workload for
    verification).  Returns the written path.
    """
    orchestrator = simulation.orchestrator
    if orchestrator._started and not orchestrator.paused:
        raise CheckpointError(
            "only a paused simulation can be checkpointed: call "
            "run(pause_at=...) and check .paused first",
            cycle=orchestrator.scheduler.current_cycle)
    # Code-derived caches — decoded (instruction, executor) pairs and
    # translated block closures — are pure caches, rebuilt on demand;
    # dropping them through the one invalidation hook keeps the
    # checkpoint small and guarantees no compiled code reference can
    # leak into the pickle.
    for core in orchestrator.cores:
        core.hart.drop_code_caches()
    payload = {
        "format": CHECKPOINT_FORMAT,
        "metadata": dict(metadata or {}),
        "cycle": orchestrator.scheduler.current_cycle,
        "simulation": simulation,
    }
    path = Path(path)
    try:
        with path.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        # A stray unpicklable member (e.g. a profiler handle) — remove
        # the partial file so a truncated checkpoint can't be resumed.
        path.unlink(missing_ok=True)
        raise CheckpointError(
            f"simulation state is not serialisable: {exc}") from exc
    return path


def load_checkpoint(path: str | Path):
    """Read a checkpoint; returns ``(simulation, metadata)``.

    The returned simulation continues with ``run()`` (optionally with
    another ``pause_at``) exactly where the saved one stopped.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, ImportError,
            AttributeError) as exc:
        raise CheckpointError(
            f"{path} is not a readable checkpoint: {exc}") from exc
    if not isinstance(payload, dict) or "format" not in payload:
        raise CheckpointError(f"{path} is not a checkpoint file")
    if payload["format"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: checkpoint format {payload['format']} is not "
            f"supported (expected {CHECKPOINT_FORMAT})")
    return payload["simulation"], payload["metadata"]


def restore_simulation(path: str | Path):
    """Convenience wrapper returning just the simulation object."""
    simulation, _metadata = load_checkpoint(path)
    return simulation


# -- campaign checkpoints ----------------------------------------------------
#
# A design-space sweep is a campaign of independent simulations; its
# checkpoint is simply the set of completed points.  The parallel sweep
# engine appends each finished point here, so a preempted overnight
# campaign warm-starts from what it already computed instead of
# recomputing the survivors alongside the stragglers.

CAMPAIGN_FORMAT = 2

# Format-2 campaign files are a one-line header followed by the pickled
# payload: b"coyote-campaign 2 <sha256-of-payload>\n" + pickle bytes.
# The checksum turns silent on-disk corruption (a flipped bit, a
# truncated tail that still unpickles) into a structured
# CampaignCorruptError instead of a wrong-but-loadable campaign.
_CAMPAIGN_MAGIC = b"coyote-campaign"


def save_campaign(path: str | Path, axes_key: str,
                  completed: dict) -> Path:
    """Atomically persist the completed points of a sweep campaign.

    ``axes_key`` is a canonical description of the sweep's axes; loads
    refuse a campaign file recorded for different axes.  The write goes
    through a temporary file and ``os.replace`` so a crash mid-write
    can never leave a truncated campaign behind, and the payload is
    sha256-checksummed so corruption is detected on load.
    """
    path = Path(path)
    payload = {
        "format": CAMPAIGN_FORMAT,
        "axes_key": axes_key,
        "completed": completed,
    }
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise CheckpointError(
            f"campaign state is not serialisable: {exc}") from exc
    digest = hashlib.sha256(body).hexdigest()
    header = b"%s %d %s\n" % (_CAMPAIGN_MAGIC, CAMPAIGN_FORMAT,
                              digest.encode("ascii"))
    scratch = path.with_name(path.name + ".tmp")
    with scratch.open("wb") as handle:
        handle.write(header)
        handle.write(body)
    os.replace(scratch, path)
    return path


def load_campaign(path: str | Path, axes_key: str) -> dict:
    """Read the completed points of a campaign ({} when none exists).

    Raises :class:`CampaignCorruptError` for a damaged file (truncation,
    unreadable pickle, checksum mismatch) and plain
    :class:`CheckpointError` for misuse (unsupported format, a campaign
    recorded for different axes) — resuming the wrong campaign silently
    would be worse than recomputing.
    """
    path = Path(path)
    if not path.exists():
        return {}
    with path.open("rb") as handle:
        header = handle.readline(256)
        parts = header.split()
        if len(parts) != 3 or parts[0] != _CAMPAIGN_MAGIC:
            # Pre-checksum (format 1) files are a bare pickle.
            return _load_legacy_campaign(path, axes_key)
        try:
            version = int(parts[1])
        except ValueError:
            raise CampaignCorruptError(
                f"{path} has a mangled campaign header", path=path)
        if version != CAMPAIGN_FORMAT:
            raise CheckpointError(
                f"{path}: campaign format {version} is not supported "
                f"(expected {CAMPAIGN_FORMAT})")
        body = handle.read()
    digest = hashlib.sha256(body).hexdigest()
    if digest.encode("ascii") != parts[2]:
        raise CampaignCorruptError(
            f"{path} failed its checksum (campaign file is corrupt "
            f"or truncated)", path=path)
    try:
        payload = pickle.loads(body)
    except (pickle.UnpicklingError, EOFError, ImportError,
            AttributeError, IndexError) as exc:
        raise CampaignCorruptError(
            f"{path} is not a readable campaign file: {exc}",
            path=path) from exc
    return _validate_campaign(path, payload, axes_key)


def _load_legacy_campaign(path: Path, axes_key: str) -> dict:
    """Read a pre-checksum (format 1) campaign file."""
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, ImportError,
            AttributeError, IndexError) as exc:
        raise CampaignCorruptError(
            f"{path} is not a readable campaign file: {exc}",
            path=path) from exc
    if not isinstance(payload, dict) or "format" not in payload:
        raise CampaignCorruptError(
            f"{path} is not a campaign file", path=path)
    if payload["format"] != 1:
        raise CheckpointError(
            f"{path}: campaign format {payload['format']} is not "
            f"supported (expected <= {CAMPAIGN_FORMAT})")
    return _validate_campaign(path, payload, axes_key)


def _validate_campaign(path: Path, payload, axes_key: str) -> dict:
    if not isinstance(payload, dict) or "axes_key" not in payload:
        raise CampaignCorruptError(
            f"{path} is not a campaign file", path=path)
    if payload["axes_key"] != axes_key:
        raise CheckpointError(
            f"{path} was recorded for a different sweep "
            f"(axes {payload['axes_key']}, expected {axes_key})")
    return payload["completed"]
