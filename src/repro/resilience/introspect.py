"""Read-only views over live simulation state.

Shared by the watchdog (diagnostic snapshots) and the invariant checker
(conservation checks): both need to answer "where, physically, is every
in-flight request right now?"  An outstanding L1 miss lives in exactly
one of three places — the scheduler's event queue (in transit on the
NoC or inside a latency), a bank's MSHR waiter list, or a bank's
pending queue — so scanning those three containers accounts for every
request the hierarchy still owes a response.
"""

from __future__ import annotations

from repro.memhier.noc import NocMessage
from repro.memhier.request import MemRequest


def _describe_request(request: MemRequest, now: int, where: str) -> dict:
    return {
        "request_id": request.request_id,
        "member_ids": list(request.member_ids),
        "core_id": request.core_id,
        "line_address": request.line_address,
        "kind": request.kind.value,
        "issue_cycle": request.issue_cycle,
        "age": now - request.issue_cycle,
        "where": where,
    }


def in_flight_requests(orchestrator) -> list[dict]:
    """Every response-needing request physically present in the
    hierarchy, with its location and age."""
    now = orchestrator.scheduler.current_cycle
    hierarchy = orchestrator.hierarchy
    found: list[dict] = []

    def wants_response(request) -> bool:
        return (isinstance(request, MemRequest)
                and request.request_id >= 0
                and request.kind.needs_response
                and not request.duplicate)

    for _cycle, _priority, _seq, _callback, args \
            in orchestrator.scheduler.iter_events():
        for arg in args:
            if isinstance(arg, NocMessage):
                # Contention-model traffic wraps its payload in a
                # NocMessage while hopping between routers.
                arg = arg.payload
            if wants_response(arg):
                found.append(_describe_request(arg, now, "scheduler"))
    for bank in hierarchy.all_cache_banks():
        for line, waiters in bank._mshrs.items():
            for waiter in waiters:
                if wants_response(waiter):
                    found.append(_describe_request(
                        waiter, now, f"{bank.path}.mshr[{line:#x}]"))
        for queued in bank._pending:
            if wants_response(queued):
                found.append(_describe_request(
                    queued, now, f"{bank.path}.pending_queue"))
    return found


def in_network_messages(orchestrator) -> int:
    """The number of :class:`NocMessage` objects physically present in
    the scheduler — the ground truth the mesh/torus occupancy gauge and
    flit-conservation invariant are checked against.  At a cycle-loop
    boundary every in-network message owns exactly one pending event
    (its next hop or its delivery)."""
    count = 0
    for _cycle, _priority, _seq, _callback, args \
            in orchestrator.scheduler.iter_events():
        for arg in args:
            if isinstance(arg, NocMessage):
                count += 1
    return count


def core_states(orchestrator) -> list[dict]:
    """Per-core execution/stall state at the current cycle."""
    now = orchestrator.scheduler.current_cycle
    result = []
    for core, state in zip(orchestrator.cores, orchestrator._states):
        core_id = core.core_id
        if core.halted:
            mode = "halted"
        elif core_id in orchestrator._active_set:
            mode = "active"
        elif state.waiting_fetch_id is not None:
            mode = "fetch-stall"
        elif core_id in orchestrator._raw_waiting:
            mode = "raw-stall"
        else:
            mode = "stalled"
        entry = {
            "core_id": core_id,
            "pc": core.hart.pc,
            "state": mode,
            "instructions": core.instructions,
            "waiting_fetch_id": state.waiting_fetch_id,
            "busy_registers": sorted(
                f"{bank}{index}" for bank, index
                in orchestrator.scoreboard.busy_registers(core_id)),
        }
        if mode not in ("active", "halted"):
            entry["stalled_for"] = now - state.stall_start
        result.append(entry)
    return result


def pending_misses(orchestrator) -> list[dict]:
    """Every scoreboard entry still awaiting completion."""
    return [
        {
            "miss_id": miss.miss_id,
            "core_id": miss.core_id,
            "registers": sorted(f"{bank}{index}"
                                for bank, index in miss.registers),
        }
        for miss in orchestrator.scoreboard.pending()
    ]


def orphaned_misses(orchestrator,
                    in_flight: list[dict] | None = None) -> list[dict]:
    """Scoreboard entries with no physically-present request.

    A non-empty result means a response was lost (a dropped message, or
    a real model bug): the core will wait forever.  This is the needle
    a deadlock diagnosis needs — *which* request vanished.
    """
    if in_flight is None:
        in_flight = in_flight_requests(orchestrator)
    present: set[int] = set()
    for entry in in_flight:
        present.add(entry["request_id"])
        present.update(entry["member_ids"])
    return [miss for miss in pending_misses(orchestrator)
            if miss["miss_id"] not in present]


def bank_states(orchestrator) -> list[dict]:
    """MSHR and queue occupancy of every cache bank."""
    now = orchestrator.scheduler.current_cycle
    result = []
    for bank in orchestrator.hierarchy.all_cache_banks():
        result.append({
            "bank": bank.path,
            "mshrs": {
                f"{line:#x}": {
                    "waiters": [waiter.request_id for waiter in waiters],
                    "oldest_age": max(
                        (now - waiter.issue_cycle for waiter in waiters),
                        default=0),
                }
                for line, waiters in bank._mshrs.items()
            },
            "pending_queue": len(bank._pending),
        })
    return result


def noc_state(orchestrator) -> dict:
    """Interconnect congestion at the current cycle.

    Under the contention-modelled mesh/torus this is the structured
    ``congestion_report`` (per-link/per-router traversal counts and
    queueing totals) plus the *live* arbitration frontier: for each
    directed link whose next free slot lies in the future, how many
    cycles of backlog have already been granted — the queue depth a
    message arriving now would sit behind.  A deadlock snapshot showing
    a deep ``busy_links`` entry names the wire the wedge is parked on.

    The latency-only crossbar has no queues; its state is the
    per-endpoint port-wire counts.
    """
    noc = orchestrator.hierarchy.noc
    now = orchestrator.scheduler.current_cycle
    if hasattr(noc, "congestion_report"):
        state = noc.congestion_report()
        state["topology"] = noc.noc_config.kind
        busy = {}
        for ((fx, fy), (tx, ty)), (depart, used) \
                in sorted(noc._link_next.items()):
            backlog = depart - now
            if backlog > 0:
                busy[f"({fx},{fy})->({tx},{ty})"] = {
                    "backlog_cycles": backlog,
                    "slots_used": used,
                }
        state["busy_links"] = busy
        return state
    return {
        "topology": "crossbar",
        "ports": {f"{endpoint}.{direction}": count
                  for (endpoint, direction), count
                  in sorted(noc.link_utilisation().items())},
    }


def memctrl_states(orchestrator) -> list[dict]:
    """Channel backlog of every memory controller."""
    now = orchestrator.scheduler.current_cycle
    return [
        {
            "controller": mc.path,
            "busy_until": mc.busy_until,
            "backlog_cycles": max(0, mc.busy_until - now),
        }
        for mc in orchestrator.hierarchy.memory_controllers
    ]
