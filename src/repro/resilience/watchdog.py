"""Forward-progress watchdog and structured deadlock diagnostics.

A hang used to surface as a bare cycle-budget ``SimulationError`` after
millions of wasted cycles.  The watchdog detects the wedge as it
happens and raises :class:`DeadlockError` carrying a full diagnostic
snapshot: per-core PC and stall state, scheduler queue depth and next
event, every bank's MSHRs and pending queues, the ages of every
in-flight request, the interconnect's congestion state (per-link
traversal counts plus live queue backlogs under the mesh/torus
contention model), and — the usual smoking gun — the scoreboard
entries whose request has physically vanished.

Two trigger conditions:

* *hard wedge* — neither an instruction retired nor a scheduler event
  fired for ``interval`` cycles: nothing can ever change again short of
  an external actor;
* *soft wedge* — events still fire but no instruction has retired for
  ``10 * interval`` cycles (a pathological feedback loop, e.g. a
  self-sustaining event storm).  The factor keeps legitimate long
  memory stalls from tripping it.

The orchestrator also raises :class:`DeadlockError` directly (with the
same snapshot) when every live core is stalled and the event queue is
empty — that situation is provably permanent and needs no window.
"""

from __future__ import annotations

from repro.coyote.errors import SimulationError
from repro.resilience import introspect

SOFT_WEDGE_FACTOR = 10


class DeadlockError(SimulationError):
    """The simulation stopped making forward progress.

    ``snapshot`` is the structured diagnostic dict from
    :func:`build_snapshot`; the stuck cores and any orphaned in-flight
    requests are named directly in the message.
    """

    def __init__(self, message: str, snapshot: dict):
        super().__init__(message)
        self.snapshot = snapshot


def build_snapshot(orchestrator, reason: str = "") -> dict:
    """Collect the full forward-progress diagnostic state."""
    scheduler = orchestrator.scheduler
    in_flight = introspect.in_flight_requests(orchestrator)
    snapshot = {
        "reason": reason,
        "cycle": scheduler.current_cycle,
        "scheduler": {
            "current_cycle": scheduler.current_cycle,
            "pending_events": scheduler.pending_events,
            "next_event_cycle": scheduler.next_event_cycle(),
            "events_fired": scheduler.events_fired,
        },
        "cores": introspect.core_states(orchestrator),
        "pending_misses": introspect.pending_misses(orchestrator),
        "in_flight": in_flight,
        "orphaned_misses": introspect.orphaned_misses(orchestrator,
                                                      in_flight),
        "banks": introspect.bank_states(orchestrator),
        "noc": introspect.noc_state(orchestrator),
        "memory_controllers": introspect.memctrl_states(orchestrator),
        "hierarchy_outstanding": orchestrator.hierarchy.outstanding(),
    }
    return snapshot


def deadlock_error(orchestrator, reason: str) -> DeadlockError:
    """Build a :class:`DeadlockError` naming the stuck cores and any
    orphaned requests."""
    snapshot = build_snapshot(orchestrator, reason)
    stuck = [entry["core_id"] for entry in snapshot["cores"]
             if entry["state"] not in ("active", "halted")]
    parts = [f"deadlock at cycle {snapshot['cycle']}: {reason}"]
    if stuck:
        parts.append(f"stuck cores: {stuck}")
    orphans = snapshot["orphaned_misses"]
    if orphans:
        parts.append(
            "orphaned in-flight requests (no physical message will ever "
            "complete them): "
            + ", ".join(f"miss {miss['miss_id']} of core "
                        f"{miss['core_id']}" for miss in orphans))
    return DeadlockError("; ".join(parts), snapshot)


class Watchdog:
    """Periodic forward-progress check over (cycle, retires, events)."""

    def __init__(self, interval: int, orchestrator):
        if interval < 1:
            raise ValueError(f"watchdog interval must be >= 1, "
                             f"got {interval}")
        self.interval = interval
        self.orchestrator = orchestrator
        self._last_cycle: int | None = None
        self._last_instructions = 0
        self._last_events = 0
        # Cycle of the last observed instruction retirement.
        self._last_retire_cycle: int | None = None

    def observe(self, cycle: int, instructions: int,
                events_fired: int) -> None:
        """Feed one progress observation; raises on a detected wedge.

        ``instructions`` may restart from zero across checkpoint
        resumes — only deltas matter.
        """
        if self._last_cycle is None:
            self._last_cycle = cycle
            self._last_instructions = instructions
            self._last_events = events_fired
            self._last_retire_cycle = cycle
            return
        if instructions != self._last_instructions:
            self._last_retire_cycle = cycle
        retired = instructions != self._last_instructions
        fired = events_fired != self._last_events
        if not retired and not fired \
                and cycle - self._last_cycle >= self.interval:
            raise deadlock_error(
                self.orchestrator,
                f"no instruction retired and no event fired in the last "
                f"{cycle - self._last_cycle} cycles "
                f"(watchdog window {self.interval})")
        if cycle - self._last_retire_cycle \
                >= SOFT_WEDGE_FACTOR * self.interval:
            raise deadlock_error(
                self.orchestrator,
                f"no instruction retired in the last "
                f"{cycle - self._last_retire_cycle} cycles although "
                f"events kept firing (soft-wedge window "
                f"{SOFT_WEDGE_FACTOR * self.interval})")
        if retired or fired:
            self._last_cycle = cycle
            self._last_instructions = instructions
            self._last_events = events_fired
