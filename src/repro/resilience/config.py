"""Configuration of the resilience subsystem.

Kept free of simulator imports so :mod:`repro.coyote.config` can embed a
:class:`ResilienceConfig` without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

FAULT_TARGETS = ("l2bank", "memctrl", "noc")
FAULT_KINDS = ("delay", "duplicate", "blackout", "drop")

# Effectively-unbounded window end ("for the rest of the run").
FOREVER = 1 << 62


@dataclass
class FaultSpec:
    """One fault to inject into the modelled hierarchy.

    ``target`` selects the component class; ``index`` the instance
    (``-1`` = every instance, and the only valid index for ``noc``).
    The fault is live for messages routed in cycles
    ``[start, end)``.  Kinds:

    * ``delay`` — add ``extra`` (+ seeded ``jitter``) cycles of latency;
    * ``duplicate`` — deliver hierarchy-internal traffic (fills and
      writebacks) a second time after ``extra`` additional cycles.  The
      tile-side L1 interface is modelled as reliable, so messages whose
      completion must be exactly-once are never duplicated;
    * ``blackout`` — the target refuses service: affected messages are
      deferred until the window closes (timing-only, nothing is lost);
    * ``drop`` — the message disappears.  This intentionally violates
      the model's delivery guarantees; it exists to stress-test the
      watchdog and invariant checker, and is expected to wedge the run.

    ``probability`` < 1 applies the fault per-message via the campaign's
    seeded PRNG, so a campaign replays bit-identically for a given seed.
    """

    target: str = "noc"
    index: int = -1
    kind: str = "delay"
    start: int = 0
    end: int = FOREVER
    extra: int = 0
    jitter: int = 0
    probability: float = 1.0

    def validate(self) -> None:
        if self.target not in FAULT_TARGETS:
            raise ValueError(f"unknown fault target {self.target!r} "
                             f"(expected one of {FAULT_TARGETS})")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if self.target == "noc" and self.index != -1:
            raise ValueError("noc faults apply to every link; index must "
                             "be -1")
        if self.index < -1:
            raise ValueError(f"fault index must be >= -1, got {self.index}")
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid fault window [{self.start}, "
                             f"{self.end})")
        if self.extra < 0 or self.jitter < 0:
            raise ValueError("fault extra/jitter must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], "
                             f"got {self.probability}")


@dataclass
class ResilienceConfig:
    """All resilience knobs of one simulation (everything off by default
    — a default-configured run pays nothing for this subsystem)."""

    faults: list[FaultSpec] = field(default_factory=list)
    fault_seed: int = 0
    # Forward-progress watchdog: raise DeadlockError when neither an
    # instruction retires nor an event fires for this many cycles
    # (0 = disabled).  A no-retire-but-events-still-firing wedge (e.g. a
    # pathological feedback loop) trips at 10x the window.
    watchdog_cycles: int = 0
    # Run the invariant checker every N cycles (0 = disabled).
    invariant_interval: int = 0

    @property
    def enabled(self) -> bool:
        return bool(self.faults or self.watchdog_cycles
                    or self.invariant_interval)

    def validate(self) -> None:
        if self.watchdog_cycles < 0:
            raise ValueError(f"watchdog_cycles must be >= 0, "
                             f"got {self.watchdog_cycles}")
        if self.invariant_interval < 0:
            raise ValueError(f"invariant_interval must be >= 0, "
                             f"got {self.invariant_interval}")
        if self.fault_seed < 0:
            raise ValueError(f"fault_seed must be >= 0, "
                             f"got {self.fault_seed}")
        for spec in self.faults:
            spec.validate()

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceConfig":
        """Rebuild from ``dataclasses.asdict`` output (unknown keys
        raise, so stale config files fail loudly)."""
        data = dict(data)
        faults = [spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
                  for spec in data.pop("faults", [])]
        known = set(cls.__dataclass_fields__) - {"faults"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown resilience config keys: {sorted(unknown)}")
        return cls(faults=faults, **data)
