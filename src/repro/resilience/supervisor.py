"""The campaign supervisor: policies and bookkeeping for supervised sweeps.

A design-space campaign is only as robust as its weakest point: one
wedged worker (infinite loop), one leaking worker (runaway RSS), or one
transient host failure (fork exhaustion) can wedge a multi-hour sweep.
This module holds the *decision* layer of the supervised runtime — the
process mechanics (pipes, signals, ``connection.wait``) live in
:mod:`repro.coyote.parallel`, which consults these classes:

* :class:`SupervisorPolicy` — the knobs: per-point wall-clock timeout,
  heartbeat cadence and miss budget, per-worker RSS ceiling, the
  :class:`RetryPolicy`, and the degradation threshold.
* :class:`Supervisor` — parent-side bookkeeping: per-point attempt
  history, deadline checks, retry-vs-quarantine decisions, and the
  pool-degradation ladder (``N → N/2 → … → 1 → serial``).
* :class:`QuarantinedPoint` — the structured failure recorded on a
  point that exhausted its retries: full attempt history (outcome,
  exit code / signal, stderr tail, heartbeat trail), picklable so it
  survives the campaign checkpoint and is never re-run on warm restart.
* :class:`DegradationEvent` — one step down the pool ladder, recorded
  on the resulting :class:`~repro.coyote.sweep.SweepTable`.

Determinism: backoff jitter is drawn from a PRNG seeded by
``(policy.seed, point index, attempt)``, never from wall time, so a
supervised campaign's retry schedule replays exactly under a fixed
seed (the property the chaos tests rely on).

Like :mod:`repro.resilience.checkpoint`, this module imports nothing
from ``repro.coyote`` beyond the errors module, keeping it cycle-free.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from repro.coyote.errors import SimulationError

# Outcomes a supervised attempt can end with (besides a clean result).
ATTEMPT_OUTCOMES = ("crash", "timeout", "heartbeat-lost", "rss-exceeded")

# How much of a dead worker's stderr is kept for diagnosis.
STDERR_TAIL_BYTES = 2048

# How many trailing heartbeats are kept per attempt.
HEARTBEAT_TRAIL = 16


class QuarantinedPoint(SimulationError):
    """A sweep point that exhausted its retries and was quarantined.

    Recorded as the point's ``error`` in the :class:`SweepTable` and the
    campaign checkpoint; a warm-restarted campaign loads it and never
    re-runs the point.  ``attempts`` (via the structured ``details``)
    is the full :class:`AttemptRecord` history.
    """


@dataclass
class AttemptRecord:
    """One failed attempt of one supervised sweep point."""

    attempt: int                 # 1-based
    outcome: str                 # one of ATTEMPT_OUTCOMES
    exit_code: int | None = None
    signal: int | None = None    # populated when exit_code is -signal
    stderr_tail: str = ""        # last ~2 KB of the worker's stderr
    heartbeats: list = field(default_factory=list)  # [(cycles, rss_mb)]
    backoff_seconds: float = 0.0  # delay scheduled before the retry


@dataclass
class DegradationEvent:
    """One step down the pool ladder (``to_workers == 0`` = serial)."""

    reason: str
    from_workers: int
    to_workers: int
    pool_failures: int


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``max_attempts`` counts every execution (1 = no retries).  The
    delay before attempt ``k + 1`` is drawn deterministically in
    ``[span/2, span]`` where ``span = min(max_delay, base_delay *
    2**(k-1))`` — exponential growth, bounded above, never fully
    collapsing to zero jitter.
    """

    max_attempts: int = 1
    base_delay: float = 0.25
    max_delay: float = 30.0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})")

    def backoff_seconds(self, attempt: int, *, seed: int = 0,
                        index: int = 0) -> float:
        """The delay before re-dispatching after failed ``attempt``.

        Deterministic: the jitter PRNG is seeded by ``(seed, index,
        attempt)``, so a fixed supervisor seed replays the exact retry
        schedule — wall time never enters the draw.
        """
        if self.base_delay <= 0:
            return 0.0
        span = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        rng = random.Random(1_000_003 * seed + 1_009 * index + attempt)
        return span / 2 + rng.random() * span / 2


@dataclass
class SupervisorPolicy:
    """Every knob of the supervised campaign runtime.

    The default policy is *unsupervised*: no timeout, no heartbeats, no
    RSS ceiling, one attempt — exactly the pre-supervisor pool
    behaviour (a dead worker records a
    :class:`~repro.coyote.parallel.WorkerCrash`).  Setting any
    supervision knob flips :attr:`supervised` and the pool runs every
    point under the full lifecycle (a crash-class failure then records
    a :class:`QuarantinedPoint` once retries are exhausted).
    """

    point_timeout_seconds: float | None = None
    heartbeat_interval_seconds: float = 0.0   # 0 = heartbeats off
    heartbeat_misses: int = 5   # missed intervals before declaring loss
    max_rss_mb: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0               # backoff-jitter PRNG seed
    term_grace_seconds: float = 2.0   # SIGTERM -> SIGKILL escalation
    degrade_after: int = 3      # pool failures per ladder step (0 = never)

    @property
    def supervised(self) -> bool:
        """Whether any supervision feature is active."""
        return bool(self.point_timeout_seconds is not None
                    or self.heartbeat_interval_seconds > 0
                    or self.max_rss_mb is not None
                    or self.retry.max_attempts > 1)

    def validate(self) -> None:
        if (self.point_timeout_seconds is not None
                and self.point_timeout_seconds <= 0):
            raise ValueError(f"point_timeout_seconds must be > 0, "
                             f"got {self.point_timeout_seconds}")
        if self.heartbeat_interval_seconds < 0:
            raise ValueError(f"heartbeat_interval_seconds must be >= 0, "
                             f"got {self.heartbeat_interval_seconds}")
        if self.heartbeat_misses < 1:
            raise ValueError(f"heartbeat_misses must be >= 1, "
                             f"got {self.heartbeat_misses}")
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be > 0, "
                             f"got {self.max_rss_mb}")
        if self.term_grace_seconds < 0:
            raise ValueError(f"term_grace_seconds must be >= 0, "
                             f"got {self.term_grace_seconds}")
        if self.degrade_after < 0:
            raise ValueError(f"degrade_after must be >= 0, "
                             f"got {self.degrade_after}")
        self.retry.validate()


class Supervisor:
    """Parent-side bookkeeping of one supervised campaign.

    The pool loop in :mod:`repro.coyote.parallel` owns the processes;
    this class owns the decisions: is an attempt overdue, does a dead
    worker get a retry or a quarantine record, and when do repeated
    pool-level failures step the worker count down.
    """

    def __init__(self, policy: SupervisorPolicy, monitor=None,
                 clock=time.monotonic):
        policy.validate()
        self.policy = policy
        self.monitor = monitor
        self._clock = clock
        self.attempts: dict[int, list[AttemptRecord]] = {}
        self.quarantined: dict[int, QuarantinedPoint] = {}
        self.degradations: list[DegradationEvent] = []
        self.pool_failures = 0

    def attempt_number(self, index: int) -> int:
        """The 1-based number of the point's *next* attempt."""
        return len(self.attempts.get(index, ())) + 1

    def overdue(self, started: float, last_beat: float,
                now: float) -> str | None:
        """Deadline check for one running attempt.

        Returns ``"timeout"`` (wall clock), ``"heartbeat-lost"``
        (heartbeat deadline), or ``None`` while healthy.
        """
        policy = self.policy
        if (policy.point_timeout_seconds is not None
                and now - started > policy.point_timeout_seconds):
            return "timeout"
        interval = policy.heartbeat_interval_seconds
        if interval > 0 and now - last_beat > interval * policy.heartbeat_misses:
            return "heartbeat-lost"
        return None

    def record_failure(self, index: int, settings: dict, outcome: str,
                       exit_code: int | None, stderr_tail: str,
                       heartbeats: list) -> tuple[str, object]:
        """Record one failed attempt; decide retry vs quarantine.

        Returns ``("retry", delay_seconds)`` while attempts remain, or
        ``("quarantine", QuarantinedPoint)`` once they are exhausted.
        """
        record = AttemptRecord(
            attempt=self.attempt_number(index), outcome=outcome,
            exit_code=exit_code,
            signal=(-exit_code if exit_code is not None and exit_code < 0
                    else None),
            stderr_tail=stderr_tail,
            heartbeats=list(heartbeats)[-HEARTBEAT_TRAIL:])
        trail = self.attempts.setdefault(index, [])
        trail.append(record)
        retry = self.policy.retry
        if len(trail) < retry.max_attempts:
            delay = retry.backoff_seconds(len(trail), seed=self.policy.seed,
                                          index=index)
            record.backoff_seconds = delay
            if self.monitor is not None:
                self.monitor.retry_scheduled(index, settings,
                                             record.attempt, delay)
            return "retry", delay
        suffix = (f" (exit code {exit_code})" if exit_code is not None
                  else "")
        error = QuarantinedPoint(
            f"sweep point {settings} quarantined after {len(trail)} "
            f"attempt(s); last outcome: {outcome}{suffix}",
            attempts=list(trail))
        self.quarantined[index] = error
        if self.monitor is not None:
            self.monitor.quarantined(index, settings, len(trail))
        return "quarantine", error

    def pool_failure(self, reason: str,
                     current_workers: int) -> int | None:
        """Register a pool-level failure (fork failure, RSS trip).

        Every ``policy.degrade_after``-th failure steps the ladder:
        returns the new worker count (``0`` = run the rest serially),
        or ``None`` when the count is unchanged.
        """
        self.pool_failures += 1
        after = self.policy.degrade_after
        if not after or self.pool_failures % after:
            return None
        to_workers = current_workers // 2 if current_workers > 1 else 0
        event = DegradationEvent(
            reason=reason, from_workers=current_workers,
            to_workers=to_workers, pool_failures=self.pool_failures)
        self.degradations.append(event)
        if self.monitor is not None:
            self.monitor.degraded(event)
        return to_workers


# -- worker-side helpers -----------------------------------------------------

# Test hook: a chaos workload can flip this (inside the worker process)
# to simulate a wedge whose heartbeat thread has also stopped.
_SUPPRESS_HEARTBEATS = False


def suppress_heartbeats(value: bool = True) -> None:
    """Chaos-test hook: silence this process's heartbeat sender."""
    global _SUPPRESS_HEARTBEATS
    _SUPPRESS_HEARTBEATS = value


def heartbeats_suppressed() -> bool:
    return _SUPPRESS_HEARTBEATS


def worker_rss_mb() -> float:
    """This process's peak RSS in MB (0.0 where unavailable).

    Uses ``resource.getrusage`` — peak, not instantaneous, which is the
    right guard semantics for a leak ceiling (a worker that ever
    crossed the ceiling stays over it).  ``ru_maxrss`` is KB on Linux.
    """
    try:
        import resource
    except ImportError:
        return 0.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def read_stderr_tail(path, limit: int = STDERR_TAIL_BYTES) -> str:
    """The last ``limit`` bytes of a worker's captured stderr."""
    if path is None:
        return ""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(max(0, size - limit))
            return handle.read().decode("utf-8", "replace").strip()
    except OSError:
        return ""
