"""Resilience subsystem: fault injection, forward-progress watchdog,
checkpoint/restore, and invariant checking.

Long design-space sweeps only pay off when they finish — and when a
wrong model fails *loudly and diagnosably* instead of spinning until a
bare cycle-budget error.  This package provides four cooperating,
deterministic tools (docs/RESILIENCE.md):

* :mod:`repro.resilience.faults` — a seeded, replayable fault-injection
  layer that delays, duplicates, blacks out, or (for watchdog stress
  tests) drops messages inside the modelled hierarchy.  Timing faults
  must never change functional results; any run that fails workload
  verification under timing faults has found a real model bug.
* :mod:`repro.resilience.watchdog` — forward-progress detection that
  converts a wedged simulation into a structured
  :class:`~repro.resilience.watchdog.DeadlockError` carrying a full
  diagnostic snapshot.
* :mod:`repro.resilience.checkpoint` — serialize complete simulation
  state to disk and resume bit-identically; also the campaign-level
  checkpoints the parallel sweep engine warm-starts from.
* :mod:`repro.resilience.invariants` — periodic conservation and
  consistency checks over the live simulation state.
* :mod:`repro.resilience.supervisor` — the supervised campaign
  runtime behind parallel sweeps: heartbeats, per-point timeouts,
  bounded retries with seeded backoff, poison-point quarantine, and
  graceful pool degradation.

The canonical import surface is :mod:`repro.api`; the blessed names
below are re-exported from there (lazily, to stay cycle-free).
"""

import importlib

# Names served from the repro.api facade (the canonical path).
_API_NAMES = frozenset({
    "AttemptRecord",
    "CheckpointError",
    "DeadlockError",
    "DegradationEvent",
    "FaultPlan",
    "FaultSpec",
    "QuarantinedPoint",
    "ResilienceConfig",
    "RetryPolicy",
    "SupervisorPolicy",
    "load_checkpoint",
    "restore_simulation",
    "save_checkpoint",
})

# Internal-but-stable names that stay below the facade.
_LOCAL_NAMES = {
    "FaultInjector": "repro.resilience.faults",
    "InvariantChecker": "repro.resilience.invariants",
    "InvariantViolation": "repro.resilience.invariants",
    "Supervisor": "repro.resilience.supervisor",
    "Watchdog": "repro.resilience.watchdog",
    "build_snapshot": "repro.resilience.watchdog",
    "load_campaign": "repro.resilience.checkpoint",
    "load_fault_plan": "repro.resilience.faults",
    "save_campaign": "repro.resilience.checkpoint",
}

__all__ = sorted(_API_NAMES | set(_LOCAL_NAMES))


def __getattr__(name: str):
    if name in _API_NAMES:
        api = importlib.import_module("repro.api")
        value = getattr(api, name)
    elif name in _LOCAL_NAMES:
        value = getattr(importlib.import_module(_LOCAL_NAMES[name]), name)
    else:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value  # cache: subsequent lookups skip this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
