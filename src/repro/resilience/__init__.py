"""Resilience subsystem: fault injection, forward-progress watchdog,
checkpoint/restore, and invariant checking.

Long design-space sweeps only pay off when they finish — and when a
wrong model fails *loudly and diagnosably* instead of spinning until a
bare cycle-budget error.  This package provides four cooperating,
deterministic tools (docs/RESILIENCE.md):

* :mod:`repro.resilience.faults` — a seeded, replayable fault-injection
  layer that delays, duplicates, blacks out, or (for watchdog stress
  tests) drops messages inside the modelled hierarchy.  Timing faults
  must never change functional results; any run that fails workload
  verification under timing faults has found a real model bug.
* :mod:`repro.resilience.watchdog` — forward-progress detection that
  converts a wedged simulation into a structured
  :class:`~repro.resilience.watchdog.DeadlockError` carrying a full
  diagnostic snapshot.
* :mod:`repro.resilience.checkpoint` — serialize complete simulation
  state to disk and resume bit-identically.
* :mod:`repro.resilience.invariants` — periodic conservation and
  consistency checks over the live simulation state.
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_simulation,
    save_checkpoint,
)
from repro.resilience.config import FaultSpec, ResilienceConfig
from repro.resilience.faults import FaultInjector, load_fault_plan
from repro.resilience.invariants import InvariantChecker, InvariantViolation
from repro.resilience.watchdog import DeadlockError, Watchdog, build_snapshot

__all__ = [
    "CheckpointError",
    "DeadlockError",
    "FaultInjector",
    "FaultSpec",
    "InvariantChecker",
    "InvariantViolation",
    "ResilienceConfig",
    "Watchdog",
    "build_snapshot",
    "load_checkpoint",
    "load_fault_plan",
    "restore_simulation",
    "save_checkpoint",
]
