"""Deterministic fault injection for the modelled memory hierarchy.

Every message between the tile side, the L2/L3 banks and the memory
controllers crosses the NoC, so the NoC's routing step is the single
choke point where faults are applied.  The injector installs itself as
:attr:`~repro.memhier.noc.CrossbarNoC.fault_hook`; for each routed
message it returns the list of ``(latency, payload)`` deliveries to
perform — one (possibly delayed) delivery normally, two for a
duplicate, zero for a drop.

Determinism: fault decisions draw from one ``random.Random(seed)``
instance, and route calls happen in a deterministic order, so a
campaign replays bit-identically for a given (plan, seed) pair.

The functional-correctness contract: ``delay``, ``duplicate`` and
``blackout`` faults perturb *timing only*.  The memory model must
tolerate arbitrary response reordering and spurious hierarchy-internal
fills, so every injected-fault run must still pass workload
verification — a campaign that corrupts architectural state has found a
real model bug, which is the point.  ``drop`` faults are the deliberate
exception: they violate the delivery guarantee to prove the watchdog
and invariant checker catch lost messages.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.memhier.request import MemRequest, RequestKind
from repro.resilience.config import FaultSpec, ResilienceConfig
from repro.sparta.unit import Unit
from repro.utils.deprecation import warn_deprecated

# Extra delay of the duplicate copy when a duplicate spec leaves
# ``extra`` at zero (a zero-cycle duplicate would be indistinguishable
# from the original at the receiving endpoint).
DEFAULT_DUPLICATE_DELAY = 1


@dataclass
class FaultPlan:
    """A named, replayable fault-injection campaign: specs plus seed.

    The blessed object form of the JSON plan files (``{"seed": <int,
    optional>, "faults": [<FaultSpec fields>, ...]}``) the CLI's
    ``--inject`` consumes.  ``apply`` folds the plan into a
    :class:`~repro.resilience.config.ResilienceConfig`, preserving the
    config's own seed when the plan does not pin one.
    """

    faults: list[FaultSpec] = field(default_factory=list)
    seed: int | None = None

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate()
        if self.seed is not None and (not isinstance(self.seed, int)
                                      or self.seed < 0):
            raise ValueError(
                f"fault plan seed must be a non-negative integer, "
                f"got {self.seed!r}")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a fault plan JSON file."""
        document = json.loads(Path(path).read_text())
        if not isinstance(document, dict) or "faults" not in document:
            raise ValueError(f"{path}: fault plan must be an object with "
                             f"a 'faults' list")
        plan = cls(faults=[FaultSpec(**entry)
                           for entry in document["faults"]],
                   seed=document.get("seed"))
        try:
            plan.validate()
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc
        return plan

    def to_dict(self) -> dict:
        """The JSON-document form (round-trips through :meth:`load`)."""
        document: dict = {"faults": [asdict(spec) for spec in self.faults]}
        if self.seed is not None:
            document["seed"] = self.seed
        return document

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def apply(self, resilience: ResilienceConfig) -> ResilienceConfig:
        """Install the plan's faults (and seed, when set) in-place."""
        resilience.faults = list(self.faults)
        if self.seed is not None:
            resilience.fault_seed = self.seed
        return resilience


def load_fault_plan(path: str | Path) -> tuple[list[FaultSpec], int | None]:
    """Deprecated spelling of :meth:`FaultPlan.load`.

    Returns the historical ``(specs, seed_or_None)`` tuple.
    """
    warn_deprecated("load_fault_plan()", "FaultPlan.load()")
    plan = FaultPlan.load(path)
    return plan.faults, plan.seed


def _duplicable(payload) -> bool:
    """Only hierarchy-internal traffic may be duplicated.

    Fills (request_id == -2, both directions) and writebacks carry no
    exactly-once completion obligation: banks drop spurious fills (the
    hardening this fault class exercises) and memory absorbs repeated
    writebacks.  Anything that would complete a scoreboard entry at the
    tile side must be delivered exactly once.
    """
    if not isinstance(payload, MemRequest):
        return False
    return (payload.kind is RequestKind.WRITEBACK
            or payload.request_id == -2)


class FaultInjector(Unit):
    """The live fault-injection layer of one simulation.

    A :class:`~repro.sparta.unit.Unit` so its counters appear in the
    hierarchy statistics report, the telemetry interval samples, and
    exported metrics alongside every other modelled component.
    """

    def __init__(self, name: str, parent: Unit, config: ResilienceConfig,
                 hierarchy):
        super().__init__(name, parent)
        config.validate()
        self.config = config
        self.hierarchy = hierarchy
        self._rng = random.Random(config.fault_seed)
        # Optional observability hook (the Chrome trace's ``instant``):
        # called as ``event_sink(kind, cycle, args)`` for each applied
        # fault so injections are visible on the trace timeline.
        self.event_sink = None

        # endpoint -> (target_class, instance_index), covering both the
        # request and fill endpoints of every bank.
        endpoint_targets: dict[str, tuple[str, int]] = {}
        for index, bank in enumerate(hierarchy.banks):
            endpoint_targets[bank.endpoint] = ("l2bank", index)
            endpoint_targets[bank.fill_endpoint] = ("l2bank", index)
        for index, mc in enumerate(hierarchy.memory_controllers):
            endpoint_targets[mc.endpoint] = ("memctrl", index)
        self._endpoint_targets = endpoint_targets
        self._specs = list(config.faults)

        stats = self.stats
        self._stat_delayed = stats.counter(
            "faults_delayed", "messages given extra injected latency")
        self._stat_delay_cycles = stats.counter(
            "fault_delay_cycles", "total injected extra latency")
        self._stat_duplicated = stats.counter(
            "faults_duplicated", "messages delivered twice")
        self._stat_blacked_out = stats.counter(
            "faults_blacked_out", "messages deferred past a blackout")
        self._stat_dropped = stats.counter(
            "faults_dropped", "messages destroyed (drop faults)")

    # -- wiring ---------------------------------------------------------------

    def install(self) -> None:
        """Hook the NoC and harden the banks for spurious fills."""
        noc = self.hierarchy.noc
        if noc.fault_hook is not None:
            raise RuntimeError("a fault hook is already installed")
        noc.fault_hook = self.intercept
        for bank in self.hierarchy.all_cache_banks():
            bank.tolerate_spurious_fills = True

    # -- the interception point ----------------------------------------------

    def _matches(self, spec: FaultSpec, source: str,
                 destination: str) -> bool:
        if spec.target == "noc":
            return True
        for endpoint in (source, destination):
            found = self._endpoint_targets.get(endpoint)
            if found is not None and found[0] == spec.target \
                    and (spec.index == -1 or found[1] == spec.index):
                return True
        return False

    def intercept(self, source: str, destination: str, payload,
                  latency: int) -> list[tuple[int, object]]:
        """The NoC fault hook: deliveries for one routed message."""
        now = self.scheduler.current_cycle
        rng = self._rng
        sink = self.event_sink
        deliveries = [(latency, payload)]
        for spec in self._specs:
            if not spec.start <= now < spec.end:
                continue
            if not self._matches(spec, source, destination):
                continue
            if spec.probability < 1.0 \
                    and rng.random() >= spec.probability:
                continue
            kind = spec.kind
            applied = False
            if kind == "delay":
                extra = spec.extra
                if spec.jitter:
                    extra += rng.randrange(spec.jitter + 1)
                if extra:
                    base, item = deliveries[0]
                    deliveries[0] = (base + extra, item)
                    self._stat_delayed.increment()
                    self._stat_delay_cycles.increment(extra)
                    applied = True
            elif kind == "blackout":
                # The target is unavailable until the window closes; the
                # message waits it out and then pays normal latency.
                base, item = deliveries[0]
                deferred = (spec.end - now) + latency
                if deferred > base:
                    deliveries[0] = (deferred, item)
                    self._stat_blacked_out.increment()
                    applied = True
            elif kind == "duplicate":
                if _duplicable(payload):
                    copy = replace(payload, duplicate=True)
                    extra = spec.extra or DEFAULT_DUPLICATE_DELAY
                    deliveries.append((deliveries[0][0] + extra, copy))
                    self._stat_duplicated.increment()
                    applied = True
            elif kind == "drop":
                self._stat_dropped.increment()
                if sink is not None:
                    sink("fault:drop", now,
                         {"source": source, "destination": destination})
                return []
            if applied and sink is not None:
                sink(f"fault:{kind}", now,
                     {"source": source, "destination": destination})
        return deliveries
