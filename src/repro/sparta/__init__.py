"""An event-driven modelling framework in the style of SiFive's Sparta.

Provides the substrate the memory-hierarchy model is built from: a
deterministic cycle-quantised :class:`Scheduler`, hierarchical
:class:`Unit` components, latency-annotated ports, counters/statistics,
and validated parameter sets.
"""

from repro.sparta.params import Parameter, ParameterError, ParameterSet
from repro.sparta.ports import DataInPort, DataOutPort, PortError
from repro.sparta.scheduler import Scheduler, SchedulerError
from repro.sparta.statistics import (
    Counter,
    Gauge,
    StatisticSet,
    StatSample,
    format_report,
)
from repro.sparta.unit import Unit

__all__ = [
    "Counter",
    "DataInPort",
    "DataOutPort",
    "Gauge",
    "Parameter",
    "ParameterError",
    "ParameterSet",
    "PortError",
    "Scheduler",
    "SchedulerError",
    "StatSample",
    "StatisticSet",
    "Unit",
    "format_report",
]
