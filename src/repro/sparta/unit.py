"""Hierarchical modelling units (Sparta's TreeNode/Unit pattern).

A :class:`Unit` is a named component in a device tree.  Each unit owns a
:class:`~repro.sparta.statistics.StatisticSet` and can declare ports; the
tree can be walked to collect statistics or locate components by path.
Encapsulating each modelled element (an L2 bank, the NoC, a memory
controller) as its own unit is what gives the memory model the paper's
"high flexibility and easy extensibility".
"""

from __future__ import annotations

from repro.sparta.scheduler import Scheduler
from repro.sparta.statistics import StatisticSet, StatSample


class Unit:
    """A named node in the simulation's component tree."""

    def __init__(self, name: str, parent: "Unit | None" = None,
                 scheduler: Scheduler | None = None):
        if not name or "." in name:
            raise ValueError(f"invalid unit name {name!r}")
        self.name = name
        self.parent = parent
        self.children: list[Unit] = []
        if parent is not None:
            if scheduler is not None and scheduler is not parent.scheduler:
                raise ValueError("child unit must share its parent scheduler")
            self.scheduler = parent.scheduler
            parent._adopt(self)
        else:
            if scheduler is None:
                raise ValueError("root unit requires a scheduler")
            self.scheduler = scheduler
        self.stats = StatisticSet(self.path)

    def _adopt(self, child: "Unit") -> None:
        if any(existing.name == child.name for existing in self.children):
            raise ValueError(
                f"duplicate child unit {child.name!r} under {self.path!r}")
        self.children.append(child)

    @property
    def path(self) -> str:
        """Dotted path from the tree root, e.g. ``top.tile0.l2bank1``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def find(self, path: str) -> "Unit":
        """Locate a descendant by relative dotted path."""
        node = self
        for part in path.split("."):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise KeyError(f"no unit {part!r} under {node.path!r}")
        return node

    def walk(self):
        """Yield this unit and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def collect_stats(self) -> list[StatSample]:
        """Collect statistics from this subtree."""
        samples: list[StatSample] = []
        for unit in self.walk():
            samples.extend(unit.stats.samples())
        return samples

    def collect_values(self) -> dict[str, float]:
        """Collect this subtree's statistics as ``full_name -> value``.

        Cheaper than :meth:`collect_stats` (no :class:`StatSample`
        objects); the telemetry sampler calls this once per interval.
        """
        values: dict[str, float] = {}
        for unit in self.walk():
            unit.stats.values_into(values)
        return values
