"""Validated parameter sets for modelling units.

A light equivalent of Sparta's ParameterSet: declare parameters with
defaults and validators, then freeze the set before simulation starts.
Configuration errors surface at construction time, not mid-run.
"""

from __future__ import annotations

from typing import Any, Callable


class ParameterError(Exception):
    """Raised for unknown parameters or failed validation."""


class Parameter:
    """One named parameter with a default and an optional validator."""

    def __init__(self, name: str, default: Any, description: str = "",
                 validator: Callable[[Any], bool] | None = None):
        self.name = name
        self.default = default
        self.description = description
        self.validator = validator

    def validate(self, value: Any) -> None:
        if self.validator is not None and not self.validator(value):
            raise ParameterError(
                f"parameter {self.name!r}: invalid value {value!r}")


class ParameterSet:
    """A declared, validated bag of parameters."""

    def __init__(self, declarations: list[Parameter]):
        self._declarations = {decl.name: decl for decl in declarations}
        if len(self._declarations) != len(declarations):
            raise ParameterError("duplicate parameter declaration")
        self._values = {decl.name: decl.default for decl in declarations}
        self._frozen = False

    def set(self, name: str, value: Any) -> None:
        if self._frozen:
            raise ParameterError(f"parameter set is frozen ({name!r})")
        decl = self._declarations.get(name)
        if decl is None:
            raise ParameterError(f"unknown parameter {name!r}")
        decl.validate(value)
        self._values[name] = value

    def update(self, values: dict[str, Any]) -> None:
        for name, value in values.items():
            self.set(name, value)

    def freeze(self) -> None:
        """Lock the set; reads remain allowed, writes raise."""
        self._frozen = True

    def get(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise ParameterError(f"unknown parameter {name!r}") from None

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)
