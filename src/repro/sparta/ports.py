"""Latency-annotated ports connecting modelling units.

A :class:`DataOutPort` sends payloads to a bound :class:`DataInPort`; the
payload is delivered by invoking the in-port's handler ``latency`` cycles
later through the shared scheduler.  Re-wiring a system of units is just
re-binding ports — the mechanism behind "evaluating systems of different
scale just requires connecting fewer or more modules".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sparta.unit import Unit


class PortError(Exception):
    """Raised for port wiring mistakes."""


class DataInPort:
    """Receiving end of a connection; dispatches payloads to a handler."""

    def __init__(self, owner: Unit, name: str,
                 handler: Callable[[Any], None]):
        self.owner = owner
        self.name = name
        self.handler = handler
        self.received = 0

    @property
    def path(self) -> str:
        return f"{self.owner.path}.{self.name}"

    def _deliver(self, payload: Any) -> None:
        self.received += 1
        self.handler(payload)


class DataOutPort:
    """Sending end of a connection."""

    def __init__(self, owner: Unit, name: str, default_latency: int = 1):
        if default_latency < 0:
            raise PortError(f"negative latency on {name!r}")
        self.owner = owner
        self.name = name
        self.default_latency = default_latency
        self._destination: DataInPort | None = None
        self.sent = 0

    @property
    def path(self) -> str:
        return f"{self.owner.path}.{self.name}"

    @property
    def is_bound(self) -> bool:
        return self._destination is not None

    def bind(self, destination: DataInPort) -> None:
        """Connect this out-port to an in-port (one-to-one)."""
        if self._destination is not None:
            raise PortError(f"{self.path} is already bound")
        self._destination = destination

    def send(self, payload: Any, latency: int | None = None) -> None:
        """Deliver ``payload`` to the bound in-port after ``latency``
        cycles (defaulting to the port's construction latency)."""
        if self._destination is None:
            raise PortError(f"{self.path} is not bound")
        delay = self.default_latency if latency is None else latency
        if delay < 0:
            raise PortError(f"negative send latency on {self.path}")
        self.sent += 1
        self.owner.scheduler.schedule(self._destination._deliver,
                                      delay, (payload,))
