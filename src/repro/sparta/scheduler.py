"""Cycle-quantised discrete-event scheduler (the heart of our Sparta).

Events are callbacks scheduled at integer cycle numbers.  Within one cycle,
events fire in (priority, insertion-order), making simulations fully
deterministic.  The Coyote orchestrator advances the scheduler in lockstep
with functional execution: one ``advance_cycle`` per simulated clock.

Hot-path notes: ``current_cycle`` is a plain attribute (no property
dispatch on the read the orchestrator, the NoC and every bank perform
each cycle), idle cycles cost a single heap peek, and ``advance_to``
lands directly on each intervening event cycle instead of stepping the
clock one cycle at a time — a fully-stalled fast-forward is O(events in
the gap), not O(gap).
"""

from __future__ import annotations

import heapq
from typing import Callable


class SchedulerError(Exception):
    """Raised for invalid scheduling operations.

    Structured context rides along as attributes (``current_cycle``,
    ``pending_events``, ``next_event_cycle``) so watchdogs and tests can
    assert on the scheduler's state instead of parsing the message.
    """

    def __init__(self, message: str, *, current_cycle: int | None = None,
                 pending_events: int | None = None,
                 next_event_cycle: int | None = None):
        super().__init__(message)
        self.current_cycle = current_cycle
        self.pending_events = pending_events
        self.next_event_cycle = next_event_cycle


class Scheduler:
    """A deterministic discrete-event scheduler."""

    def __init__(self):
        self._queue: list[tuple[int, int, int, Callable, tuple]] = []
        self._sequence = 0
        # Public on purpose: the orchestrator's inner loop reads (and,
        # in its single-core run-ahead, writes) the clock every
        # simulated cycle; attribute access keeps that cheap.
        self.current_cycle = 0
        self._events_fired = 0

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(self, callback: Callable, delay: int = 0,
                 args: tuple = (), priority: int = 0) -> None:
        """Schedule ``callback(*args)`` ``delay`` cycles from now.

        A zero delay from outside the event loop is fine: the event
        fires on the next advance through the current cycle.
        """
        if delay < 0:
            raise SchedulerError(
                f"cannot schedule in the past: delay={delay}",
                current_cycle=self.current_cycle,
                pending_events=len(self._queue),
                next_event_cycle=self.next_event_cycle())
        heapq.heappush(self._queue,
                       (self.current_cycle + delay, priority,
                        self._sequence, callback, args))
        self._sequence += 1

    def next_event_cycle(self) -> int | None:
        """Cycle of the earliest pending event, or None when idle."""
        queue = self._queue
        return queue[0][0] if queue else None

    def has_events_now(self) -> bool:
        """True when events are pending at (or before) the current cycle."""
        queue = self._queue
        return bool(queue) and queue[0][0] <= self.current_cycle

    def advance_cycle(self) -> int:
        """Fire every event scheduled for the current cycle, then step the
        clock by one.  Returns the number of events fired."""
        queue = self._queue
        if queue and queue[0][0] <= self.current_cycle:
            fired = self._drain_current()
        else:
            fired = 0
        self.current_cycle += 1
        return fired

    def advance_to(self, cycle: int) -> int:
        """Advance the clock to ``cycle``, firing all intervening events.

        Events strictly before ``cycle`` fire (at their own cycle, in
        deterministic order), exactly as repeated ``advance_cycle`` calls
        would fire them; the clock then lands on ``cycle`` in one
        assignment.  Cost is proportional to the events in the gap, not
        to its length.
        """
        if cycle < self.current_cycle:
            raise SchedulerError(
                f"cannot rewind from {self.current_cycle} to {cycle}",
                current_cycle=self.current_cycle,
                pending_events=len(self._queue),
                next_event_cycle=self.next_event_cycle())
        queue = self._queue
        fired = 0
        while queue and queue[0][0] < cycle:
            target = queue[0][0]
            if target > self.current_cycle:
                self.current_cycle = target
            fired += self._drain_current()
        self.current_cycle = cycle
        return fired

    def run_until_idle(self, max_cycles: int = 10_000_000) -> int:
        """Advance until no events remain; returns the final cycle.

        ``max_cycles`` bounds how many *cycles* the clock may advance
        past its starting point (a runaway-feedback backstop).  A single
        long jump to a far-future event consumes budget equal to the
        jump length — it cannot advance the clock further than an
        equivalent sequence of per-cycle steps would.
        """
        queue = self._queue
        start = self.current_cycle
        limit = start + max_cycles
        while queue:
            target = queue[0][0]
            if target >= limit:
                raise SchedulerError(
                    f"run_until_idle exceeded its cycle budget "
                    f"({max_cycles} cycles from cycle {start})",
                    current_cycle=self.current_cycle,
                    pending_events=len(queue),
                    next_event_cycle=target)
            if target > self.current_cycle:
                self.current_cycle = target
            self._drain_current()
            self.current_cycle += 1
        return self.current_cycle

    # -- introspection / state transfer (resilience layer) -------------------

    def iter_events(self) -> list[tuple[int, int, int, Callable, tuple]]:
        """Snapshot of every pending ``(cycle, priority, seq, callback,
        args)`` entry, in heap (not firing) order.  Read-only: mutating
        the returned list does not affect the queue."""
        return list(self._queue)

    def restore(self, events: list[tuple[int, int, int, Callable, tuple]],
                *, current_cycle: int, sequence: int,
                events_fired: int) -> None:
        """Replace the full scheduler state (checkpoint restore)."""
        queue = [tuple(event) for event in events]
        heapq.heapify(queue)
        self._queue = queue
        self.current_cycle = current_cycle
        self._sequence = sequence
        self._events_fired = events_fired

    def _drain_current(self) -> int:
        """Fire every event at (or before) the current cycle."""
        fired = 0
        queue = self._queue
        now = self.current_cycle
        heappop = heapq.heappop
        while queue and queue[0][0] <= now:
            cycle, _priority, _seq, callback, args = heappop(queue)
            if cycle < now:
                raise SchedulerError(
                    f"missed event scheduled for cycle {cycle} "
                    f"(now {now})",
                    current_cycle=now, pending_events=len(queue),
                    next_event_cycle=cycle)
            callback(*args)
            fired += 1
        self._events_fired += fired
        return fired
