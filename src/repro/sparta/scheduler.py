"""Cycle-quantised discrete-event scheduler (the heart of our Sparta).

Events are callbacks scheduled at integer cycle numbers.  Within one cycle,
events fire in (priority, insertion-order), making simulations fully
deterministic.  The Coyote orchestrator advances the scheduler in lockstep
with functional execution: one ``advance_cycle`` per simulated clock.
"""

from __future__ import annotations

import heapq
from typing import Callable


class SchedulerError(Exception):
    """Raised for invalid scheduling operations."""


class Scheduler:
    """A deterministic discrete-event scheduler."""

    def __init__(self):
        self._queue: list[tuple[int, int, int, Callable, tuple]] = []
        self._sequence = 0
        self._current_cycle = 0
        self._events_fired = 0
        self._running = False

    @property
    def current_cycle(self) -> int:
        return self._current_cycle

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(self, callback: Callable, delay: int = 0,
                 args: tuple = (), priority: int = 0) -> None:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past: delay={delay}")
        if delay == 0 and self._running is False:
            # Scheduling at the current cycle from outside the event loop is
            # fine: the event fires on the next advance through this cycle.
            pass
        heapq.heappush(self._queue,
                       (self._current_cycle + delay, priority,
                        self._sequence, callback, args))
        self._sequence += 1

    def next_event_cycle(self) -> int | None:
        """Cycle of the earliest pending event, or None when idle."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def has_events_now(self) -> bool:
        """True when events are pending at (or before) the current cycle."""
        return bool(self._queue) and self._queue[0][0] <= self._current_cycle

    def advance_cycle(self) -> int:
        """Fire every event scheduled for the current cycle, then step the
        clock by one.  Returns the number of events fired."""
        fired = self._drain_current()
        self._current_cycle += 1
        return fired

    def advance_to(self, cycle: int) -> int:
        """Advance the clock to ``cycle``, firing all intervening events."""
        if cycle < self._current_cycle:
            raise SchedulerError(
                f"cannot rewind from {self._current_cycle} to {cycle}")
        fired = 0
        while self._current_cycle < cycle:
            fired += self.advance_cycle()
        return fired

    def run_until_idle(self, max_cycles: int = 10_000_000) -> int:
        """Advance until no events remain; returns the final cycle."""
        budget = max_cycles
        while self._queue:
            target = self._queue[0][0]
            if target > self._current_cycle:
                self._current_cycle = target
            self._drain_current()
            self._current_cycle += 1
            budget -= 1
            if budget <= 0:
                raise SchedulerError(
                    f"run_until_idle exceeded {max_cycles} cycles")
        return self._current_cycle

    def _drain_current(self) -> int:
        fired = 0
        self._running = True
        try:
            while self._queue and self._queue[0][0] <= self._current_cycle:
                cycle, _priority, _seq, callback, args = \
                    heapq.heappop(self._queue)
                if cycle < self._current_cycle:
                    raise SchedulerError(
                        f"missed event scheduled for cycle {cycle} "
                        f"(now {self._current_cycle})")
                callback(*args)
                fired += 1
                self._events_fired += 1
        finally:
            self._running = False
        return fired
