"""Counters and statistic reporting for modelling units.

Each :class:`~repro.sparta.unit.Unit` owns a :class:`StatisticSet`;
counters register themselves there and the simulation-level report walks
the unit tree collecting every counter into a flat, named table — the
equivalent of Sparta's report machinery.
"""

from __future__ import annotations

from dataclasses import dataclass


class Counter:
    """A monotonically increasing statistic."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def __iadd__(self, amount: int) -> "Counter":
        self.value += amount
        return self

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A statistic that can move in both directions (e.g. occupancy)."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value = 0
        self.peak = 0

    def set(self, value: int) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, amount: int) -> None:
        self.set(self.value + amount)


@dataclass
class StatSample:
    """One named value in a report."""

    path: str
    name: str
    value: float
    description: str = ""

    @property
    def full_name(self) -> str:
        return f"{self.path}.{self.name}" if self.path else self.name


class StatisticSet:
    """The statistics registered by one unit."""

    def __init__(self, owner_path: str):
        self._owner_path = owner_path
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """Create (or fetch) a counter registered under this unit."""
        if name in self._counters:
            return self._counters[name]
        counter = Counter(name, description)
        self._counters[name] = counter
        return counter

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Create (or fetch) a gauge registered under this unit."""
        if name in self._gauges:
            return self._gauges[name]
        gauge = Gauge(name, description)
        self._gauges[name] = gauge
        return gauge

    def values_into(self, out: dict[str, float]) -> None:
        """Write every statistic as ``full_name -> value`` into ``out``.

        The allocation-light sibling of :meth:`samples`, used by the
        telemetry interval sampler which snapshots the whole tree many
        times per run.
        """
        prefix = self._owner_path + "." if self._owner_path else ""
        for counter in self._counters.values():
            out[prefix + counter.name] = counter.value
        for gauge in self._gauges.values():
            out[prefix + gauge.name] = gauge.value
            out[prefix + gauge.name + ".peak"] = gauge.peak

    def samples(self) -> list[StatSample]:
        """Snapshot every statistic as report samples."""
        result = [StatSample(self._owner_path, counter.name, counter.value,
                             counter.description)
                  for counter in self._counters.values()]
        for gauge in self._gauges.values():
            result.append(StatSample(self._owner_path, gauge.name,
                                     gauge.value, gauge.description))
            result.append(StatSample(self._owner_path, gauge.name + ".peak",
                                     gauge.peak, gauge.description))
        return result


def format_report(samples: list[StatSample]) -> str:
    """Render samples as an aligned text table, sorted by full name."""
    ordered = sorted(samples, key=lambda sample: sample.full_name)
    if not ordered:
        return "(no statistics)"
    width = max(len(sample.full_name) for sample in ordered)
    lines = [f"{sample.full_name:<{width}}  {sample.value}"
             for sample in ordered]
    return "\n".join(lines)
