"""Rendering for ``coyote-sim profile``: flat and annotated views.

Separated from :mod:`repro.telemetry.guestprof` so the collector stays
import-light (the orchestrator pulls it in on every profiled run; the
CLI alone needs the formatting).  The JSON document written by
``--json`` is versioned via :data:`PROFILE_SCHEMA` and checked by the
CI ``profile-smoke`` job.
"""

from __future__ import annotations

from repro.telemetry.guestprof import CPI_CLASSES, CpiStack, GuestProfile

PROFILE_SCHEMA = "coyote-guest-profile/v1"


def _stack_table(stack: CpiStack, title: str) -> list[str]:
    lines = [f"-- {title} --",
             f"{'class':<16}{'cycles':>14}{'share':>9}"]
    cycles = stack.cycles or 1
    for name in CPI_CLASSES:
        value = stack.classes[name]
        lines.append(f"{name:<16}{value:>14}{value / cycles:>8.1%}")
    lines.append(f"{'total':<16}{stack.cycles:>14}{1:>8.0%}")
    retired = stack.retired
    cpi = f"{stack.cpi:.3f}" if retired else "inf"
    lines.append(f"retired instructions {retired}, CPI {cpi}")
    return lines


def render_flat(profile: GuestProfile, top: int = 10,
                per_core: bool = False) -> str:
    """The flat report: CPI stack(s), hot blocks, hottest misses."""
    cores = len(profile.stacks)
    lines = _stack_table(
        profile.aggregate(),
        f"CPI stack (aggregate over {cores} core(s), "
        f"{profile.cycles} cycles)")
    if per_core:
        for stack in profile.stacks:
            lines.append("")
            lines.extend(_stack_table(stack,
                                      f"CPI stack (core {stack.core_id})"))

    lines.append("")
    shown = profile.top_blocks(top)
    lines.append(f"-- hot blocks (top {len(shown)} of "
                 f"{len(profile.blocks)}) --")
    lines.append(f"{'start':>12}{'end':>12}{'instrs':>10}{'share':>8}"
                 f"{'stall':>10}{'misses':>8}")
    instructions = profile.instructions or 1
    for block in shown:
        lines.append(
            f"{block.start_pc:>#12x}{block.end_pc:>#12x}"
            f"{block.instructions:>10}"
            f"{block.instructions / instructions:>7.1%}"
            f"{block.stall_cycles:>10}{block.misses:>8}")

    hottest = sorted(profile.pc_misses.items(),
                     key=lambda item: (-item[1]["stall_cycles"],
                                       item[0]))[:top]
    if hottest:
        lines.append("")
        lines.append(f"-- miss PCs (top {len(hottest)} by stall "
                     f"cycles) --")
        lines.append(f"{'pc':>12}{'loads':>8}{'stores':>8}"
                     f"{'ifetch':>8}{'stall':>10}")
        for pc, events in hottest:
            lines.append(f"{pc:>#12x}{events['loads']:>8}"
                         f"{events['stores']:>8}{events['ifetches']:>8}"
                         f"{events['stall_cycles']:>10}")
    lines_hot = sorted(profile.line_misses.items(),
                       key=lambda item: (-item[1], item[0]))[:top]
    if lines_hot:
        lines.append("")
        lines.append(f"-- cache lines (top {len(lines_hot)} by "
                     f"misses) --")
        lines.append(f"{'line':>12}{'misses':>8}")
        for line, count in lines_hot:
            lines.append(f"{line:>#12x}{count:>8}")
    return "\n".join(lines)


def render_annotated(profile: GuestProfile, top: int = 10) -> str:
    """Disassembly of the hottest blocks, one section per block."""
    sections = []
    for rank, block in enumerate(profile.top_blocks(top), start=1):
        header = (f"-- block #{rank}: {block.start_pc:#x}.."
                  f"{block.end_pc:#x} ({block.instructions} retired, "
                  f"{block.stall_cycles} stall cycles, "
                  f"{block.misses} misses) --")
        if block.disassembly is None:
            sections.append(header + "\n  (not annotated)")
        else:
            sections.append("\n".join([header, *block.disassembly]))
    if not sections:
        return "(no blocks retired)"
    return "\n\n".join(sections)


def profile_document(profile: GuestProfile, *, kernel: str,
                     cores: int, verified: bool | None) -> dict:
    """The versioned ``--json`` document."""
    return {
        "schema": PROFILE_SCHEMA,
        "kernel": kernel,
        "cores": cores,
        "verified": verified,
        **profile.to_dict(),
    }
