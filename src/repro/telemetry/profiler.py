"""Host-side profiling: where does the wall time of a simulation go?

The orchestrator's loop alternates between stepping the functional cores
(Spike), advancing the event-driven hierarchy (Sparta) and, at the end,
collecting statistics.  :class:`HostProfiler` accumulates wall seconds
per section (the orchestrator adds directly to the public attributes to
avoid call overhead on the hot path) and can emit a progress heartbeat
through the ``repro.telemetry`` logger: simulated cycles/sec, scheduler
events/sec and host MIPS since the previous beat.
"""

from __future__ import annotations

import logging
import time

logger = logging.getLogger("repro.telemetry")


class HostProfiler:
    """Wall-time breakdown and progress heartbeat for one run."""

    def __init__(self, progress_cycles: int = 65536):
        self.spike_seconds = 0.0
        self.sparta_seconds = 0.0
        self.stats_seconds = 0.0
        self.progress_cycles = progress_cycles
        self._clock = time.perf_counter
        self._start_wall = self._clock()
        self._next_beat_cycle = progress_cycles
        self._last_beat = (self._start_wall, 0, 0, 0)  # wall, cyc, inst, ev

    # -- wall-time breakdown ------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        return self._clock() - self._start_wall

    @property
    def other_seconds(self) -> float:
        """Wall time not attributed to a measured section."""
        measured = (self.spike_seconds + self.sparta_seconds
                    + self.stats_seconds)
        return max(0.0, self.elapsed_seconds - measured)

    def to_dict(self) -> dict:
        elapsed = self.elapsed_seconds
        return {
            "wall_seconds": elapsed,
            "spike_seconds": self.spike_seconds,
            "sparta_seconds": self.sparta_seconds,
            "stats_seconds": self.stats_seconds,
            "other_seconds": self.other_seconds,
        }

    def format_report(self) -> str:
        """Aligned breakdown with percentages of total wall time."""
        data = self.to_dict()
        total = data["wall_seconds"] or 1.0
        lines = ["host wall-time breakdown:"]
        for key in ("spike_seconds", "sparta_seconds", "stats_seconds",
                    "other_seconds"):
            label = key.removesuffix("_seconds")
            lines.append(f"  {label:<8}: {data[key]:8.3f} s "
                         f"({data[key] / total:6.1%})")
        lines.append(f"  {'total':<8}: {data['wall_seconds']:8.3f} s")
        return "\n".join(lines)

    # -- progress heartbeat -------------------------------------------------

    def maybe_heartbeat(self, cycle: int, instructions: int,
                        events: int) -> bool:
        """Log a progress line when the next beat cycle has been reached."""
        if cycle < self._next_beat_cycle:
            return False
        self._next_beat_cycle = (cycle - cycle % self.progress_cycles
                                 + self.progress_cycles)
        now = self._clock()
        last_wall, last_cycle, last_inst, last_events = self._last_beat
        self._last_beat = (now, cycle, instructions, events)
        wall = now - last_wall
        if wall <= 0:
            return False
        logger.info(
            "progress: cycle=%d inst=%d | %.0f cycles/s %.0f events/s "
            "%.3f MIPS",
            cycle, instructions,
            (cycle - last_cycle) / wall,
            (events - last_events) / wall,
            (instructions - last_inst) / wall / 1e6)
        return True
