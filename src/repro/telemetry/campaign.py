"""Campaign-level progress telemetry.

A sweep is a campaign of independent simulations; its progress signal
(``k/n points, ETA``) belongs to the same telemetry surface as the
per-run heartbeat, so :class:`CampaignProgress` streams through the
``repro.telemetry`` logger namespace — anything already consuming the
run heartbeat (``--progress``) sees campaign progress for free.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Callable

logger = logging.getLogger("repro.telemetry.campaign")


class CampaignProgress:
    """Streams ``k/n points, ETA`` as points of a campaign complete.

    ``clock`` is injectable so tests can drive deterministic timelines.
    The ETA is the classic remaining-work estimate: mean seconds per
    completed point times points outstanding — deliberately simple, it
    is a heartbeat, not a scheduler.
    """

    def __init__(self, total: int, label: str = "sweep",
                 clock: Callable[[], float] = time.monotonic,
                 sink: Callable[[str], None] | None = None):
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.label = label
        self.completed = 0
        self.failed = 0
        self._clock = clock
        self._sink = sink or logger.info
        self._start = clock()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    def eta_seconds(self) -> float | None:
        """Estimated seconds to completion (None before the first point)."""
        if not self.completed:
            return None
        remaining = self.total - self.completed
        return self.elapsed / self.completed * remaining

    def point_completed(self, settings: dict[str, Any] | None = None,
                        failed: bool = False) -> str:
        """Record one finished point and emit the progress line."""
        self.completed += 1
        if failed:
            self.failed += 1
        eta = self.eta_seconds()
        percent = (100.0 * self.completed / self.total if self.total
                   else 100.0)
        parts = [f"{self.label}: {self.completed}/{self.total} points "
                 f"({percent:.0f}%)",
                 f"elapsed {self.elapsed:.1f}s"]
        if eta is not None and self.completed < self.total:
            parts.append(f"eta {eta:.1f}s")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if failed and settings is not None:
            parts.append(f"last failure {settings}")
        line = ", ".join(parts)
        self._sink(line)
        return line
