"""Campaign-level progress and supervision telemetry.

A sweep is a campaign of independent simulations; its progress signal
(``k/n points, ETA``) belongs to the same telemetry surface as the
per-run heartbeat, so :class:`CampaignProgress` streams through the
``repro.telemetry`` logger namespace — anything already consuming the
run heartbeat (``--progress``) sees campaign progress for free.

:class:`CampaignMonitor` is the supervised runtime's observability:
worker-heartbeat gauges (last reported cycles / RSS per point),
retry / quarantine / degradation counters, and per-attempt spans
exported as Chrome trace events (``coyote-sim sweep --chrome-trace``).
"""

from __future__ import annotations

import logging
import time
from typing import Any, Callable

logger = logging.getLogger("repro.telemetry.campaign")


class CampaignProgress:
    """Streams ``k/n points, ETA`` as points of a campaign complete.

    ``clock`` is injectable so tests can drive deterministic timelines.
    The ETA is the classic remaining-work estimate: mean seconds per
    completed point times points outstanding — deliberately simple, it
    is a heartbeat, not a scheduler.
    """

    def __init__(self, total: int, label: str = "sweep",
                 clock: Callable[[], float] = time.monotonic,
                 sink: Callable[[str], None] | None = None):
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.label = label
        self.completed = 0
        self.failed = 0
        self._clock = clock
        self._sink = sink or logger.info
        self._start = clock()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    def eta_seconds(self) -> float | None:
        """Estimated seconds to completion (None before the first point)."""
        if not self.completed:
            return None
        remaining = self.total - self.completed
        return self.elapsed / self.completed * remaining

    def point_completed(self, settings: dict[str, Any] | None = None,
                        failed: bool = False) -> str:
        """Record one finished point and emit the progress line."""
        self.completed += 1
        if failed:
            self.failed += 1
        eta = self.eta_seconds()
        percent = (100.0 * self.completed / self.total if self.total
                   else 100.0)
        parts = [f"{self.label}: {self.completed}/{self.total} points "
                 f"({percent:.0f}%)",
                 f"elapsed {self.elapsed:.1f}s"]
        if eta is not None and self.completed < self.total:
            parts.append(f"eta {eta:.1f}s")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if failed and settings is not None:
            parts.append(f"last failure {settings}")
        line = ", ".join(parts)
        self._sink(line)
        return line


class CampaignMonitor:
    """Observability of the supervised campaign runtime.

    The parallel engine reports every lifecycle transition here:
    attempts started / finished (kept as Chrome trace complete-events so
    a whole campaign's attempt timeline opens in Perfetto), worker
    heartbeats (kept as last-value gauges per point), scheduled retries,
    quarantines, and pool-degradation steps.  All host-side: none of it
    enters the canonical ``SweepTable.to_dict`` document.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 sink: Callable[[str], None] | None = None):
        self.counters = {"attempts": 0, "heartbeats": 0, "retries": 0,
                         "quarantined": 0, "reaped": 0, "degradations": 0}
        self.heartbeat_gauges: dict[int, dict[str, float]] = {}
        self._clock = clock
        self._sink = sink or logger.info
        self._origin = clock()
        self._open: dict[tuple[int, int], float] = {}
        self._events: list[dict] = []

    def _now_us(self) -> float:
        return (self._clock() - self._origin) * 1e6

    def attempt_started(self, index: int, settings: dict,
                        attempt: int) -> None:
        self.counters["attempts"] += 1
        self._open[(index, attempt)] = self._now_us()

    def attempt_finished(self, index: int, settings: dict, attempt: int,
                         outcome: str) -> None:
        start = self._open.pop((index, attempt), None)
        if start is None:
            return
        self._events.append({
            "name": f"point[{index}] attempt {attempt}",
            "cat": "sweep", "ph": "X", "pid": 1, "tid": index,
            "ts": round(start, 3),
            "dur": round(self._now_us() - start, 3),
            "args": {"outcome": outcome, "settings": str(settings)},
        })

    def heartbeat(self, index: int, cycles: int, rss_mb: float) -> None:
        self.counters["heartbeats"] += 1
        self.heartbeat_gauges[index] = {"cycles": cycles, "rss_mb": rss_mb}

    def reaped(self, index: int, settings: dict, outcome: str) -> None:
        self.counters["reaped"] += 1
        self._sink(f"sweep point {settings}: worker reaped ({outcome})")

    def retry_scheduled(self, index: int, settings: dict, attempt: int,
                        backoff_seconds: float) -> None:
        self.counters["retries"] += 1
        self._sink(f"sweep point {settings}: attempt {attempt} failed, "
                   f"retrying in {backoff_seconds:.2f}s")

    def quarantined(self, index: int, settings: dict,
                    attempts: int) -> None:
        self.counters["quarantined"] += 1
        self._sink(f"sweep point {settings}: quarantined after "
                   f"{attempts} attempt(s)")

    def degraded(self, event) -> None:
        self.counters["degradations"] += 1
        target = event.to_workers or "serial"
        self._sink(f"pool degraded after {event.pool_failures} pool "
                   f"failure(s): {event.reason} "
                   f"({event.from_workers} -> {target} workers)")

    def chrome_trace(self) -> dict:
        """The attempt timeline as a Chrome trace-event document."""
        return {"traceEvents": list(self._events),
                "displayTimeUnit": "ms"}


class ServiceMonitor:
    """Observability of the durable campaign service.

    The service reports every queue/lease/cache transition here:
    counters for submissions, claims, completions, cache hits/misses/
    corruption, retries, quarantines, lease expirations and queue-full
    rejections, plus last-value gauges for queue depth and active
    leases.  Like :class:`CampaignMonitor`, everything is host-side —
    none of it enters a result table.
    """

    def __init__(self, sink: Callable[[str], None] | None = None):
        self.counters = {
            "submits": 0, "points_submitted": 0, "claims": 0,
            "completions": 0, "cache_hits": 0, "cache_misses": 0,
            "cache_corrupt": 0, "retries": 0, "quarantined": 0,
            "lease_expired": 0, "released": 0, "rejected": 0,
            "stale_writes": 0,
        }
        self.gauges = {"queue_depth": 0, "active_leases": 0}
        self._sink = sink or logger.info

    def observe_queue(self, depth: int, leases: int) -> None:
        self.gauges["queue_depth"] = depth
        self.gauges["active_leases"] = leases

    def submitted(self, job_id: str, points: int) -> None:
        self.counters["submits"] += 1
        self.counters["points_submitted"] += points
        self._sink(f"service: job {job_id} submitted ({points} points)")

    def rejected(self, reason: str) -> None:
        self.counters["rejected"] += 1
        self._sink(f"service: submission rejected ({reason})")

    def claimed(self, job_id: str, index: int) -> None:
        self.counters["claims"] += 1

    def completed(self, job_id: str, index: int, *,
                  cached: bool) -> None:
        self.counters["completions"] += 1
        if cached:
            self.counters["cache_hits"] += 1
        else:
            self.counters["cache_misses"] += 1

    def cache_corrupt(self, key: str) -> None:
        self.counters["cache_corrupt"] += 1
        self._sink(f"service: corrupt cache entry {key[:12]} "
                   f"quarantined; point will be recomputed")

    def retry(self, job_id: str, index: int, attempt: int,
              backoff_seconds: float) -> None:
        self.counters["retries"] += 1
        self._sink(f"service: {job_id}[{index}] attempt {attempt} "
                   f"failed, retrying in {backoff_seconds:.2f}s")

    def quarantined(self, job_id: str, index: int,
                    attempts: int) -> None:
        self.counters["quarantined"] += 1
        self._sink(f"service: {job_id}[{index}] quarantined after "
                   f"{attempts} attempt(s)")

    def lease_expired(self, job_id: str, index: int) -> None:
        self.counters["lease_expired"] += 1
        self._sink(f"service: {job_id}[{index}] lease expired; "
                   f"point reclaimed")

    def released(self, job_id: str, index: int) -> None:
        self.counters["released"] += 1

    def stale_write(self, job_id: str, index: int) -> None:
        self.counters["stale_writes"] += 1
        self._sink(f"service: {job_id}[{index}] stale fenced write "
                   f"rejected")


class ClusterMonitor(ServiceMonitor):
    """Observability of the multi-node cluster dispatcher.

    Extends :class:`ServiceMonitor` with the cluster-only signals:
    node lifecycle counters (registrations, deaths, rebalanced
    leases), per-node heartbeat gauges (last-seen wall-clock age and
    leases held), transport-fault counters fed by a
    :class:`~repro.service.transport.FaultyTransport`, and per-grant
    Chrome trace spans (one track per node) so a whole chaos
    campaign's schedule opens in Perfetto.
    """

    def __init__(self, sink: Callable[[str], None] | None = None,
                 clock: Callable[[], float] = time.perf_counter):
        super().__init__(sink)
        self.counters.update({
            "nodes_registered": 0, "node_heartbeats": 0,
            "nodes_dead": 0, "rebalanced": 0, "grants": 0,
            "degradations": 0,
        })
        self.node_gauges: dict[str, dict[str, float]] = {}
        self._clock = clock
        self._origin = clock()
        self._open_grants: dict[tuple[str, str, int], float] = {}
        self._events: list[dict] = []
        self._node_tids: dict[str, int] = {}

    def _now_us(self) -> float:
        return (self._clock() - self._origin) * 1e6

    def _tid(self, node: str) -> int:
        return self._node_tids.setdefault(node, len(self._node_tids))

    def node_registered(self, node: str, workers: int) -> None:
        self.counters["nodes_registered"] += 1
        self.node_gauges[node] = {"last_seen_age": 0.0,
                                  "leases_held": 0}
        self._sink(f"cluster: node {node} registered "
                   f"({workers} worker slot(s))")

    def node_heartbeat(self, node: str, age: float,
                       leases_held: int) -> None:
        self.counters["node_heartbeats"] += 1
        self.node_gauges[node] = {"last_seen_age": round(age, 3),
                                  "leases_held": leases_held}

    def node_dead(self, node: str, age: float, leases: int) -> None:
        self.counters["nodes_dead"] += 1
        self.node_gauges.pop(node, None)
        self._sink(f"cluster: node {node} declared dead (silent "
                   f"{age:.1f}s, {leases} lease(s) to rebalance)")

    def rebalanced(self, node: str, job_id: str, index: int) -> None:
        self.counters["rebalanced"] += 1
        self._sink(f"cluster: {job_id}[{index}] reaped from dead "
                   f"node {node}; point re-queued")

    def granted(self, node: str, job_id: str, index: int,
                fence: int | None) -> None:
        self.counters["grants"] += 1
        self._open_grants[(node, job_id, index)] = self._now_us()

    def grant_settled(self, node: str, job_id: str, index: int,
                      outcome: str) -> None:
        start = self._open_grants.pop((node, job_id, index), None)
        if start is None:
            return
        self._events.append({
            "name": f"{job_id}[{index}]",
            "cat": "cluster", "ph": "X", "pid": 1,
            "tid": self._tid(node),
            "ts": round(start, 3),
            "dur": round(self._now_us() - start, 3),
            "args": {"node": node, "outcome": outcome},
        })

    def degraded(self, event) -> None:
        self.counters["degradations"] += 1
        target = event.to_workers or "serial"
        self._sink(f"cluster degraded: {event.reason} "
                   f"({event.from_workers} -> {target})")

    def chrome_trace(self) -> dict:
        """The per-node grant timeline as a Chrome trace document."""
        events = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": f"node {node}"}}
            for node, tid in sorted(self._node_tids.items(),
                                    key=lambda item: item[1])]
        return {"traceEvents": events + list(self._events),
                "displayTimeUnit": "ms"}
