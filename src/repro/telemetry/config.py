"""Telemetry configuration.

Everything here is opt-in: the default configuration disables every
collector, and the orchestrator's hot loop performs no per-cycle work on
behalf of a disabled collector (hooks are hoisted into locals that are
``None`` when nothing is attached).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TelemetryConfig:
    """What to collect during a run (defaults: collect nothing).

    sample_interval
        Cycles between interval-sampler snapshots; ``0`` disables the
        sampler.  Each snapshot captures every modelled-hierarchy
        counter plus per-core progress, and consecutive snapshots are
        exposed as per-interval deltas (IPC-over-time, miss-rate-over-
        time, ...).
    histograms
        Record log2-bucketed latency histograms per request kind and
        per component (L2 hit vs memory round-trip, per bank, per
        memory controller, NoC traversal).
    chrome_trace
        Record core activity spans and request lifetimes for export as
        Chrome trace-event JSON (Perfetto / ``chrome://tracing``).
    progress
        Emit a periodic progress heartbeat (simulated cycles/sec,
        events/sec, host MIPS) through the ``repro.telemetry`` logger.
    progress_cycles
        Simulated cycles between heartbeat checks.
    host_profile
        Measure the host wall-time breakdown: Spike stepping vs Sparta
        event advancing vs statistics collection.
    guest_profile
        Collect the guest-side performance profile: per-core CPI
        stacks, the hot-block profile and per-PC / per-line miss
        attribution (``repro.telemetry.guestprof``), surfaced as
        ``SimulationResults.guest_profile``.
    """

    sample_interval: int = 0
    histograms: bool = False
    chrome_trace: bool = False
    progress: bool = False
    progress_cycles: int = 65536
    host_profile: bool = False
    guest_profile: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.sample_interval < 0:
            raise ValueError(
                f"sample_interval must be >= 0, got {self.sample_interval}")
        if self.progress_cycles < 1:
            raise ValueError(
                f"progress_cycles must be >= 1, got {self.progress_cycles}")

    @property
    def enabled(self) -> bool:
        """True when any collector is switched on."""
        return bool(self.sample_interval or self.histograms
                    or self.chrome_trace or self.progress
                    or self.host_profile or self.guest_profile)
