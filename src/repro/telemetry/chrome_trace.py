"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Complements the Paraver writer with the other trace format HPC people
reach for: the builder records core activity spans (executing /
raw-stall / fetch-stall) as complete ``"X"`` events and request
lifetimes as async ``"b"``/``"e"`` pairs, then writes the standard
``{"traceEvents": [...]}`` JSON object.  One simulated cycle maps to one
microsecond of trace time (the unit the viewers assume for ``ts``).

Format reference: the Trace Event Format document (the subset emitted
here — M/X/b/e/i phases — loads in both Perfetto and chrome://tracing).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.memhier.request import MemRequest

CORE_PID = 1       # process grouping all core activity tracks
REQUEST_PID = 2    # process grouping request-lifetime tracks

EXECUTING = "executing"
RAW_STALL = "raw-stall"
FETCH_STALL = "fetch-stall"


class ChromeTraceBuilder:
    """Collects trace events during a run; writes them as JSON."""

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self.events: list[dict] = []
        # Per-core open span: (state name, start cycle).
        self._open: list[tuple[str, int] | None] = \
            [(EXECUTING, 0) for _ in range(num_cores)]
        for core_id in range(num_cores):
            self._metadata("thread_name", CORE_PID, core_id,
                           f"core {core_id}")
            self._metadata("thread_name", REQUEST_PID, core_id,
                           f"core {core_id} requests")
        self._metadata("process_name", CORE_PID, 0, "coyote cores")
        self._metadata("process_name", REQUEST_PID, 0,
                       "coyote memory requests")

    def _metadata(self, name: str, pid: int, tid: int, label: str) -> None:
        self.events.append({"ph": "M", "name": name, "pid": pid,
                            "tid": tid, "args": {"name": label}})

    # -- core activity spans ------------------------------------------------

    def set_state(self, core_id: int, state: str, cycle: int) -> None:
        """Transition one core's activity track to ``state``."""
        open_span = self._open[core_id]
        if open_span is not None:
            previous, start = open_span
            if previous == state:
                return
            self._emit_span(core_id, previous, start, cycle)
        self._open[core_id] = (state, cycle)

    def halt(self, core_id: int, cycle: int) -> None:
        """Close the core's track and drop a halt marker."""
        open_span = self._open[core_id]
        if open_span is not None:
            state, start = open_span
            self._emit_span(core_id, state, start, cycle)
            self._open[core_id] = None
        self.events.append({"ph": "i", "name": "halt", "pid": CORE_PID,
                            "tid": core_id, "ts": cycle, "s": "t"})

    def counter(self, name: str, cycle: int, values: dict,
                tid: int = 0) -> None:
        """Emit one sample on a counter track (``"C"`` phase); viewers
        render consecutive samples of the same name as stacked area
        series (used for the guest profiler's stall-class tracks)."""
        self.events.append({"ph": "C", "name": name, "pid": CORE_PID,
                            "tid": tid, "ts": cycle,
                            "args": dict(values)})

    def observe_noc_occupancy(self, cycle: int, in_flight: int) -> None:
        """One sample on the NoC in-flight-messages counter track (a
        bound method, so a NoC holding it stays picklable)."""
        self.counter("noc-in-flight", cycle, {"messages": in_flight})

    def instant(self, name: str, cycle: int,
                args: dict | None = None) -> None:
        """Drop a global instant marker (fault injections, watchdog
        trips) onto the trace timeline."""
        event = {"ph": "i", "name": name, "cat": "resilience",
                 "pid": CORE_PID, "tid": 0, "ts": cycle, "s": "g"}
        if args:
            event["args"] = args
        self.events.append(event)

    def _emit_span(self, core_id: int, state: str, start: int,
                   end: int) -> None:
        if end <= start:
            return  # zero-length transition (stall retried same cycle)
        self.events.append({"ph": "X", "name": state, "cat": "core",
                            "pid": CORE_PID, "tid": core_id,
                            "ts": start, "dur": end - start})

    # -- request lifetimes --------------------------------------------------

    def observe_request(self, request: MemRequest) -> None:
        """Record one completed request as an async begin/end pair."""
        name = request.kind.value
        common = {"cat": "request", "name": name, "pid": REQUEST_PID,
                  "tid": request.core_id, "id": request.request_id}
        args = {"line_address": f"{request.line_address:#x}",
                "bank": request.bank_id, "mc": request.mc_id,
                "l2_hit": request.l2_hit,
                "latency": request.complete_cycle - request.issue_cycle}
        self.events.append({**common, "ph": "b", "ts": request.issue_cycle,
                            "args": args})
        self.events.append({**common, "ph": "e",
                            "ts": request.complete_cycle})

    # -- output -------------------------------------------------------------

    def finalize(self, end_cycle: int) -> None:
        """Close any still-open core spans at the end of the run."""
        for core_id, open_span in enumerate(self._open):
            if open_span is not None:
                state, start = open_span
                self._emit_span(core_id, state, start, end_cycle)
                self._open[core_id] = None

    def to_json(self) -> dict:
        """The trace as a JSON-serialisable trace-event object."""
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"tool": "coyote-repro",
                          "time_unit": "1 ts = 1 simulated cycle"},
        }

    def write(self, path: str | Path) -> Path:
        """Write the trace-event JSON file."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json()) + "\n")
        return path
