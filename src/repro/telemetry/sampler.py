"""Cycle-interval sampling of simulation counters.

The :class:`IntervalSampler` snapshots a flat ``name -> value`` view of
every counter each N cycles and exposes the run as a time series of
per-interval deltas.  Because each interval is the difference of two
snapshots and the final snapshot is taken after the drain, the deltas of
any counter telescope exactly to its end-of-run value — the consistency
guarantee the telemetry tests assert.

Samples are taken at the first opportunity at or after each interval
boundary (the orchestrator may fast-forward over fully-stalled regions),
so intervals record their actual ``[start, end)`` cycle range rather
than assuming a fixed width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

_ACTIVITY_PREFIX = "activity."


@dataclass
class Snapshot:
    """One point-in-time capture of every sampled counter."""

    cycle: int
    counters: dict[str, float]


@dataclass
class Interval:
    """The change between two consecutive snapshots."""

    start_cycle: int
    end_cycle: int
    deltas: dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def delta(self, name: str) -> float:
        """Change of one counter over this interval (0 when absent)."""
        return self.deltas.get(name, 0.0)

    @property
    def instructions(self) -> float:
        return self.delta("cores.instructions")

    @property
    def ipc(self) -> float:
        """Aggregate IPC within this interval."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        accesses = self.delta("cores.l1d_accesses")
        return self.delta("cores.l1d_misses") / accesses if accesses else 0.0

    @property
    def active_cores(self) -> float:
        """Mean number of cores issuing per cycle within this interval."""
        total = weighted = 0.0
        for name, value in self.deltas.items():
            if name.startswith(_ACTIVITY_PREFIX):
                count = int(name[len(_ACTIVITY_PREFIX):])
                total += value
                weighted += count * value
        return weighted / total if total else 0.0


class IntervalSampler:
    """Snapshots counters every ``interval`` cycles; serves the series.

    ``collect`` returns the current flat ``name -> value`` mapping; the
    orchestrator composes it from the hierarchy's counter tree plus
    per-core functional state.
    """

    def __init__(self, interval: int,
                 collect: Callable[[], dict[str, float]]):
        if interval < 1:
            raise ValueError(f"sample interval must be >= 1, got {interval}")
        self.interval = interval
        self._collect = collect
        self.snapshots: list[Snapshot] = []
        self._next_cycle = interval
        self._intervals: list[Interval] | None = None

    # -- recording (orchestrator-facing) ----------------------------------

    def start(self, cycle: int = 0) -> None:
        """Take the baseline snapshot (normally at cycle 0)."""
        self._sample(cycle)
        self._next_cycle = cycle + self.interval

    def maybe_sample(self, cycle: int) -> bool:
        """Sample when ``cycle`` has reached the next interval boundary."""
        if cycle < self._next_cycle:
            return False
        self._sample(cycle)
        # Skip boundaries the fast-forward jumped over; realign to the
        # grid so sampling stays periodic.
        self._next_cycle = cycle - cycle % self.interval + self.interval
        return True

    def finalize(self, cycle: int) -> None:
        """Take the closing snapshot so deltas sum to the final counters."""
        if not self.snapshots:
            self.start(0)
        last = self.snapshots[-1]
        if last.cycle < cycle:
            self._sample(cycle)
        elif len(self.snapshots) > 1:
            # A periodic sample already landed on the final cycle, but
            # the drain may have fired events since: re-capture it.
            self.snapshots[-1] = Snapshot(cycle, dict(self._collect()))
            self._intervals = None
        else:
            # Degenerate zero-length run: close with one empty interval.
            self._sample(cycle)

    def _sample(self, cycle: int) -> None:
        self.snapshots.append(Snapshot(cycle, dict(self._collect())))
        self._intervals = None

    # -- the series (results-facing) ---------------------------------------

    def intervals(self) -> list[Interval]:
        """Per-interval deltas between consecutive snapshots."""
        if self._intervals is None:
            result = []
            for before, after in zip(self.snapshots, self.snapshots[1:]):
                deltas = {
                    name: value - before.counters.get(name, 0.0)
                    for name, value in after.counters.items()}
                result.append(Interval(before.cycle, after.cycle, deltas))
            self._intervals = result
        return self._intervals

    def counter_names(self) -> list[str]:
        """Every counter name seen in any snapshot, sorted."""
        names: set[str] = set()
        for snapshot in self.snapshots:
            names.update(snapshot.counters)
        return sorted(names)

    def series(self, name: str) -> list[float]:
        """Per-interval deltas of one counter."""
        return [interval.delta(name) for interval in self.intervals()]

    def ipc_over_time(self) -> list[float]:
        return [interval.ipc for interval in self.intervals()]

    def l1d_miss_rate_over_time(self) -> list[float]:
        return [interval.l1d_miss_rate for interval in self.intervals()]

    def active_cores_over_time(self) -> list[float]:
        return [interval.active_cores for interval in self.intervals()]

    def bank_utilisation_over_time(self) -> dict[str, list[float]]:
        """Per-bank request deltas per interval, keyed by bank name."""
        result: dict[str, list[float]] = {}
        for name in self.counter_names():
            if name.endswith(".requests") and ".bank" in name:
                bank = name.rsplit(".", 2)[-2]
                result[bank] = self.series(name)
        return result

    def total_delta(self, name: str) -> float:
        """Sum of all interval deltas of one counter (== final value)."""
        return sum(self.series(name))

    def to_dict(self) -> dict:
        """JSON-serialisable view of the sampled time series."""
        intervals = self.intervals()
        return {
            "sample_interval": self.interval,
            "interval_end_cycles": [i.end_cycle for i in intervals],
            "interval_cycles": [i.cycles for i in intervals],
            "ipc": self.ipc_over_time(),
            "l1d_miss_rate": self.l1d_miss_rate_over_time(),
            "active_cores": self.active_cores_over_time(),
            "counters": {name: self.series(name)
                         for name in self.counter_names()},
        }
