"""Guest-side performance introspection: CPI stacks, hot blocks, misses.

Where the host profiler answers "where does the *host* spend wall
time", this module answers "where does the *guest* spend cycles":

* a **CPI stack** per core — every simulated cycle attributed to
  exactly one class (retired work, RAW-stall windows split by fill
  source, fetch-stall windows split the same way, post-halt idle, and
  a residual ``other`` for wake-to-issue gaps), with the invariant
  that the classes sum to the run's total cycles *exactly*;
* a **hot-block profile** — retired instructions aggregated by
  dynamically discovered basic block (a block ends at a taken
  control-flow boundary), annotated with disassembly via
  :mod:`repro.isa.disasm`;
* **per-PC / per-line miss attribution** — L1D and L1I miss counts and
  the stall cycles their fills cost, keyed by the faulting PC and by
  the cache-line address.

Everything is opt-in (``TelemetryConfig.guest_profile``) and designed
around the hot-loop contract: the only cost on the disabled path is a
``None`` attribute test per retired instruction, all other hooks sit
on miss/completion paths that are already cold.  Profiling reads the
simulation, never steers it — a profiled run is bit-identical to an
unprofiled one (tests/coyote/test_differential.py).

Cycle-accounting model (mirrors the orchestrator's single source of
truth): a core's stall window is ``now - stall_start``, closed by the
completion that wakes it, so ``raw_*`` classes sum to
``CoreStats.raw_stall_cycles`` and ``fetch_*`` classes to
``fetch_stall_cycles`` by construction; :meth:`GuestProfiler.finalize`
verifies both, plus the conservation invariant, and raises
:class:`ProfileError` on any mismatch.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.isa.disasm import disassemble_word
from repro.sparta.statistics import StatSample, format_report

# The stall-class taxonomy, in report order.  ``retired`` counts cycles
# that retired a scalar instruction, ``retired_vector`` one of the V
# extension; ``raw_*`` are cycles stalled on a RAW dependency and
# ``fetch_*`` cycles stalled on an instruction fetch, split by where
# the fill that ended the window was served from (``_l2`` = L2 hit,
# ``_mem`` = memory round-trip, ``_other`` = fill source not recorded,
# e.g. MCPU-aggregated vector loads); ``halted`` is post-exit idle and
# ``other`` the residual (wake-to-issue gaps between a fill returning
# and the core's next issue slot).
CPI_CLASSES = (
    "retired", "retired_vector",
    "raw_l2", "raw_mem", "raw_other",
    "fetch_l2", "fetch_mem", "fetch_other",
    "halted", "other",
)

_STALL_CLASSES = ("raw_l2", "raw_mem", "raw_other",
                  "fetch_l2", "fetch_mem", "fetch_other")

# Per-PC event-table slots (kept as a flat list on the hot-ish path).
_LOAD, _STORE, _IFETCH, _STALL = range(4)
_KIND_SLOT = {"load": _LOAD, "store": _STORE, "ifetch": _IFETCH}

# Disassembly-annotation bounds: blocks annotated per profile, and
# instructions rendered per block (a runaway straight-line block is
# truncated rather than dumped wholesale).
ANNOTATED_BLOCKS = 16
ANNOTATED_INSTRUCTIONS = 64


class ProfileError(RuntimeError):
    """A profile failed its own integrity checks (conservation or
    cross-checks against the orchestrator's stall accounting)."""


class CoreProfile:
    """Live per-core collector; its :meth:`retire` is the hot hook.

    Attached to ``CoreModel.profile`` by the orchestrator when guest
    profiling is enabled; stays ``None`` otherwise so the core's step
    pays a single is-None test.
    """

    __slots__ = ("core_id", "retired_scalar", "retired_vector",
                 "blocks", "pc_events", "line_events", "stalls",
                 "_block_start", "_expect_pc")

    def __init__(self, core_id: int):
        self.core_id = core_id
        self.retired_scalar = 0
        self.retired_vector = 0
        # block start pc -> [retired instructions, highest pc retired]
        self.blocks: dict[int, list[int]] = {}
        # faulting pc -> [loads, stores, ifetches, stall cycles]
        self.pc_events: dict[int, list[int]] = {}
        # cache-line address -> miss count
        self.line_events: dict[int, int] = {}
        self.stalls = dict.fromkeys(_STALL_CLASSES, 0)
        self._block_start = -1
        self._expect_pc = -1

    def retire(self, pc: int, instr) -> None:
        """Account one retired instruction (called from the core's
        step; one dict upsert per instruction when profiling is on)."""
        if pc != self._expect_pc:
            self._block_start = pc
        entry = self.blocks.get(self._block_start)
        if entry is None:
            entry = self.blocks[self._block_start] = [0, pc]
        entry[0] += 1
        if pc > entry[1]:
            entry[1] = pc
        if instr.is_branch or instr.is_jump:
            # Control flow ends the block; the successor starts a new
            # one whatever pc it lands on.
            self._expect_pc = -1
        else:
            self._expect_pc = pc + 4
        if instr.is_vector:
            self.retired_vector += 1
        else:
            self.retired_scalar += 1

    def note_event(self, pc: int, slot: int, cycles: int = 1) -> None:
        """Bump one per-PC event slot (miss count or stall cycles)."""
        entry = self.pc_events.get(pc)
        if entry is None:
            entry = self.pc_events[pc] = [0, 0, 0, 0]
        entry[slot] += cycles


class GuestProfiler:
    """The run-wide collector the orchestrator drives.

    Holds one :class:`CoreProfile` per core plus the pending-miss map
    that lets a completion be attributed back to the PC that faulted.
    Plain attributes only — a paused simulation pickles this object
    with everything else (checkpoint/restore).
    """

    def __init__(self, num_cores: int, chrome=None):
        self.cores = [CoreProfile(core_id)
                      for core_id in range(num_cores)]
        self.chrome = chrome
        # request id -> faulting pc, for every submitted miss that will
        # see a completion (writebacks are fire-and-forget and are
        # deliberately not attributed).
        self._pending: dict[int, int] = {}

    # -- submission / completion hooks (cold paths) ---------------------------

    def note_miss(self, miss_id: int, core_id: int, pc: int,
                  kind: str, line_address: int) -> None:
        """Record one submitted L1 miss against its faulting PC."""
        core = self.cores[core_id]
        core.note_event(pc, _KIND_SLOT[kind])
        core.line_events[line_address] = \
            core.line_events.get(line_address, 0) + 1
        self._pending[miss_id] = pc

    def note_complete(self, request) -> int | None:
        """Pop the faulting PC of a completed request (or ``None``
        for a request submitted before profiling attached)."""
        pending = self._pending
        member_ids = request.member_ids
        if member_ids:
            # MCPU aggregate: every member came from one instruction,
            # so any member's entry carries the PC.
            pc = None
            for member_id in member_ids:
                found = pending.pop(member_id, None)
                if found is not None:
                    pc = found
            return pc
        return pending.pop(request.request_id, None)

    def stall_end(self, core_id: int, pc: int | None, l2_hit,
                  cycles: int, cycle: int, fetch: bool) -> None:
        """Attribute one closed stall window to its class and PC.

        ``l2_hit`` is the completing request's fill source (``True`` =
        L2 hit, ``False`` = memory, ``None`` = not recorded).
        """
        core = self.cores[core_id]
        prefix = "fetch" if fetch else "raw"
        if l2_hit is True:
            cls = prefix + "_l2"
        elif l2_hit is False:
            cls = prefix + "_mem"
        else:
            cls = prefix + "_other"
        core.stalls[cls] += cycles
        if pc is not None:
            core.note_event(pc, _STALL, cycles)
        chrome = self.chrome
        if chrome is not None:
            chrome.counter(f"core{core_id} stall cycles", cycle,
                           core.stalls, tid=core_id)

    # -- finalisation ---------------------------------------------------------

    def finalize(self, end_cycle: int, states, memory=None,
                 annotate_blocks: int = ANNOTATED_BLOCKS
                 ) -> "GuestProfile":
        """Build the immutable :class:`GuestProfile` for a finished run.

        ``states`` supplies per-core ``raw_stall_cycles``,
        ``fetch_stall_cycles`` and ``halt_cycle`` (the orchestrator's
        own accounting, cross-checked here); ``memory`` enables
        disassembly annotation of the hottest blocks.
        """
        stacks = []
        for core, state in zip(self.cores, states):
            classes = {"retired": core.retired_scalar,
                       "retired_vector": core.retired_vector}
            classes.update(core.stalls)
            halt_cycle = state.halt_cycle
            classes["halted"] = (end_cycle - halt_cycle
                                 if halt_cycle is not None else 0)
            raw = (classes["raw_l2"] + classes["raw_mem"]
                   + classes["raw_other"])
            if raw != state.raw_stall_cycles:
                raise ProfileError(
                    f"core {core.core_id}: raw-stall classes sum to "
                    f"{raw}, orchestrator counted "
                    f"{state.raw_stall_cycles}")
            fetch = (classes["fetch_l2"] + classes["fetch_mem"]
                     + classes["fetch_other"])
            if fetch != state.fetch_stall_cycles:
                raise ProfileError(
                    f"core {core.core_id}: fetch-stall classes sum to "
                    f"{fetch}, orchestrator counted "
                    f"{state.fetch_stall_cycles}")
            other = end_cycle - sum(classes.values())
            if other < 0:
                raise ProfileError(
                    f"core {core.core_id}: attributed "
                    f"{end_cycle - other} cycles of {end_cycle} — "
                    f"classes overlap")
            classes["other"] = other
            stack = CpiStack(core_id=core.core_id, cycles=end_cycle,
                             classes=classes)
            stack.check()
            stacks.append(stack)

        blocks = self._merge_blocks()
        pc_misses, line_misses = self._merge_events()
        self._attribute_blocks(blocks, pc_misses)
        hot = [HotBlock(start_pc=start, end_pc=entry[0],
                        instructions=entry[1], stall_cycles=entry[2],
                        misses=entry[3])
               for start, entry in blocks.items()]
        hot.sort(key=lambda block: (-block.instructions, block.start_pc))
        if memory is not None:
            for block in hot[:annotate_blocks]:
                block.disassembly = _annotate(block, memory, pc_misses)
        return GuestProfile(cycles=end_cycle, stacks=stacks, blocks=hot,
                            pc_misses=pc_misses, line_misses=line_misses)

    def _merge_blocks(self) -> dict[int, list[int]]:
        """All cores' blocks as ``start -> [end, instrs, stall, miss]``
        (SPMD kernels retire the same blocks on every core)."""
        merged: dict[int, list[int]] = {}
        for core in self.cores:
            for start, (count, end) in core.blocks.items():
                entry = merged.get(start)
                if entry is None:
                    merged[start] = [end, count, 0, 0]
                else:
                    entry[0] = max(entry[0], end)
                    entry[1] += count
        return merged

    def _merge_events(self):
        pc_misses: dict[int, dict[str, int]] = {}
        line_misses: dict[int, int] = {}
        for core in self.cores:
            for pc, events in core.pc_events.items():
                entry = pc_misses.setdefault(
                    pc, {"loads": 0, "stores": 0, "ifetches": 0,
                         "stall_cycles": 0})
                entry["loads"] += events[_LOAD]
                entry["stores"] += events[_STORE]
                entry["ifetches"] += events[_IFETCH]
                entry["stall_cycles"] += events[_STALL]
            for line, count in core.line_events.items():
                line_misses[line] = line_misses.get(line, 0) + count
        return pc_misses, line_misses

    @staticmethod
    def _attribute_blocks(blocks: dict[int, list[int]],
                          pc_misses: dict[int, dict[str, int]]) -> None:
        """Fold per-PC stall cycles and miss counts into the block
        containing each PC (best-effort containment lookup)."""
        if not blocks:
            return
        starts = sorted(blocks)
        for pc, events in pc_misses.items():
            index = bisect_right(starts, pc) - 1
            if index < 0:
                continue
            entry = blocks[starts[index]]
            if pc > entry[0]:
                continue  # past the block's last retired pc
            entry[2] += events["stall_cycles"]
            entry[3] += (events["loads"] + events["stores"]
                         + events["ifetches"])


def _annotate(block: "HotBlock", memory,
              pc_misses: dict[int, dict[str, int]]) -> tuple[str, ...]:
    """Disassemble one block, marking PCs that missed or stalled."""
    lines = []
    pc = block.start_pc
    end = min(block.end_pc,
              block.start_pc + 4 * (ANNOTATED_INSTRUCTIONS - 1))
    while pc <= end:
        try:
            word = memory.load_int(pc, 4)
            text = disassemble_word(word)
        except Exception:
            text = ".word <unreadable>"
        events = pc_misses.get(pc)
        if events:
            notes = []
            misses = (events["loads"] + events["stores"]
                      + events["ifetches"])
            if misses:
                notes.append(f"misses {misses}")
            if events["stall_cycles"]:
                notes.append(f"stall {events['stall_cycles']}")
            if notes:
                text = f"{text:<32} ; {', '.join(notes)}"
        lines.append(f"{pc:#010x}  {text}")
        pc += 4
    if block.end_pc > end:
        skipped = (block.end_pc - end) // 4
        lines.append(f"{'':>10}  ... {skipped} more instruction(s)")
    return tuple(lines)


@dataclass
class CpiStack:
    """One core's cycle budget, attributed class by class.

    ``classes`` maps every name in :data:`CPI_CLASSES` to a cycle
    count; :meth:`check` enforces the conservation invariant (the
    values sum to ``cycles`` exactly).
    """

    core_id: int
    cycles: int
    classes: dict[str, int]

    def check(self) -> None:
        """Raise :class:`ProfileError` unless the stack conserves."""
        total = sum(self.classes.values())
        if total != self.cycles:
            raise ProfileError(
                f"core {self.core_id}: CPI stack sums to {total}, "
                f"run took {self.cycles} cycles")

    @property
    def retired(self) -> int:
        """Instructions retired (scalar + vector)."""
        return self.classes["retired"] + self.classes["retired_vector"]

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction (``inf`` for an idle core)."""
        retired = self.retired
        return self.cycles / retired if retired else float("inf")

    def to_dict(self) -> dict:
        return {"core_id": self.core_id, "cycles": self.cycles,
                "classes": dict(self.classes)}


@dataclass
class HotBlock:
    """One dynamic basic block of the merged hot-block profile."""

    start_pc: int
    end_pc: int
    instructions: int
    stall_cycles: int
    misses: int
    disassembly: tuple[str, ...] | None = None

    def to_dict(self) -> dict:
        data = {"start_pc": f"{self.start_pc:#x}",
                "end_pc": f"{self.end_pc:#x}",
                "instructions": self.instructions,
                "stall_cycles": self.stall_cycles,
                "misses": self.misses}
        if self.disassembly is not None:
            data["disassembly"] = list(self.disassembly)
        return data


@dataclass
class GuestProfile:
    """The finished guest-side profile of one run."""

    cycles: int
    stacks: list[CpiStack]
    blocks: list[HotBlock] = field(default_factory=list)
    pc_misses: dict[int, dict[str, int]] = field(default_factory=dict)
    line_misses: dict[int, int] = field(default_factory=dict)

    @property
    def instructions(self) -> int:
        return sum(stack.retired for stack in self.stacks)

    def aggregate(self) -> CpiStack:
        """All cores' stacks summed (``core_id = -1``); cycles scale
        with the core count so conservation still holds."""
        classes = dict.fromkeys(CPI_CLASSES, 0)
        for stack in self.stacks:
            for name, value in stack.classes.items():
                classes[name] += value
        return CpiStack(core_id=-1,
                        cycles=self.cycles * len(self.stacks),
                        classes=classes)

    def top_blocks(self, count: int = 10) -> list[HotBlock]:
        return self.blocks[:count]

    def samples(self) -> list[StatSample]:
        """The profile as Sparta report samples (one per core and
        class, plus per-core CPI), mergeable with the hierarchy's."""
        result = []
        for stack in self.stacks:
            path = f"guestprof.core{stack.core_id}"
            for name in CPI_CLASSES:
                result.append(StatSample(path, name,
                                         stack.classes[name],
                                         "CPI-stack cycles"))
            result.append(StatSample(path, "retired_instructions",
                                     stack.retired, ""))
        aggregate = self.aggregate()
        for name in CPI_CLASSES:
            result.append(StatSample("guestprof", name,
                                     aggregate.classes[name],
                                     "CPI-stack cycles (all cores)"))
        return result

    def stat_report(self) -> str:
        """The samples as an aligned text table."""
        return format_report(self.samples())

    def to_dict(self) -> dict:
        """JSON-serialisable form (PCs and lines as hex strings)."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi_stacks": [stack.to_dict() for stack in self.stacks],
            "hot_blocks": [block.to_dict() for block in self.blocks],
            "pc_misses": {f"{pc:#x}": dict(events)
                          for pc, events in sorted(self.pc_misses.items())},
            "line_misses": {f"{line:#x}": count
                            for line, count
                            in sorted(self.line_misses.items())},
        }
