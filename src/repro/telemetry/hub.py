"""The per-run telemetry hub.

One :class:`Telemetry` instance owns every collector enabled by a
:class:`~repro.telemetry.config.TelemetryConfig` and hands the
orchestrator the hooks it needs.  Collectors that are off stay ``None``
so call sites can hoist them into locals and skip all work — disabled
telemetry must cost nothing on the simulation's hot path.
"""

from __future__ import annotations

from typing import Callable

from repro.memhier.request import MemRequest
from repro.telemetry.chrome_trace import ChromeTraceBuilder
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.guestprof import GuestProfiler
from repro.telemetry.histogram import RequestLatencyRecorder
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.sampler import IntervalSampler


class _RequestFanout:
    """Deliver one completed request to several collectors.

    A class (not a closure) so a hierarchy holding it as its
    ``telemetry_sink`` stays picklable for checkpoint/restore.
    """

    def __init__(self, *sinks: Callable[[MemRequest], None]):
        self.sinks = sinks

    def __call__(self, request: MemRequest) -> None:
        for sink in self.sinks:
            sink(request)


class Telemetry:
    """Every enabled collector of one simulation run."""

    def __init__(self, config: TelemetryConfig, num_cores: int,
                 collect: Callable[[], dict[str, float]]):
        config.validate()
        self.config = config
        self.sampler: IntervalSampler | None = None
        if config.sample_interval:
            self.sampler = IntervalSampler(config.sample_interval, collect)
        self.latency: RequestLatencyRecorder | None = None
        if config.histograms:
            self.latency = RequestLatencyRecorder()
        self.chrome: ChromeTraceBuilder | None = None
        if config.chrome_trace:
            self.chrome = ChromeTraceBuilder(num_cores)
        self.profiler: HostProfiler | None = None
        if config.host_profile or config.progress:
            self.profiler = HostProfiler(config.progress_cycles)
        self.guestprof: GuestProfiler | None = None
        if config.guest_profile:
            self.guestprof = GuestProfiler(num_cores, chrome=self.chrome)

    def request_sink(self) -> Callable[[MemRequest], None] | None:
        """A completed-request callback, or None when nothing listens."""
        latency = self.latency
        chrome = self.chrome
        if latency is not None and chrome is not None:
            return _RequestFanout(latency.observe_request,
                                  chrome.observe_request)
        if latency is not None:
            return latency.observe_request
        if chrome is not None:
            return chrome.observe_request
        return None

    def noc_observer(self) -> Callable[[int], None] | None:
        """A per-message NoC latency callback, or None."""
        if self.latency is not None:
            return self.latency.observe_noc
        return None

    def noc_queue_observer(self) -> Callable[[int], None] | None:
        """A per-hop link queueing-delay callback (mesh/torus
        contention model), or None."""
        if self.latency is not None:
            return self.latency.observe_noc_queue
        return None
