"""Opt-in observability for Coyote runs.

Four collectors, all disabled by default and wired through
:class:`~repro.telemetry.config.TelemetryConfig`:

* :class:`~repro.telemetry.sampler.IntervalSampler` — cycle-interval
  snapshots of every counter, exposed as per-interval delta series;
* :class:`~repro.telemetry.histogram.RequestLatencyRecorder` —
  log2-bucketed latency histograms per request kind and component;
* :class:`~repro.telemetry.chrome_trace.ChromeTraceBuilder` — Chrome
  trace-event JSON export (Perfetto / ``chrome://tracing``);
* :class:`~repro.telemetry.profiler.HostProfiler` — host wall-time
  breakdown and a progress heartbeat;
* :class:`~repro.telemetry.guestprof.GuestProfiler` — guest-side
  introspection: CPI stacks, hot-block profiles, per-PC and per-line
  miss attribution (docs/OBSERVABILITY.md, "Guest profiling").
"""

from repro.telemetry.chrome_trace import ChromeTraceBuilder
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.guestprof import (
    CpiStack,
    GuestProfile,
    GuestProfiler,
    HotBlock,
    ProfileError,
)
from repro.telemetry.histogram import LatencyHistogram, \
    RequestLatencyRecorder
from repro.telemetry.hub import Telemetry
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.sampler import Interval, IntervalSampler, Snapshot

__all__ = [
    "ChromeTraceBuilder",
    "CpiStack",
    "GuestProfile",
    "GuestProfiler",
    "HostProfiler",
    "HotBlock",
    "Interval",
    "IntervalSampler",
    "LatencyHistogram",
    "ProfileError",
    "RequestLatencyRecorder",
    "Snapshot",
    "Telemetry",
    "TelemetryConfig",
]
