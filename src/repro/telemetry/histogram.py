"""Log2-bucketed latency histograms.

Request latencies span orders of magnitude (an L2 hit is tens of cycles,
a queued memory round-trip can be thousands), so buckets double in width:
bucket 0 holds latency 0, bucket *i* holds latencies in
``[2**(i-1), 2**i - 1]``.  Recording is O(1) and allocation-free once a
bucket exists, cheap enough to run on every completed request.
"""

from __future__ import annotations

from repro.memhier.request import MemRequest


class LatencyHistogram:
    """One log2-bucketed distribution of cycle latencies."""

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.buckets: list[int] = []
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, latency: int) -> None:
        """Add one observation (negative latencies are clamped to 0)."""
        if latency < 0:
            latency = 0
        index = latency.bit_length()
        buckets = self.buckets
        if index >= len(buckets):
            buckets.extend([0] * (index + 1 - len(buckets)))
        buckets[index] += 1
        self.count += 1
        self.total += latency
        if self.min is None or latency < self.min:
            self.min = latency
        if self.max is None or latency > self.max:
            self.max = latency

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """Inclusive ``(low, high)`` latency range of one bucket."""
        if index == 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket holding the given quantile."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0
        threshold = fraction * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= threshold:
                # Clamp the bucket's upper bound to the observed range.
                return min(self.bucket_bounds(index)[1], self.max)
        return self.max

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": [
                {"low": self.bucket_bounds(i)[0],
                 "high": self.bucket_bounds(i)[1],
                 "count": bucket}
                for i, bucket in enumerate(self.buckets) if bucket],
        }

    def __repr__(self) -> str:
        return (f"<LatencyHistogram {self.name} n={self.count} "
                f"mean={self.mean:.1f}>")


class RequestLatencyRecorder:
    """Latency histograms per request kind and per component.

    Hooks the hierarchy's telemetry sink (completed requests) and the
    NoC's latency observer (per-message traversal cost).  Keys:

    * ``kind.load`` / ``kind.store`` / ``kind.ifetch`` — end-to-end
      latency by request kind;
    * ``l2_hit`` / ``memory_roundtrip`` — end-to-end latency split by
      whether the L2 bank hit;
    * ``bank.bankN`` — end-to-end latency of requests served via bank N;
    * ``mc.mcN`` — end-to-end latency of requests that reached memory
      controller N;
    * ``noc`` — single NoC traversal latency per routed message;
    * ``noc_queue`` — per-hop link queueing delay under the mesh/torus
      contention model (0 on an uncontended hop).
    """

    def __init__(self):
        self.histograms: dict[str, LatencyHistogram] = {}

    def _histogram(self, key: str) -> LatencyHistogram:
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = LatencyHistogram(key)
            self.histograms[key] = histogram
        return histogram

    def record(self, key: str, latency: int) -> None:
        self._histogram(key).record(latency)

    def observe_request(self, request: MemRequest) -> None:
        """The hierarchy telemetry-sink entry point."""
        latency = request.complete_cycle - request.issue_cycle
        self.record(f"kind.{request.kind.value}", latency)
        if request.l2_hit is not None:
            self.record("l2_hit" if request.l2_hit else "memory_roundtrip",
                        latency)
        if request.bank_id >= 0:
            self.record(f"bank.bank{request.bank_id}", latency)
        if request.mc_id >= 0:
            self.record(f"mc.mc{request.mc_id}", latency)

    def observe_noc(self, latency: int) -> None:
        """The NoC latency-observer entry point."""
        self.record("noc", latency)

    def observe_noc_queue(self, wait: int) -> None:
        """The mesh/torus queue-observer entry point (link wait per
        hop)."""
        self.record("noc_queue", wait)

    def to_dict(self) -> dict:
        return {key: histogram.to_dict()
                for key, histogram in sorted(self.histograms.items())}

    def format_report(self) -> str:
        """Aligned text table: count / mean / p50 / p99 / max per key."""
        if not self.histograms:
            return "(no latency samples)"
        rows = [("histogram", "count", "mean", "p50", "p99", "max")]
        for key in sorted(self.histograms):
            histogram = self.histograms[key]
            rows.append((key, str(histogram.count),
                         f"{histogram.mean:.1f}",
                         str(histogram.percentile(0.50)),
                         str(histogram.percentile(0.99)),
                         str(histogram.max or 0)))
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(rows[0]))]
        lines = ["  ".join(cell.ljust(width)
                           for cell, width in zip(row, widths))
                 for row in rows]
        return "\n".join(lines)
