"""Dense matrix-multiplication kernels (scalar and vector).

``C = A @ B`` on row-major float64 matrices.  Rows of ``C`` are split
across harts.  The scalar version is one of the two Figure 3 workloads;
the vector version holds a strip of the C row in a vector accumulator and
broadcasts A elements with ``vfmacc.vf``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.data import dense_matrix
from repro.kernels.runtime import (
    emit_doubles,
    emit_zero_doubles,
    range_split,
    wrap_program,
)
from repro.kernels.workload import Workload, build_workload


def _matmul_data(size: int, seed: int) -> tuple[np.ndarray, np.ndarray,
                                                str]:
    a = dense_matrix(size, size, seed=seed)
    b = dense_matrix(size, size, seed=seed + 1)
    data = (emit_doubles("mat_a", a)
            + emit_doubles("mat_b", b)
            + emit_zero_doubles("mat_c", size * size))
    return a, b, data


def scalar_matmul(size: int = 16, num_cores: int = 1,
                  seed: int = 42) -> Workload:
    """Scalar triple-loop matmul (Figure 3's "Matmul" workload)."""
    a, b, data = _matmul_data(size, seed)
    row_bytes = 8 * size
    body = f"""\
main:
{range_split(size, num_cores)}
    li   s7, {size}
    li   s8, {row_bytes}
    la   s2, mat_a
    la   s3, mat_b
    la   s4, mat_c
mm_row_loop:
    bgeu s0, s1, mm_done
    mul  t5, s0, s8
    add  s9, s2, t5          # &A[i][0]
    add  s10, s4, t5         # &C[i][0]
    li   s5, 0               # j
mm_col_loop:
    bgeu s5, s7, mm_row_next
    fmv.d.x fa0, zero        # acc = 0.0
    mv   t0, s9              # a_ptr
    add  t1, s9, s8          # a_end
    slli t2, s5, 3
    add  t2, t2, s3          # b_ptr = &B[0][j]
mm_inner:
    fld  fa1, 0(t0)
    fld  fa2, 0(t2)
    fmadd.d fa0, fa1, fa2, fa0
    addi t0, t0, 8
    add  t2, t2, s8
    bltu t0, t1, mm_inner
    slli t3, s5, 3
    add  t3, t3, s10
    fsd  fa0, 0(t3)
    addi s5, s5, 1
    j    mm_col_loop
mm_row_next:
    addi s0, s0, 1
    j    mm_row_loop
mm_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="scalar-matmul", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol="mat_c", expected=a @ b,
        metadata={"size": size, "seed": seed})


def vector_matmul(size: int = 16, num_cores: int = 1,
                  seed: int = 42) -> Workload:
    """Vector matmul: C-row strips accumulated with ``vfmacc.vf``."""
    a, b, data = _matmul_data(size, seed)
    row_bytes = 8 * size
    body = f"""\
main:
{range_split(size, num_cores)}
    li   s7, {size}
    li   s8, {row_bytes}
    la   s2, mat_a
    la   s3, mat_b
    la   s4, mat_c
vm_row_loop:
    bgeu s0, s1, vm_done
    mul  t5, s0, s8
    add  s9, s2, t5          # &A[i][0]
    add  s10, s4, t5         # &C[i][0]
    li   s5, 0               # j0 (strip base)
vm_strip_loop:
    bgeu s5, s7, vm_row_next
    sub  t0, s7, s5
    vsetvli s6, t0, e64, m1, ta, ma
    vmv.v.i v8, 0            # strip accumulator = 0.0
    slli t2, s5, 3
    add  t2, t2, s3          # b_ptr = &B[0][j0]
    mv   t3, s9              # a_ptr
    add  t4, s9, s8          # a_end
vm_inner:
    fld  fa1, 0(t3)
    vle64.v v9, (t2)
    vfmacc.vf v8, fa1, v9
    addi t3, t3, 8
    add  t2, t2, s8
    bltu t3, t4, vm_inner
    slli t0, s5, 3
    add  t0, t0, s10
    vse64.v v8, (t0)
    add  s5, s5, s6          # j0 += vl
    j    vm_strip_loop
vm_row_next:
    addi s0, s0, 1
    j    vm_row_loop
vm_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="vector-matmul", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol="mat_c", expected=a @ b,
        metadata={"size": size, "seed": seed})
