"""Workload data generators: dense matrices and sparse CSR matrices.

Sparse generators cover the patterns SpMV studies care about: uniformly
random sparsity, banded (diagonal-clustered) structure, and clustered
non-zeros — the paper's §IV calls out "how the clustering of non-zero
values in sparse matrices can be exploited" as a question for Coyote.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CsrMatrix:
    """A CSR sparse matrix with float64 values."""

    num_rows: int
    num_cols: int
    values: np.ndarray    # float64[nnz]
    col_indices: np.ndarray  # int64[nnz]
    row_pointers: np.ndarray  # int64[num_rows + 1]

    @property
    def nnz(self) -> int:
        return len(self.values)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.num_rows, self.num_cols))
        for row in range(self.num_rows):
            start, end = self.row_pointers[row], self.row_pointers[row + 1]
            dense[row, self.col_indices[start:end]] = \
                self.values[start:end]
        return dense

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV: ``y = A @ x``."""
        y = np.zeros(self.num_rows)
        for row in range(self.num_rows):
            start, end = self.row_pointers[row], self.row_pointers[row + 1]
            y[row] = np.dot(self.values[start:end],
                            x[self.col_indices[start:end]])
        return y

    def to_ell(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Convert to ELLPACK: padded (values, columns) column-major.

        Returns ``(values, columns, width)`` where both arrays have shape
        ``(width, num_rows)`` flattened row-major (i.e. slot-major), and
        padded entries have value 0 and column 0.
        """
        width = max((int(self.row_pointers[row + 1]
                         - self.row_pointers[row])
                     for row in range(self.num_rows)), default=0)
        values = np.zeros((width, self.num_rows))
        columns = np.zeros((width, self.num_rows), dtype=np.int64)
        for row in range(self.num_rows):
            start, end = self.row_pointers[row], self.row_pointers[row + 1]
            length = end - start
            values[:length, row] = self.values[start:end]
            columns[:length, row] = self.col_indices[start:end]
        return values, columns, width


def dense_matrix(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    """A reproducible dense float64 matrix with entries in [-1, 1)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(rows, cols))


def dense_vector(length: int, seed: int = 0) -> np.ndarray:
    """A reproducible dense float64 vector with entries in [-1, 1)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=length)


def random_csr(num_rows: int, num_cols: int, nnz_per_row: int,
               seed: int = 0) -> CsrMatrix:
    """Uniformly random sparsity: each row gets ``nnz_per_row`` distinct
    random columns."""
    if nnz_per_row > num_cols:
        raise ValueError(f"nnz_per_row {nnz_per_row} exceeds {num_cols} "
                         f"columns")
    rng = np.random.default_rng(seed)
    values, columns, pointers = [], [], [0]
    for _row in range(num_rows):
        cols = np.sort(rng.choice(num_cols, size=nnz_per_row,
                                  replace=False))
        columns.extend(int(c) for c in cols)
        values.extend(rng.uniform(-1.0, 1.0, size=nnz_per_row))
        pointers.append(len(columns))
    return CsrMatrix(num_rows, num_cols, np.asarray(values),
                     np.asarray(columns, dtype=np.int64),
                     np.asarray(pointers, dtype=np.int64))


def banded_csr(num_rows: int, bandwidth: int, seed: int = 0) -> CsrMatrix:
    """A banded matrix: non-zeros within ``bandwidth`` of the diagonal.

    High spatial locality in the ``x`` gather — the friendly case.
    """
    rng = np.random.default_rng(seed)
    values, columns, pointers = [], [], [0]
    for row in range(num_rows):
        low = max(0, row - bandwidth)
        high = min(num_rows - 1, row + bandwidth)
        cols = range(low, high + 1)
        columns.extend(cols)
        values.extend(rng.uniform(-1.0, 1.0, size=len(list(cols))))
        pointers.append(len(columns))
    return CsrMatrix(num_rows, num_rows, np.asarray(values),
                     np.asarray(columns, dtype=np.int64),
                     np.asarray(pointers, dtype=np.int64))


def clustered_csr(num_rows: int, num_cols: int, nnz_per_row: int,
                  cluster_width: int, seed: int = 0) -> CsrMatrix:
    """Non-zeros clustered in one contiguous window per row.

    Models the clustering §IV discusses: gathers touch few cache lines
    per row, unlike the uniform-random case.
    """
    if cluster_width < nnz_per_row:
        raise ValueError("cluster_width must be >= nnz_per_row")
    rng = np.random.default_rng(seed)
    values, columns, pointers = [], [], [0]
    for _row in range(num_rows):
        base = int(rng.integers(0, max(1, num_cols - cluster_width)))
        offsets = np.sort(rng.choice(cluster_width, size=nnz_per_row,
                                     replace=False))
        columns.extend(int(base + offset) for offset in offsets)
        values.extend(rng.uniform(-1.0, 1.0, size=nnz_per_row))
        pointers.append(len(columns))
    return CsrMatrix(num_rows, num_cols, np.asarray(values),
                     np.asarray(columns, dtype=np.int64),
                     np.asarray(pointers, dtype=np.int64))
