"""AI kernel: a dense neural-network layer with ReLU.

The paper lists "AI" among the kernels to be adapted next (§III-A) and
ACME carries systolic-array accelerators for neural networks (§I-A).
This kernel computes ``y = relu(W @ x + b)`` — the building block of an
MLP inference — vectorised across output neurons: the weight matrix is
stored transposed so each input activation broadcasts into a unit-stride
``vfmacc.vf`` over an output strip, and ReLU is a single ``vfmax.vf``
against zero.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.data import dense_matrix, dense_vector
from repro.kernels.runtime import (
    emit_doubles,
    emit_zero_doubles,
    range_split,
    wrap_program,
)
from repro.kernels.workload import Workload, build_workload


def dense_relu_layer(in_dim: int = 32, out_dim: int = 32,
                     num_cores: int = 1, seed: int = 42) -> Workload:
    """One dense layer + ReLU; output neurons split across harts."""
    weights = dense_matrix(out_dim, in_dim, seed=seed)
    x = dense_vector(in_dim, seed=seed + 1)
    bias = dense_vector(out_dim, seed=seed + 2)
    expected = np.maximum(weights @ x + bias, 0.0)
    out_row_bytes = 8 * out_dim
    data = (emit_doubles("nn_wt", weights.T)   # transposed: (in, out)
            + emit_doubles("nn_x", x)
            + emit_doubles("nn_b", bias)
            + emit_zero_doubles("nn_y", out_dim))
    body = f"""\
main:
{range_split(out_dim, num_cores)}
    la   s2, nn_wt
    la   s3, nn_x
    la   s4, nn_b
    la   s5, nn_y
    li   s7, {in_dim}
    li   s8, {out_row_bytes}
    fmv.d.x fs1, zero        # ReLU threshold
nn_strip:
    bgeu s0, s1, nn_done
    sub  t0, s1, s0
    vsetvli s9, t0, e64, m1, ta, ma
    slli s10, s0, 3          # strip byte offset into outputs
    add  t1, s4, s10
    vle64.v v8, (t1)         # acc = bias strip
    mv   t2, s3              # &x[0]
    add  t3, s2, s10         # &WT[0][j0]
    li   t4, 0               # k
nn_inner:
    bgeu t4, s7, nn_relu
    fld  fa0, 0(t2)          # x[k]
    vle64.v v1, (t3)         # WT[k][j0 : j0+vl]
    vfmacc.vf v8, fa0, v1
    addi t2, t2, 8
    add  t3, t3, s8
    addi t4, t4, 1
    j    nn_inner
nn_relu:
    vfmax.vf v8, v8, fs1     # relu
    add  t5, s5, s10
    vse64.v v8, (t5)
    add  s0, s0, s9
    j    nn_strip
nn_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="nn-dense-relu", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol="nn_y", expected=expected,
        metadata={"in_dim": in_dim, "out_dim": out_dim, "seed": seed})


def mlp_inference(dims: tuple[int, ...] = (32, 48, 32, 16),
                  num_cores: int = 1, seed: int = 42) -> Workload:
    """A small multi-layer perceptron: chained dense+ReLU layers.

    ``dims`` gives (input, hidden..., output) sizes.  Layers execute
    sequentially; each layer's neurons are split across harts with a
    barrier between layers.
    """
    if len(dims) < 2:
        raise ValueError("an MLP needs at least input and output dims")
    from repro.kernels.runtime import barrier, barrier_data

    rng_offset = 0
    x = dense_vector(dims[0], seed=seed)
    activations = x
    data_parts = [emit_doubles("mlp_x", x), barrier_data()]
    body_parts = [f"""\
main:
    mv   a6, a0              # preserve hartid for barriers
"""]
    for layer, (in_dim, out_dim) in enumerate(zip(dims, dims[1:])):
        weights = dense_matrix(out_dim, in_dim,
                               seed=seed + 10 + rng_offset)
        bias = dense_vector(out_dim, seed=seed + 11 + rng_offset)
        rng_offset += 2
        activations = np.maximum(weights @ activations + bias, 0.0)
        in_label = "mlp_x" if layer == 0 else f"mlp_a{layer - 1}"
        out_label = f"mlp_a{layer}"
        data_parts.append(emit_doubles(f"mlp_w{layer}", weights.T))
        data_parts.append(emit_doubles(f"mlp_b{layer}", bias))
        data_parts.append(emit_zero_doubles(out_label, out_dim))
        body_parts.append(f"""\
    mv   a0, a6
{range_split(out_dim, num_cores)}
    la   s2, mlp_w{layer}
    la   s3, {in_label}
    la   s4, mlp_b{layer}
    la   s5, {out_label}
    li   s7, {in_dim}
    li   s8, {8 * out_dim}
    fmv.d.x fs1, zero
l{layer}_strip:
    bgeu s0, s1, l{layer}_done
    sub  t0, s1, s0
    vsetvli s9, t0, e64, m1, ta, ma
    slli s10, s0, 3
    add  t1, s4, s10
    vle64.v v8, (t1)
    mv   t2, s3
    add  t3, s2, s10
    li   t4, 0
l{layer}_inner:
    bgeu t4, s7, l{layer}_relu
    fld  fa0, 0(t2)
    vle64.v v1, (t3)
    vfmacc.vf v8, fa0, v1
    addi t2, t2, 8
    add  t3, t3, s8
    addi t4, t4, 1
    j    l{layer}_inner
l{layer}_relu:
    vfmax.vf v8, v8, fs1
    add  t5, s5, s10
    vse64.v v8, (t5)
    add  s0, s0, s9
    j    l{layer}_strip
l{layer}_done:
{barrier(num_cores)}
""")
    body_parts.append("    li   a0, 0\n    ret\n")
    final_label = f"mlp_a{len(dims) - 2}"
    return build_workload(
        name="mlp-inference",
        source=wrap_program("".join(body_parts), "".join(data_parts)),
        num_cores=num_cores, output_symbol=final_label,
        expected=activations,
        metadata={"dims": dims, "seed": seed})
