"""Bare-metal runtime scaffolding shared by all kernels.

Provides the boot/exit wrapper (each hart calls ``main`` with
``a0 = hartid`` and exits through the ``tohost`` protocol), assembly
fragments like the per-hart work splitter, and emitters that turn numpy
arrays into ``.data`` directives.
"""

from __future__ import annotations

import itertools

import numpy as np

_PROLOG = """\
.text
.globl _start
_start:
    csrr a0, mhartid
    jal  ra, main
exit:
    slli a0, a0, 1
    ori  a0, a0, 1
    la   t6, tohost
    sd   a0, 0(t6)
halt_loop:
    j    halt_loop
"""

_TOHOST = """\
.align 3
tohost:
    .dword 0
"""

_label_counter = itertools.count()


def wrap_program(main_body: str, data_section: str) -> str:
    """Assemble the full source: prolog + ``main`` + data + tohost.

    ``main_body`` must define the ``main`` label and return (``ret``) with
    the exit code in ``a0``.
    """
    return (f"{_PROLOG}\n{main_body}\n.data\n{_TOHOST}\n{data_section}\n")


def range_split(total: str | int, cores: str | int,
                start_reg: str = "s0", end_reg: str = "s1") -> str:
    """Fragment computing this hart's [start, end) slice of ``total`` items.

    Expects ``a0 = hartid``; clobbers ``t0``-``t4``.  Remainder items go
    one-each to the lowest-numbered harts, so any total/cores combination
    divides fully.
    """
    uid = next(_label_counter)
    return f"""\
    li   t0, {total}
    li   t1, {cores}
    divu t2, t0, t1              # q = total / cores
    remu t3, t0, t1              # r = total % cores
    mul  {start_reg}, a0, t2     # start = hid * q
    bltu a0, t3, rs_lo_{uid}     # if hid < r: start += hid; len = q+1
    add  {start_reg}, {start_reg}, t3
    mv   t4, t2
    j    rs_done_{uid}
rs_lo_{uid}:
    add  {start_reg}, {start_reg}, a0
    addi t4, t2, 1
rs_done_{uid}:
    add  {end_reg}, {start_reg}, t4
"""


def barrier(num_cores: int, hartid_reg: str = "a6") -> str:
    """Sense-reversing barrier fragment built on ``amoadd.w``.

    Requires the data section to contain ``bar_cnt``/``bar_gen`` words
    (use :func:`barrier_data`).  Clobbers ``t0``-``t5``.  Safe for
    repeated use: the generation counter only ever increments.
    """
    uid = next(_label_counter)
    return f"""\
    la   t0, bar_gen
    lw   t1, 0(t0)           # my generation
    la   t2, bar_cnt
    li   t3, 1
    amoadd.w t4, t3, (t2)    # t4 = arrivals before me
    addi t4, t4, 1
    li   t5, {num_cores}
    bne  t4, t5, bw_{uid}    # not last: wait for the generation bump
    sw   zero, 0(t2)         # last arrival: reset count,
    addi t1, t1, 1           # bump generation, and go
    sw   t1, 0(t0)
    j    bd_{uid}
bw_{uid}:
    lw   t5, 0(t0)
    beq  t5, t1, bw_{uid}
bd_{uid}:
"""


def barrier_data() -> str:
    """The data words the :func:`barrier` fragment spins on."""
    return ".align 3\nbar_cnt:\n    .word 0\nbar_gen:\n    .word 0\n"


def emit_doubles(label: str, values: np.ndarray | list[float]) -> str:
    """Emit a labelled ``.double`` array (8-byte aligned)."""
    array = np.asarray(values, dtype=np.float64).ravel()
    lines = [f".align 3", f"{label}:"]
    for start in range(0, len(array), 8):
        chunk = array[start:start + 8]
        lines.append("    .double " + ", ".join(repr(float(value))
                                                for value in chunk))
    if len(array) == 0:
        lines.append("    .zero 0")
    return "\n".join(lines) + "\n"


def emit_dwords(label: str, values: np.ndarray | list[int]) -> str:
    """Emit a labelled ``.dword`` array (8-byte aligned)."""
    if isinstance(values, np.ndarray):
        array = [int(value) for value in values.ravel()]
    else:
        # Avoid np.asarray here: Python ints above 2**63-1 would be
        # coerced to float64 and lose precision.
        array = [int(value) for value in values]
    lines = [f".align 3", f"{label}:"]
    for start in range(0, len(array), 8):
        chunk = array[start:start + 8]
        lines.append("    .dword " + ", ".join(str(value)
                                               for value in chunk))
    if not array:
        lines.append("    .zero 0")
    return "\n".join(lines) + "\n"


def emit_zero_doubles(label: str, count: int) -> str:
    """Emit a labelled zero-initialised array of ``count`` doubles."""
    return f".align 3\n{label}:\n    .zero {8 * count}\n"


def read_doubles(memory, address: int, count: int) -> np.ndarray:
    """Read ``count`` float64 values from simulated memory."""
    raw = memory.load_bytes(address, 8 * count)
    return np.frombuffer(raw, dtype=np.float64).copy()


def read_dwords(memory, address: int, count: int) -> np.ndarray:
    """Read ``count`` uint64 values from simulated memory."""
    raw = memory.load_bytes(address, 8 * count)
    return np.frombuffer(raw, dtype=np.uint64).copy()
