"""RISC-V kernel workloads for Coyote (assembled from genuine RV64+RVV
assembly) plus their data generators and numpy verifiers."""

from repro.kernels.data import (
    CsrMatrix,
    banded_csr,
    clustered_csr,
    dense_matrix,
    dense_vector,
    random_csr,
)
from repro.kernels.compression import quantise_matrix, spmv_csr_compressed
from repro.kernels.extras import stream_triad, vector_axpy, vector_dot
from repro.kernels.fft import fft_radix2
from repro.kernels.histogram import histogram
from repro.kernels.nn import dense_relu_layer, mlp_inference
from repro.kernels.matmul import scalar_matmul, vector_matmul
from repro.kernels.spmv import (
    SPMV_VARIANTS,
    scalar_spmv,
    spmv_csr_gather_accum,
    spmv_csr_gather_reduce,
    spmv_ell,
)
from repro.kernels.stencil import reference_stencil, vector_stencil
from repro.kernels.workload import Workload, build_workload

KERNELS = {
    "scalar-matmul": scalar_matmul,
    "vector-matmul": vector_matmul,
    "scalar-spmv": scalar_spmv,
    "spmv-csr-gather-reduce": spmv_csr_gather_reduce,
    "spmv-csr-gather-accum": spmv_csr_gather_accum,
    "spmv-ell": spmv_ell,
    "spmv-csr-compressed": spmv_csr_compressed,
    "vector-stencil": vector_stencil,
    "vector-axpy": vector_axpy,
    "stream-triad": stream_triad,
    "vector-dot": vector_dot,
    "fft-radix2": fft_radix2,
    "nn-dense-relu": dense_relu_layer,
    "mlp-inference": mlp_inference,
    "histogram": histogram,
}

__all__ = [
    "KERNELS",
    "SPMV_VARIANTS",
    "CsrMatrix",
    "Workload",
    "banded_csr",
    "build_workload",
    "clustered_csr",
    "dense_matrix",
    "dense_relu_layer",
    "dense_vector",
    "fft_radix2",
    "histogram",
    "mlp_inference",
    "quantise_matrix",
    "random_csr",
    "spmv_csr_compressed",
    "reference_stencil",
    "scalar_matmul",
    "scalar_spmv",
    "spmv_csr_gather_accum",
    "spmv_csr_gather_reduce",
    "spmv_ell",
    "stream_triad",
    "vector_axpy",
    "vector_dot",
    "vector_matmul",
    "vector_stencil",
]
