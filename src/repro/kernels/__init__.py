"""RISC-V kernel workloads for Coyote (assembled from genuine RV64+RVV
assembly) plus their data generators and numpy verifiers."""

from repro.kernels.data import (
    CsrMatrix,
    banded_csr,
    clustered_csr,
    dense_matrix,
    dense_vector,
    random_csr,
)
from repro.kernels.compression import quantise_matrix, spmv_csr_compressed
from repro.kernels.extras import stream_triad, vector_axpy, vector_dot
from repro.kernels.fft import fft_radix2
from repro.kernels.histogram import histogram
from repro.kernels.nn import dense_relu_layer, mlp_inference
from repro.kernels.matmul import scalar_matmul, vector_matmul
from repro.kernels.spmv import (
    SPMV_VARIANTS,
    scalar_spmv,
    spmv_csr_gather_accum,
    spmv_csr_gather_reduce,
    spmv_ell,
)
from repro.kernels.stencil import reference_stencil, vector_stencil
from repro.kernels.workload import Workload, build_workload

KERNELS = {
    "scalar-matmul": scalar_matmul,
    "vector-matmul": vector_matmul,
    "scalar-spmv": scalar_spmv,
    "spmv-csr-gather-reduce": spmv_csr_gather_reduce,
    "spmv-csr-gather-accum": spmv_csr_gather_accum,
    "spmv-ell": spmv_ell,
    "spmv-csr-compressed": spmv_csr_compressed,
    "vector-stencil": vector_stencil,
    "vector-axpy": vector_axpy,
    "stream-triad": stream_triad,
    "vector-dot": vector_dot,
    "fft-radix2": fft_radix2,
    "nn-dense-relu": dense_relu_layer,
    "mlp-inference": mlp_inference,
    "histogram": histogram,
}

def instantiate(kernel: str, num_cores: int, size: int | None = None):
    """Build a named kernel workload with a sensible size argument.

    The single place that knows each kernel family's size-keyword
    convention (``size`` / ``num_rows`` / layer dimensions / ``length``);
    the CLI and the :mod:`repro.api` facade both route through it.
    ``size=None`` uses the kernel's own default problem size.
    """
    try:
        factory = KERNELS[kernel]
    except KeyError:
        raise ValueError(f"unknown kernel {kernel!r} "
                         f"(expected one of {sorted(KERNELS)})") from None
    if size is None:
        return factory(num_cores=num_cores)
    if "matmul" in kernel:
        return factory(size=size, num_cores=num_cores)
    if "spmv" in kernel:
        return factory(num_rows=size, num_cores=num_cores)
    if kernel == "nn-dense-relu":
        return factory(in_dim=size, out_dim=size, num_cores=num_cores)
    if kernel == "mlp-inference":
        return factory(dims=(size, size, size), num_cores=num_cores)
    return factory(length=size, num_cores=num_cores)


__all__ = [
    "KERNELS",
    "SPMV_VARIANTS",
    "instantiate",
    "CsrMatrix",
    "Workload",
    "banded_csr",
    "build_workload",
    "clustered_csr",
    "dense_matrix",
    "dense_relu_layer",
    "dense_vector",
    "fft_radix2",
    "histogram",
    "mlp_inference",
    "quantise_matrix",
    "random_csr",
    "spmv_csr_compressed",
    "reference_stencil",
    "scalar_matmul",
    "scalar_spmv",
    "spmv_csr_gather_accum",
    "spmv_csr_gather_reduce",
    "spmv_ell",
    "stream_triad",
    "vector_axpy",
    "vector_dot",
    "vector_matmul",
    "vector_stencil",
]
