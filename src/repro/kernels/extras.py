"""Additional vector kernels beyond the paper's four families.

The paper notes "more kernels will be adapted in the future"; these are
the obvious next ones for memory-system studies: DAXPY and the STREAM
triad (pure-bandwidth dense sweeps) and a dot product (reduction-bound).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.data import dense_vector
from repro.kernels.runtime import (
    emit_doubles,
    emit_zero_doubles,
    range_split,
    wrap_program,
)
from repro.kernels.workload import Workload, build_workload


def vector_axpy(length: int = 512, alpha: float = 2.5, num_cores: int = 1,
                seed: int = 42) -> Workload:
    """DAXPY: ``y = alpha * x + y`` (two streams in, one out)."""
    x = dense_vector(length, seed=seed)
    y = dense_vector(length, seed=seed + 1)
    expected = alpha * x + y
    data = (emit_doubles("axpy_x", x) + emit_doubles("axpy_y", y)
            + emit_doubles("axpy_alpha", [alpha]))
    body = f"""\
main:
{range_split(length, num_cores)}
    la   s2, axpy_x
    la   s3, axpy_y
    la   t0, axpy_alpha
    fld  fs0, 0(t0)
ax_strip:
    bgeu s0, s1, ax_done
    sub  t0, s1, s0
    vsetvli s4, t0, e64, m1, ta, ma
    slli t1, s0, 3
    add  t2, s2, t1
    vle64.v v1, (t2)         # x strip
    add  t3, s3, t1
    vle64.v v2, (t3)         # y strip
    vfmacc.vf v2, fs0, v1    # y += alpha * x
    vse64.v v2, (t3)
    add  s0, s0, s4
    j    ax_strip
ax_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="vector-axpy", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol="axpy_y", expected=expected,
        metadata={"length": length, "alpha": alpha, "seed": seed})


def stream_triad(length: int = 512, alpha: float = 3.0, num_cores: int = 1,
                 seed: int = 42) -> Workload:
    """STREAM triad: ``c = a + alpha * b`` — the canonical bandwidth
    benchmark."""
    a = dense_vector(length, seed=seed)
    b = dense_vector(length, seed=seed + 1)
    expected = a + alpha * b
    data = (emit_doubles("triad_a", a) + emit_doubles("triad_b", b)
            + emit_zero_doubles("triad_c", length)
            + emit_doubles("triad_alpha", [alpha]))
    body = f"""\
main:
{range_split(length, num_cores)}
    la   s2, triad_a
    la   s3, triad_b
    la   s4, triad_c
    la   t0, triad_alpha
    fld  fs0, 0(t0)
tr_strip:
    bgeu s0, s1, tr_done
    sub  t0, s1, s0
    vsetvli s5, t0, e64, m1, ta, ma
    slli t1, s0, 3
    add  t2, s2, t1
    vle64.v v1, (t2)
    add  t3, s3, t1
    vle64.v v2, (t3)
    vfmacc.vf v1, fs0, v2    # a + alpha * b
    add  t4, s4, t1
    vse64.v v1, (t4)
    add  s0, s0, s5
    j    tr_strip
tr_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="stream-triad", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol="triad_c", expected=expected,
        metadata={"length": length, "alpha": alpha, "seed": seed})


def vector_dot(length: int = 512, num_cores: int = 1,
               seed: int = 42) -> Workload:
    """Dot product: partial sums per hart, written to a per-hart slot.

    Each hart reduces its slice with ``vfredosum`` and stores the partial
    into ``dot_partials[hartid]``; verification sums the partials.
    """
    x = dense_vector(length, seed=seed)
    y = dense_vector(length, seed=seed + 1)
    data = (emit_doubles("dot_x", x) + emit_doubles("dot_y", y)
            + emit_zero_doubles("dot_partials", num_cores))
    body = f"""\
main:
    mv   a7, a0
{range_split(length, num_cores)}
    la   s2, dot_x
    la   s3, dot_y
    fmv.d.x fa0, zero
dt_strip:
    bgeu s0, s1, dt_store
    sub  t0, s1, s0
    vsetvli s4, t0, e64, m1, ta, ma
    slli t1, s0, 3
    add  t2, s2, t1
    vle64.v v1, (t2)
    add  t3, s3, t1
    vle64.v v2, (t3)
    vfmul.vv v3, v1, v2
    vfmv.s.f v4, fa0
    vfredosum.vs v4, v3, v4
    vfmv.f.s fa0, v4
    add  s0, s0, s4
    j    dt_strip
dt_store:
    la   t0, dot_partials
    slli t1, a7, 3
    add  t0, t0, t1
    fsd  fa0, 0(t0)
    li   a0, 0
    ret
"""
    program_source = wrap_program(body, data)

    # The verifier checks the *sum* of the per-hart partials, since the
    # split points depend on num_cores.
    from repro.assembler import assemble
    program = assemble(program_source)
    address = program.symbols["dot_partials"]
    expected_total = float(np.dot(x, y))

    def verify(memory) -> bool:
        raw = memory.load_bytes(address, 8 * num_cores)
        partials = np.frombuffer(raw, dtype=np.float64)
        return bool(np.isclose(partials.sum(), expected_total,
                               rtol=1e-10))

    return Workload(name="vector-dot", program=program,
                    num_cores=num_cores, verify=verify,
                    expected=np.asarray([expected_total]),
                    metadata={"length": length, "seed": seed})
