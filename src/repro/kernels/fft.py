"""HPC kernel: radix-2 complex FFT (decimation in time).

§III-A: "More kernels will be adapted in the future ... These will
include FFT".  This is an iterative radix-2 Cooley-Tukey FFT on complex
float64 data held as separate re/im arrays.  The input is stored
bit-reverse permuted at generation time (a data-layout choice, as real
FFT libraries do for the in-place variant), so the assembly runs the
log2(N) butterfly stages only.

Parallelisation: each stage has exactly N/2 butterflies; that index
range is split across harts once, each hart maps its flat butterfly
index ``b`` to (block, offset) with a div/rem, and a barrier separates
stages.  Twiddles are precomputed at maximum resolution —
``w[k] = exp(-2*pi*i*k / N)`` for ``k < N/2`` — and stage ``m`` indexes
them with stride ``N/m``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import (
    barrier,
    barrier_data,
    emit_doubles,
    range_split,
    wrap_program,
)
from repro.kernels.workload import Workload
from repro.assembler import assemble
from repro.utils.bitops import is_power_of_two


def _bit_reverse_permutation(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def fft_radix2(length: int = 64, num_cores: int = 1,
               seed: int = 42) -> Workload:
    """In-place radix-2 FFT over ``length`` complex points."""
    if not is_power_of_two(length) or length < 2:
        raise ValueError(f"FFT length must be a power of two >= 2, "
                         f"got {length}")
    rng = np.random.default_rng(seed)
    signal = (rng.uniform(-1.0, 1.0, size=length)
              + 1j * rng.uniform(-1.0, 1.0, size=length))
    expected = np.fft.fft(signal)
    permutation = _bit_reverse_permutation(length)
    permuted = signal[permutation]
    twiddles = np.exp(-2j * np.pi * np.arange(length // 2) / length)
    stages = length.bit_length() - 1
    butterflies = length // 2
    data = (emit_doubles("fft_re", permuted.real.copy())
            + emit_doubles("fft_im", permuted.imag.copy())
            + emit_doubles("fft_twr", twiddles.real.copy())
            + emit_doubles("fft_twi", twiddles.imag.copy())
            + barrier_data())
    body = f"""\
main:
    mv   a6, a0              # hartid, preserved for barriers
{range_split(butterflies, num_cores)}
    mv   a2, s0              # my butterfly range [a2, a3)
    mv   a3, s1
    la   s2, fft_re
    la   s3, fft_im
    la   s4, fft_twr
    la   s5, fft_twi
    li   s6, {length}
    li   s7, 1               # half = m/2, starts at 1
ff_stage:
    slli s8, s7, 1           # m = 2 * half
    divu s9, s6, s8          # twiddle stride = N / m
    mv   s10, a2             # b = my first butterfly
ff_bfly:
    bgeu s10, a3, ff_sync
    divu t0, s10, s7         # block index = b / half
    remu t1, s10, s7         # j = b % half
    mul  t2, t0, s8          # k = block * m
    add  t3, t2, t1          # top = k + j
    add  t4, t3, s7          # bot = top + half
    # twiddle = tw[j * stride]
    mul  t5, t1, s9
    slli t5, t5, 3
    add  t6, s4, t5
    fld  fa0, 0(t6)          # wr
    add  t6, s5, t5
    fld  fa1, 0(t6)          # wi
    # load bottom element b = (br, bi)
    slli t5, t4, 3
    add  t6, s2, t5
    fld  fa2, 0(t6)          # br
    add  t6, s3, t5
    fld  fa3, 0(t6)          # bi
    # t = w * b
    fmul.d  fa4, fa0, fa2    # wr*br
    fnmsub.d fa4, fa1, fa3, fa4   # -(wi*bi) + wr*br = t_re
    fmul.d  fa5, fa0, fa3    # wr*bi
    fmadd.d fa5, fa1, fa2, fa5    # wi*br + wr*bi = t_im
    # load top element u = (ur, ui)
    slli t5, t3, 3
    add  t6, s2, t5
    fld  fa6, 0(t6)          # ur
    add  t6, s3, t5
    fld  fa7, 0(t6)          # ui
    # top = u + t ; bot = u - t
    fadd.d fs0, fa6, fa4
    fadd.d fs2, fa7, fa5
    fsub.d fs3, fa6, fa4
    fsub.d fs4, fa7, fa5
    add  t6, s2, t5
    fsd  fs0, 0(t6)
    add  t6, s3, t5
    fsd  fs2, 0(t6)
    slli t5, t4, 3
    add  t6, s2, t5
    fsd  fs3, 0(t6)
    add  t6, s3, t5
    fsd  fs4, 0(t6)
    addi s10, s10, 1
    j    ff_bfly
ff_sync:
{barrier(num_cores)}
    mv   s7, s8              # half = m
    bltu s7, s6, ff_stage    # while m < N
    li   a0, 0
    ret
"""
    program = assemble(wrap_program(body, data))
    re_address = program.symbols["fft_re"]
    im_address = program.symbols["fft_im"]

    def verify(memory) -> bool:
        raw_re = memory.load_bytes(re_address, 8 * length)
        raw_im = memory.load_bytes(im_address, 8 * length)
        actual = (np.frombuffer(raw_re, dtype=np.float64)
                  + 1j * np.frombuffer(raw_im, dtype=np.float64))
        return bool(np.allclose(actual, expected, rtol=1e-9,
                                atol=1e-9))

    return Workload(name="fft-radix2", program=program,
                    num_cores=num_cores, verify=verify,
                    expected=np.abs(expected),
                    metadata={"length": length, "stages": stages,
                              "seed": seed})
