"""§IV co-design study: SpMV with compressed non-zero values.

The paper's §IV motivates Coyote as the playground for memory-interface
co-design and cites Willcock & Lumsdaine / Grigoras et al.: "replaced
non-zero values by indices in a look-up table to compress the matrix",
so "less data is to be transferred between the memory and the computing
units effectively increasing the bandwidth utilization".

``spmv_csr_compressed`` implements that scheme in software: the float64
value stream is replaced by a 16-bit index stream into a small
dictionary of distinct values.  For matrices with few distinct values
(common after quantisation), the value traffic shrinks 4x; Coyote then
shows the saved cache/NoC/memory traffic — the question §IV says the
simulator exists to answer.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.data import CsrMatrix, dense_vector, random_csr
from repro.kernels.runtime import (
    emit_doubles,
    emit_dwords,
    emit_zero_doubles,
    range_split,
    wrap_program,
)
from repro.kernels.workload import Workload, build_workload


def quantise_matrix(matrix: CsrMatrix, levels: int = 16,
                    seed: int = 0) -> tuple[CsrMatrix, np.ndarray,
                                            np.ndarray]:
    """Quantise values onto a ``levels``-entry dictionary.

    Returns ``(quantised_matrix, dictionary, codes)`` where
    ``dictionary[codes[k]] == quantised values[k]``.
    """
    if not 1 <= levels <= 65536:
        raise ValueError(f"levels must fit a u16 code: {levels}")
    rng = np.random.default_rng(seed)
    dictionary = np.sort(rng.uniform(-1.0, 1.0, size=levels))
    # Snap every value to its nearest dictionary entry.
    codes = np.abs(matrix.values[:, None] - dictionary[None, :]) \
        .argmin(axis=1).astype(np.int64)
    quantised = CsrMatrix(matrix.num_rows, matrix.num_cols,
                          dictionary[codes], matrix.col_indices.copy(),
                          matrix.row_pointers.copy())
    return quantised, dictionary, codes


def _emit_u16(label: str, values: np.ndarray) -> str:
    array = [int(value) for value in values]
    lines = [".align 3", f"{label}:"]
    for start in range(0, len(array), 16):
        chunk = array[start:start + 16]
        lines.append("    .half " + ", ".join(str(v) for v in chunk))
    if not array:
        lines.append("    .zero 0")
    return "\n".join(lines) + "\n"


def spmv_csr_compressed(num_rows: int = 64, nnz_per_row: int = 8,
                        num_cores: int = 1, levels: int = 16,
                        seed: int = 42,
                        matrix: CsrMatrix | None = None,
                        x: np.ndarray | None = None) -> Workload:
    """Vector SpMV with dictionary-compressed values (u16 codes).

    Per nnz strip: load the 16-bit codes (vle16 into an e16 config),
    widen to byte offsets, gather the real values from the dictionary,
    then gather ``x`` as usual and accumulate.
    """
    if matrix is None:
        matrix = random_csr(num_rows, num_rows, nnz_per_row, seed=seed)
        x = dense_vector(num_rows, seed=seed + 7)
    assert x is not None
    quantised, dictionary, codes = quantise_matrix(matrix, levels,
                                                   seed=seed + 13)
    data = (_emit_u16("cmp_codes", codes)
            + emit_doubles("cmp_dict", dictionary)
            + emit_dwords("csr_colidx", quantised.col_indices)
            + emit_dwords("csr_rowptr", quantised.row_pointers)
            + emit_doubles("vec_x", x)
            + emit_zero_doubles("vec_y", quantised.num_rows))
    body = f"""\
main:
{range_split(quantised.num_rows, num_cores)}
    la   s2, cmp_codes
    la   s7, cmp_dict
    la   s3, csr_colidx
    la   s4, csr_rowptr
    la   s5, vec_x
    la   s6, vec_y
vc_row:
    bgeu s0, s1, vc_done
    slli t0, s0, 3
    add  t1, s4, t0
    ld   t2, 0(t1)            # p
    ld   t3, 8(t1)            # p_end
    vsetvli t4, zero, e64, m1, ta, ma
    vmv.v.i v8, 0             # vector accumulator
vc_strip:
    bgeu t2, t3, vc_reduce
    sub  t4, t3, t2
    vsetvli t5, t4, e64, m1, ta, ma
    slli t6, t2, 3
    add  a6, s3, t6
    vle64.v v2, (a6)          # column indices
    vsll.vi v2, v2, 3
    vluxei64.v v3, (s5), v2   # gather x
    # Decompress: load the u16 codes, scale to byte offsets (levels
    # <= 8192 keeps the shift within 16 bits), then gather the real
    # values from the dictionary with 16-bit indices.
    vsetvli t5, t4, e16, m1, ta, ma
    slli a5, t2, 1
    add  a5, a5, s2
    vle16.v v4, (a5)          # u16 codes (quarter the value traffic)
    vsll.vi v4, v4, 3
    vsetvli t5, t4, e64, m1, ta, ma
    vluxei16.v v1, (s7), v4   # decompressed float64 values
    vfmacc.vv v8, v1, v3
    add  t2, t2, t5
    j    vc_strip
vc_reduce:
    vsetvli t4, zero, e64, m1, ta, ma
    fmv.d.x fa0, zero
    vfmv.s.f v5, fa0
    vfredusum.vs v5, v8, v5
    vfmv.f.s fa0, v5
    slli t0, s0, 3
    add  t0, t0, s6
    fsd  fa0, 0(t0)
    addi s0, s0, 1
    j    vc_row
vc_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="spmv-csr-compressed", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol="vec_y",
        expected=quantised.multiply(x),
        metadata={"rows": quantised.num_rows, "nnz": quantised.nnz,
                  "levels": levels, "seed": seed})
