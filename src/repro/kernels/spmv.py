"""Sparse matrix-vector multiplication kernels.

``y = A @ x`` with A in CSR (or ELLPACK) format.  One scalar
implementation (the second Figure 3 workload) and the paper's three
vector implementations:

* ``spmv_csr_gather_reduce`` — per-row nnz strips: gather ``x`` with
  ``vluxei64``, multiply, and fold each strip into a scalar with the
  *ordered* reduction ``vfredosum``.
* ``spmv_csr_gather_accum`` — same gather, but strips accumulate into a
  vector register with ``vfmacc.vv``; a single unordered reduction
  (``vfredusum``) finishes the row.
* ``spmv_ell`` — ELLPACK slot-major layout: vectorised *across rows*, so
  matrix values and output are unit-stride and only ``x`` is gathered.

Rows are split across harts.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.data import CsrMatrix, dense_vector, random_csr
from repro.kernels.runtime import (
    emit_doubles,
    emit_dwords,
    emit_zero_doubles,
    range_split,
    wrap_program,
)
from repro.kernels.workload import Workload, build_workload


def _csr_data(matrix: CsrMatrix, x: np.ndarray) -> str:
    return (emit_doubles("csr_values", matrix.values)
            + emit_dwords("csr_colidx", matrix.col_indices)
            + emit_dwords("csr_rowptr", matrix.row_pointers)
            + emit_doubles("vec_x", x)
            + emit_zero_doubles("vec_y", matrix.num_rows))


def _default_matrix(num_rows: int, nnz_per_row: int,
                    seed: int) -> tuple[CsrMatrix, np.ndarray]:
    matrix = random_csr(num_rows, num_rows, nnz_per_row, seed=seed)
    x = dense_vector(num_rows, seed=seed + 7)
    return matrix, x


def scalar_spmv(num_rows: int = 64, nnz_per_row: int = 8,
                num_cores: int = 1, seed: int = 42,
                matrix: CsrMatrix | None = None,
                x: np.ndarray | None = None) -> Workload:
    """Scalar CSR SpMV (Figure 3's "SpMV" workload)."""
    if matrix is None:
        matrix, x = _default_matrix(num_rows, nnz_per_row, seed)
    assert x is not None
    body = f"""\
main:
{range_split(matrix.num_rows, num_cores)}
    la   s2, csr_values
    la   s3, csr_colidx
    la   s4, csr_rowptr
    la   s5, vec_x
    la   s6, vec_y
sp_row_loop:
    bgeu s0, s1, sp_done
    slli t0, s0, 3
    add  t1, s4, t0
    ld   t2, 0(t1)           # p     = rowptr[row]
    ld   t3, 8(t1)           # p_end = rowptr[row + 1]
    fmv.d.x fa0, zero
    bgeu t2, t3, sp_store
    slli t4, t2, 3
    add  t5, s2, t4          # &values[p]
    add  t6, s3, t4          # &colidx[p]
    sub  a4, t3, t2          # nnz in this row
sp_inner:
    fld  fa1, 0(t5)
    ld   a5, 0(t6)
    slli a5, a5, 3
    add  a5, a5, s5
    fld  fa2, 0(a5)          # x[colidx[p]]
    fmadd.d fa0, fa1, fa2, fa0
    addi t5, t5, 8
    addi t6, t6, 8
    addi a4, a4, -1
    bnez a4, sp_inner
sp_store:
    slli t0, s0, 3
    add  t0, t0, s6
    fsd  fa0, 0(t0)
    addi s0, s0, 1
    j    sp_row_loop
sp_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="scalar-spmv", source=wrap_program(body, _csr_data(matrix, x)),
        num_cores=num_cores, output_symbol="vec_y",
        expected=matrix.multiply(x),
        metadata={"rows": matrix.num_rows, "nnz": matrix.nnz, "seed": seed})


def spmv_csr_gather_reduce(num_rows: int = 64, nnz_per_row: int = 8,
                           num_cores: int = 1, seed: int = 42,
                           matrix: CsrMatrix | None = None,
                           x: np.ndarray | None = None) -> Workload:
    """Vector SpMV #1: gather + ordered per-strip reduction."""
    if matrix is None:
        matrix, x = _default_matrix(num_rows, nnz_per_row, seed)
    assert x is not None
    body = f"""\
main:
{range_split(matrix.num_rows, num_cores)}
    la   s2, csr_values
    la   s3, csr_colidx
    la   s4, csr_rowptr
    la   s5, vec_x
    la   s6, vec_y
v1_row:
    bgeu s0, s1, v1_done
    slli t0, s0, 3
    add  t1, s4, t0
    ld   t2, 0(t1)           # p
    ld   t3, 8(t1)           # p_end
    fmv.d.x fa0, zero
v1_strip:
    bgeu t2, t3, v1_store
    sub  t4, t3, t2
    vsetvli t5, t4, e64, m1, ta, ma
    slli t6, t2, 3
    add  a4, s2, t6
    vle64.v v1, (a4)         # values strip
    add  a5, s3, t6
    vle64.v v2, (a5)         # column indices
    vsll.vi v2, v2, 3        # -> byte offsets
    vluxei64.v v3, (s5), v2  # gather x
    vfmul.vv v4, v1, v3
    vfmv.s.f v5, fa0         # seed with running sum
    vfredosum.vs v5, v4, v5
    vfmv.f.s fa0, v5
    add  t2, t2, t5
    j    v1_strip
v1_store:
    slli t0, s0, 3
    add  t0, t0, s6
    fsd  fa0, 0(t0)
    addi s0, s0, 1
    j    v1_row
v1_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="spmv-csr-gather-reduce",
        source=wrap_program(body, _csr_data(matrix, x)),
        num_cores=num_cores, output_symbol="vec_y",
        expected=matrix.multiply(x),
        metadata={"rows": matrix.num_rows, "nnz": matrix.nnz, "seed": seed})


def spmv_csr_gather_accum(num_rows: int = 64, nnz_per_row: int = 8,
                          num_cores: int = 1, seed: int = 42,
                          matrix: CsrMatrix | None = None,
                          x: np.ndarray | None = None) -> Workload:
    """Vector SpMV #2: vector accumulator, one reduction per row."""
    if matrix is None:
        matrix, x = _default_matrix(num_rows, nnz_per_row, seed)
    assert x is not None
    body = f"""\
main:
{range_split(matrix.num_rows, num_cores)}
    la   s2, csr_values
    la   s3, csr_colidx
    la   s4, csr_rowptr
    la   s5, vec_x
    la   s6, vec_y
v2_row:
    bgeu s0, s1, v2_done
    slli t0, s0, 3
    add  t1, s4, t0
    ld   t2, 0(t1)           # p
    ld   t3, 8(t1)           # p_end
    vsetvli t4, zero, e64, m1, ta, ma   # vl = VLMAX
    vmv.v.i v8, 0            # vector accumulator
v2_strip:
    bgeu t2, t3, v2_reduce
    sub  t4, t3, t2
    vsetvli t5, t4, e64, m1, ta, ma
    slli t6, t2, 3
    add  a4, s2, t6
    vle64.v v1, (a4)
    add  a5, s3, t6
    vle64.v v2, (a5)
    vsll.vi v2, v2, 3
    vluxei64.v v3, (s5), v2
    vfmacc.vv v8, v1, v3     # acc += values * x[cols]
    add  t2, t2, t5
    j    v2_strip
v2_reduce:
    vsetvli t4, zero, e64, m1, ta, ma
    fmv.d.x fa0, zero
    vfmv.s.f v5, fa0
    vfredusum.vs v5, v8, v5
    vfmv.f.s fa0, v5
    slli t0, s0, 3
    add  t0, t0, s6
    fsd  fa0, 0(t0)
    addi s0, s0, 1
    j    v2_row
v2_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="spmv-csr-gather-accum",
        source=wrap_program(body, _csr_data(matrix, x)),
        num_cores=num_cores, output_symbol="vec_y",
        expected=matrix.multiply(x),
        metadata={"rows": matrix.num_rows, "nnz": matrix.nnz, "seed": seed})


def spmv_ell(num_rows: int = 64, nnz_per_row: int = 8,
             num_cores: int = 1, seed: int = 42,
             matrix: CsrMatrix | None = None,
             x: np.ndarray | None = None) -> Workload:
    """Vector SpMV #3: ELLPACK, vectorised across rows."""
    if matrix is None:
        matrix, x = _default_matrix(num_rows, nnz_per_row, seed)
    assert x is not None
    ell_values, ell_columns, width = matrix.to_ell()
    row_bytes = 8 * matrix.num_rows
    data = (emit_doubles("ell_values", ell_values)
            + emit_dwords("ell_colidx", ell_columns)
            + emit_doubles("vec_x", x)
            + emit_zero_doubles("vec_y", matrix.num_rows))
    body = f"""\
main:
{range_split(matrix.num_rows, num_cores)}
    la   s2, ell_values
    la   s3, ell_colidx
    la   s5, vec_x
    la   s6, vec_y
    li   s7, {width}
    li   s8, {row_bytes}
v3_strip:
    bgeu s0, s1, v3_done
    sub  t0, s1, s0
    vsetvli s9, t0, e64, m1, ta, ma   # vl = rows in this strip
    vmv.v.i v8, 0            # per-row accumulators
    slli s10, s0, 3          # strip byte offset
    li   a4, 0               # slot
v3_slot:
    bgeu a4, s7, v3_store
    mul  t2, a4, s8          # slot * num_rows * 8
    add  t3, t2, s10
    add  t4, t3, s2
    vle64.v v1, (t4)         # slot values for these rows (unit stride)
    add  t5, t3, s3
    vle64.v v2, (t5)         # slot columns
    vsll.vi v2, v2, 3
    vluxei64.v v3, (s5), v2  # gather x
    vfmacc.vv v8, v1, v3
    addi a4, a4, 1
    j    v3_slot
v3_store:
    add  t6, s10, s6
    vse64.v v8, (t6)
    add  s0, s0, s9
    j    v3_strip
v3_done:
    li   a0, 0
    ret
"""
    return build_workload(
        name="spmv-ell", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol="vec_y",
        expected=matrix.multiply(x),
        metadata={"rows": matrix.num_rows, "nnz": matrix.nnz,
                  "ell_width": width, "seed": seed})


SPMV_VARIANTS = {
    "scalar": scalar_spmv,
    "csr-gather-reduce": spmv_csr_gather_reduce,
    "csr-gather-accum": spmv_csr_gather_accum,
    "ell": spmv_ell,
}
