"""HPDA kernel: parallel histogram with atomic updates.

"Other representative HPC and HPDA kernels" (§III-A): histogramming is
the canonical data-analytics pattern — data-dependent scattered writes
into shared bins.  Each hart scans its slice of the input and increments
shared bins with ``amoadd.d``, exercising the atomics path and the
shared-line write pressure the L2 model turns into bank traffic.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import (
    emit_dwords,
    range_split,
    wrap_program,
)
from repro.kernels.workload import Workload
from repro.assembler import assemble
from repro.utils.bitops import is_power_of_two


def histogram(length: int = 1024, num_bins: int = 32, num_cores: int = 1,
              seed: int = 42) -> Workload:
    """Shared-bin histogram over ``length`` integer samples.

    ``num_bins`` must be a power of two (binning is a mask).
    """
    if not is_power_of_two(num_bins):
        raise ValueError(f"num_bins must be a power of two, "
                         f"got {num_bins}")
    rng = np.random.default_rng(seed)
    samples = rng.integers(0, 1 << 32, size=length, dtype=np.uint64)
    expected = np.bincount((samples & (num_bins - 1)).astype(np.int64),
                           minlength=num_bins).astype(np.uint64)
    data = (emit_dwords("hist_data", samples)
            + emit_dwords("hist_bins", [0] * num_bins))
    body = f"""\
main:
{range_split(length, num_cores)}
    la   s2, hist_data
    la   s3, hist_bins
    li   s4, {num_bins - 1}    # bin mask
    slli t0, s0, 3
    add  s5, s2, t0            # &data[start]
    slli t0, s1, 3
    add  s6, s2, t0            # &data[end]
hg_loop:
    bgeu s5, s6, hg_done
    ld   t1, 0(s5)
    and  t1, t1, s4            # bin index
    slli t1, t1, 3
    add  t1, t1, s3
    li   t2, 1
    amoadd.d zero, t2, (t1)    # bins[bin] += 1, atomically
    addi s5, s5, 8
    j    hg_loop
hg_done:
    li   a0, 0
    ret
"""
    program = assemble(wrap_program(body, data))
    bins_address = program.symbols["hist_bins"]

    def verify(memory) -> bool:
        raw = memory.load_bytes(bins_address, 8 * num_bins)
        actual = np.frombuffer(raw, dtype=np.uint64)
        return bool(np.array_equal(actual, expected))

    return Workload(name="histogram", program=program,
                    num_cores=num_cores, verify=verify,
                    expected=expected.astype(np.float64),
                    metadata={"length": length, "bins": num_bins,
                              "seed": seed})
