"""The Workload abstraction: an assembled kernel plus its verifier."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.assembler import assemble
from repro.assembler.program import Program


@dataclass
class Workload:
    """An assembled kernel with metadata and an output verifier.

    ``verify(memory)`` reads the kernel's outputs from simulated memory
    and compares them against the numpy reference, returning ``True`` on
    match.
    """

    name: str
    program: Program
    num_cores: int
    verify: Callable[[Any], bool]
    expected: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        details = ", ".join(f"{key}={value}"
                            for key, value in self.metadata.items())
        return f"<Workload {self.name} cores={self.num_cores} {details}>"


def build_workload(name: str, source: str, num_cores: int,
                   output_symbol: str, expected: np.ndarray,
                   metadata: dict | None = None,
                   rtol: float = 1e-10) -> Workload:
    """Assemble ``source`` and wire a float64 output verifier."""
    program = assemble(source)
    address = program.symbols[output_symbol]
    flat_expected = np.asarray(expected, dtype=np.float64).ravel()

    def verify(memory) -> bool:
        raw = memory.load_bytes(address, 8 * flat_expected.size)
        actual = np.frombuffer(raw, dtype=np.float64)
        return bool(np.allclose(actual, flat_expected, rtol=rtol,
                                atol=1e-12))

    return Workload(name=name, program=program, num_cores=num_cores,
                    verify=verify, expected=flat_expected,
                    metadata=metadata or {})
