"""Vector 3-point stencil kernel (Jacobi sweeps with ping-pong buffers).

``out[i] = c0*in[i-1] + c1*in[i] + c2*in[i+1]`` over the interior points,
boundaries copied unchanged.  Interior points are split across harts;
multi-iteration runs synchronise with a sense-reversing barrier built on
``amoadd.w`` — exercising the atomics path of the ISS.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import (
    barrier,
    barrier_data,
    emit_doubles,
    emit_zero_doubles,
    range_split,
    wrap_program,
)
from repro.kernels.data import dense_vector
from repro.kernels.workload import Workload, build_workload


def reference_stencil(data: np.ndarray, coefficients: tuple,
                      iterations: int) -> np.ndarray:
    """Numpy reference for the 3-point stencil sweeps."""
    c0, c1, c2 = coefficients
    current = data.copy()
    for _ in range(iterations):
        next_buf = current.copy()
        next_buf[1:-1] = (c0 * current[:-2] + c1 * current[1:-1]
                          + c2 * current[2:])
        current = next_buf
    return current


def vector_stencil(length: int = 256, iterations: int = 1,
                   num_cores: int = 1, seed: int = 42,
                   coefficients: tuple = (0.25, 0.5, 0.25)) -> Workload:
    """Vector 3-point stencil; ``iterations`` Jacobi sweeps."""
    if length < 3:
        raise ValueError(f"stencil needs length >= 3, got {length}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    initial = dense_vector(length, seed=seed)
    c0, c1, c2 = coefficients
    expected = reference_stencil(initial, coefficients, iterations)
    final_symbol = "stn_buf_b" if iterations % 2 else "stn_buf_a"
    interior = length - 2
    data = (emit_doubles("stn_buf_a", initial)
            + emit_zero_doubles("stn_buf_b", length)
            + emit_doubles("stn_coeffs", [c0, c1, c2])
            + barrier_data())
    body = f"""\
main:
    mv   a6, a0              # preserve hartid across barrier fragments
{range_split(interior, num_cores, start_reg="s0", end_reg="s1")}
    addi s0, s0, 1           # interior points start at index 1
    addi s1, s1, 1
    la   s2, stn_buf_a       # in
    la   s3, stn_buf_b       # out
    la   t0, stn_coeffs
    fld  fs0, 0(t0)
    fld  fs1, 8(t0)
    fld  fs2, 16(t0)
    li   s4, {iterations}
st_iter:
    # Boundary copy is hart 0's job.
    bnez a6, st_body
    fld  fa3, 0(s2)
    fsd  fa3, 0(s3)
    li   t1, {8 * (length - 1)}
    add  t2, s2, t1
    fld  fa3, 0(t2)
    add  t2, s3, t1
    fsd  fa3, 0(t2)
st_body:
    mv   s5, s0              # i
st_strip:
    bgeu s5, s1, st_sync
    sub  t0, s1, s5
    vsetvli s6, t0, e64, m1, ta, ma
    slli t1, s5, 3
    add  t2, s2, t1
    addi t4, t2, -8
    vle64.v v1, (t4)         # in[i-1 ...]
    vle64.v v2, (t2)         # in[i   ...]
    addi t4, t2, 8
    vle64.v v3, (t4)         # in[i+1 ...]
    vfmul.vf v4, v1, fs0
    vfmacc.vf v4, fs1, v2
    vfmacc.vf v4, fs2, v3
    add  t3, s3, t1
    vse64.v v4, (t3)
    add  s5, s5, s6
    j    st_strip
st_sync:
{barrier(num_cores)}
    # swap in/out
    mv   t0, s2
    mv   s2, s3
    mv   s3, t0
    addi s4, s4, -1
    bnez s4, st_iter
    li   a0, 0
    ret
"""
    return build_workload(
        name="vector-stencil", source=wrap_program(body, data),
        num_cores=num_cores, output_symbol=final_symbol, expected=expected,
        metadata={"length": length, "iterations": iterations, "seed": seed})
