"""Record types and event encodings for the Paraver trace format.

The paper: "Simulation outputs ... a trace of L1 misses.  This trace can
be analyzed using the Paraver Visualization Tools".  We emit the same
textual ``.prv`` event-record format (plus the ``.pcf`` label file), one
event group per serviced L1 miss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

PRV_RECORD_EVENT = 2

# Paraver user-event type codes for Coyote miss traces.
EVENT_MISS_KIND = 42_000_001
EVENT_BANK = 42_000_002
EVENT_LATENCY = 42_000_003
EVENT_LINE = 42_000_004
EVENT_L2_OUTCOME = 42_000_005


class MissKind(enum.IntEnum):
    """Value encoding for :data:`EVENT_MISS_KIND`."""

    LOAD = 1
    STORE = 2
    IFETCH = 3


class L2Outcome(enum.IntEnum):
    """Value encoding for :data:`EVENT_L2_OUTCOME`."""

    MISS = 0
    HIT = 1


@dataclass(frozen=True)
class MissRecord:
    """One serviced L1 miss, as recorded in a trace."""

    core_id: int
    issue_cycle: int
    complete_cycle: int
    line_address: int
    kind: MissKind
    bank_id: int
    l2_hit: bool

    @property
    def latency(self) -> int:
        return self.complete_cycle - self.issue_cycle


EVENT_LABELS = {
    EVENT_MISS_KIND: ("Coyote L1 miss kind",
                      {int(kind): kind.name for kind in MissKind}),
    EVENT_BANK: ("Coyote L2 bank", {}),
    EVENT_LATENCY: ("Coyote miss latency (cycles)", {}),
    EVENT_LINE: ("Coyote line address (cache-line units)", {}),
    EVENT_L2_OUTCOME: ("Coyote L2 outcome",
                       {int(outcome): outcome.name
                        for outcome in L2Outcome}),
}
