"""Parsing Paraver ``.prv`` traces back into miss records."""

from __future__ import annotations

from pathlib import Path

from repro.paraver.records import (
    EVENT_BANK,
    EVENT_L2_OUTCOME,
    EVENT_LATENCY,
    EVENT_LINE,
    EVENT_MISS_KIND,
    PRV_RECORD_EVENT,
    MissKind,
    MissRecord,
)


class PrvParseError(Exception):
    """Raised for malformed ``.prv`` content."""


def parse_header(line: str) -> tuple[int, int]:
    """Parse the ``#Paraver`` header; returns (duration, num_cores)."""
    if not line.startswith("#Paraver"):
        raise PrvParseError(f"not a .prv header: {line[:40]!r}")
    try:
        after_date = line.split("):", 1)[1]
        duration_text, node_text = after_date.split(":", 2)[:2]
        duration = int(duration_text)
        num_cores = int(node_text.split("(", 1)[1].rstrip(")"))
    except (IndexError, ValueError) as exc:
        raise PrvParseError(f"malformed header: {line[:60]!r}") from exc
    return duration, num_cores


def parse_prv(path: str | Path) -> tuple[list[MissRecord], int, int]:
    """Read a ``.prv`` file; returns (records, duration, num_cores)."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise PrvParseError("empty trace file")
    duration, num_cores = parse_header(lines[0])
    records = []
    for line in lines[1:]:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        record = _parse_event_line(line)
        if record is not None:
            records.append(record)
    return records, duration, num_cores


def _parse_event_line(line: str) -> MissRecord | None:
    fields = line.split(":")
    if int(fields[0]) != PRV_RECORD_EVENT:
        return None  # not an event record; ignore states/communications
    if len(fields) < 8 or (len(fields) - 6) % 2:
        raise PrvParseError(f"malformed event record: {line!r}")
    cpu = int(fields[1])
    time = int(fields[5])
    events = {}
    for index in range(6, len(fields), 2):
        events[int(fields[index])] = int(fields[index + 1])
    if EVENT_MISS_KIND not in events:
        return None  # an event group from some other tool
    latency = events.get(EVENT_LATENCY, 0)
    return MissRecord(
        core_id=cpu - 1,
        issue_cycle=time - latency,
        complete_cycle=time,
        line_address=events.get(EVENT_LINE, 0) << 6,
        kind=MissKind(events[EVENT_MISS_KIND]),
        bank_id=events.get(EVENT_BANK, 0) - 1,
        l2_hit=bool(events.get(EVENT_L2_OUTCOME, 0)))
