"""Paraver-format L1-miss traces: writer, parser, and analyses."""

from repro.paraver.analyzer import (
    LatencySummary,
    bank_pressure,
    kind_breakdown,
    l2_hit_rate,
    latency_by_outcome,
    per_core_counts,
    stride_histogram,
    temporal_profile,
)
from repro.paraver.parser import PrvParseError, parse_prv
from repro.paraver.records import L2Outcome, MissKind, MissRecord
from repro.paraver.writer import (
    write_pcf,
    write_prv,
    write_row,
    write_trace,
)

__all__ = [
    "L2Outcome",
    "LatencySummary",
    "MissKind",
    "MissRecord",
    "PrvParseError",
    "bank_pressure",
    "kind_breakdown",
    "l2_hit_rate",
    "latency_by_outcome",
    "parse_prv",
    "per_core_counts",
    "stride_histogram",
    "temporal_profile",
    "write_pcf",
    "write_prv",
    "write_row",
    "write_trace",
]
