"""Paraver ``.prv`` / ``.pcf`` trace writing.

Emits a single-node, one-application trace where each simulated core is
one thread.  Every serviced L1 miss becomes one event record at its
completion time carrying kind, bank, latency, line and L2 outcome.
"""

from __future__ import annotations

from pathlib import Path

from repro.paraver.records import (
    EVENT_BANK,
    EVENT_L2_OUTCOME,
    EVENT_LABELS,
    EVENT_LATENCY,
    EVENT_LINE,
    EVENT_MISS_KIND,
    PRV_RECORD_EVENT,
    MissRecord,
)

_HEADER_DATE = "01/01/2021 at 00:00"


def write_prv(path: str | Path, records: list[MissRecord],
              num_cores: int, duration: int) -> Path:
    """Write records to a ``.prv`` file; returns the path written."""
    path = Path(path)
    if path.suffix != ".prv":
        path = path.with_suffix(".prv")
    lines = [_prv_header(num_cores, duration)]
    ordered = sorted(records,
                     key=lambda record: (record.complete_cycle,
                                         record.core_id))
    for record in ordered:
        lines.append(_prv_event_line(record))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_pcf(path: str | Path) -> Path:
    """Write the companion ``.pcf`` event-label file."""
    path = Path(path)
    if path.suffix != ".pcf":
        path = path.with_suffix(".pcf")
    sections = []
    for event_type, (label, values) in sorted(EVENT_LABELS.items()):
        block = ["EVENT_TYPE", f"0\t{event_type}\t{label}"]
        if values:
            block.append("VALUES")
            for value, value_label in sorted(values.items()):
                block.append(f"{value}\t{value_label}")
        sections.append("\n".join(block))
    path.write_text("\n\n".join(sections) + "\n")
    return path


def write_row(path: str | Path, num_cores: int) -> Path:
    """Write the ``.row`` names file (one label per core/thread)."""
    path = Path(path)
    if path.suffix != ".row":
        path = path.with_suffix(".row")
    lines = [f"LEVEL CPU SIZE {num_cores}"]
    lines += [f"core {index}" for index in range(num_cores)]
    lines.append(f"LEVEL THREAD SIZE {num_cores}")
    lines += [f"THREAD 1.1.{index + 1}" for index in range(num_cores)]
    path.write_text("\n".join(lines) + "\n")
    return path


def write_trace(basepath: str | Path, records: list[MissRecord],
                num_cores: int, duration: int) -> tuple[Path, Path]:
    """Write the ``.prv``/``.pcf``/``.row`` triple; returns the first
    two paths (the ``.row`` sits beside them)."""
    base = Path(basepath)
    prv = write_prv(base.with_suffix(".prv"), records, num_cores, duration)
    pcf = write_pcf(base.with_suffix(".pcf"))
    write_row(base.with_suffix(".row"), num_cores)
    return prv, pcf


def _prv_header(num_cores: int, duration: int) -> str:
    # #Paraver (date):duration:nodes(cpus):apps:app_list
    return (f"#Paraver ({_HEADER_DATE}):{duration}:1({num_cores}):1:"
            f"1({num_cores}:1)")


def _prv_event_line(record: MissRecord) -> str:
    # 2:cpu:appl:task:thread:time:type:value[:type:value]...
    cpu = record.core_id + 1
    fields = [
        str(PRV_RECORD_EVENT), str(cpu), "1", "1", str(cpu),
        str(record.complete_cycle),
        str(EVENT_MISS_KIND), str(int(record.kind)),
        str(EVENT_BANK), str(record.bank_id + 1),
        str(EVENT_LATENCY), str(record.latency),
        str(EVENT_LINE), str(record.line_address >> 6),
        str(EVENT_L2_OUTCOME), str(1 if record.l2_hit else 0),
    ]
    return ":".join(fields)
