"""Programmatic analysis of L1-miss traces.

The paper uses the Paraver GUI "to truly understand the behavior of
applications, by identifying access patterns or analyzing how and when
the L2 banks, NoC, or memory are stressed"; this module provides the same
analyses as library functions over :class:`MissRecord` lists.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass

from repro.paraver.records import MissKind, MissRecord


@dataclass
class LatencySummary:
    """Distribution summary of miss latencies."""

    count: int
    minimum: int
    maximum: int
    mean: float

    @classmethod
    def of(cls, latencies: list[int]) -> "LatencySummary":
        if not latencies:
            return cls(0, 0, 0, 0.0)
        return cls(len(latencies), min(latencies), max(latencies),
                   sum(latencies) / len(latencies))


def bank_pressure(records: list[MissRecord]) -> dict[int, int]:
    """Misses serviced per L2 bank — the bank load-balance picture."""
    tally: TallyCounter = TallyCounter()
    for record in records:
        tally[record.bank_id] += 1
    return dict(sorted(tally.items()))


def kind_breakdown(records: list[MissRecord]) -> dict[MissKind, int]:
    """Misses by kind (load / store / ifetch)."""
    tally: TallyCounter = TallyCounter()
    for record in records:
        tally[record.kind] += 1
    return dict(sorted(tally.items()))


def latency_by_outcome(records: list[MissRecord]) \
        -> dict[str, LatencySummary]:
    """Latency distributions split by L2 hit vs L2 miss."""
    hits = [record.latency for record in records if record.l2_hit]
    misses = [record.latency for record in records if not record.l2_hit]
    return {"l2_hit": LatencySummary.of(hits),
            "l2_miss": LatencySummary.of(misses)}


def temporal_profile(records: list[MissRecord], duration: int,
                     bins: int = 20) -> list[int]:
    """Misses completing per time bin — when the hierarchy is stressed."""
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    histogram = [0] * bins
    if duration <= 0:
        return histogram
    for record in records:
        index = min(bins - 1, record.complete_cycle * bins // duration)
        histogram[index] += 1
    return histogram


def per_core_counts(records: list[MissRecord]) -> dict[int, int]:
    """Misses per requesting core."""
    tally: TallyCounter = TallyCounter()
    for record in records:
        tally[record.core_id] += 1
    return dict(sorted(tally.items()))


def stride_histogram(records: list[MissRecord],
                     top: int = 5) -> list[tuple[int, int]]:
    """Most common line-address strides per core, merged.

    Identifies access patterns: a dominant stride of one line means a
    dense unit-stride sweep; a scattered histogram indicates sparse
    gathers.
    """
    last_line: dict[int, int] = {}
    tally: TallyCounter = TallyCounter()
    for record in sorted(records, key=lambda r: (r.core_id,
                                                 r.issue_cycle)):
        previous = last_line.get(record.core_id)
        if previous is not None:
            tally[(record.line_address - previous) >> 6] += 1
        last_line[record.core_id] = record.line_address
    return tally.most_common(top)


def l2_hit_rate(records: list[MissRecord]) -> float:
    """Fraction of L1 misses that hit in L2."""
    if not records:
        return 0.0
    return sum(1 for record in records if record.l2_hit) / len(records)
