"""Assembly of the full Sparta-side memory hierarchy.

``MemoryHierarchy`` builds the tiled system the paper describes: VAS-like
tiles holding L2 banks, an interconnect (idealised crossbar by default, a
mesh as an extension), and memory controllers.  The L2 can be fully shared
across the system or private to each tile's cores, and the address-to-bank
mapping policy is selectable (page-to-bank / set-interleaving) — all the
input parameters §III-A enumerates.

The orchestrator interacts through two methods:

* :meth:`submit` — inject one L1-miss request;
* :attr:`on_complete` — callback fired (with the finished
  :class:`~repro.memhier.request.MemRequest`) when a request's response
  reaches the tile side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.memhier.l2bank import L2Bank
from repro.memhier.mapping import MappingPolicy, make_policy, policy_names
from repro.memhier.memctrl import MemoryController
from repro.memhier.noc import CrossbarNoC, NocConfig, make_noc
from repro.memhier.request import MemRequest, RequestKind
from repro.sparta.scheduler import Scheduler
from repro.sparta.statistics import StatSample
from repro.sparta.unit import Unit
from repro.utils.bitops import clog2, is_power_of_two

_TILESIDE = "tileside"


@dataclass
class MemHierConfig:
    """All modelled-hierarchy parameters (paper §III-A)."""

    num_tiles: int = 1
    cores_per_tile: int = 8
    banks_per_tile: int = 2
    l2_mode: str = "shared"              # "shared" | "private"
    l2_bank_bytes: int = 256 * 1024
    l2_associativity: int = 16
    line_bytes: int = 64
    l2_hit_latency: int = 10
    l2_miss_latency: int = 4
    l2_max_in_flight: int = 16
    # 0 = idealised bank throughput (the paper's model); N > 0 models a
    # single bank port accepting one request every N cycles.
    l2_cycles_per_request: int = 0
    mapping_policy: str = "set-interleaving"
    page_bytes: int = 4096
    # Optional L3 level between the L2 banks and memory (the "deeper
    # memory hierarchies" §III-A says can be modelled).
    l3_enable: bool = False
    l3_banks: int = 1
    l3_bank_bytes: int = 2 * 1024 * 1024
    l3_associativity: int = 16
    l3_hit_latency: int = 24
    l3_miss_latency: int = 6
    l3_max_in_flight: int = 32
    # The interconnect, as a structured value object ("crossbar" by
    # default; "mesh"/"torus" enable the contention model).  Sweepable
    # through ``SimulationConfig.for_cores`` as dotted ``noc.*`` keys.
    noc: NocConfig = field(default_factory=NocConfig)
    num_memory_controllers: int = 2
    mem_latency: int = 100
    mem_cycles_per_request: int = 2
    prefetch_depth: int = 0              # extension; 0 = off (paper model)
    # MCPU-style vector aggregation (extension, after ACME §I-A): the
    # misses of one vector instruction travel as a single NoC message
    # handled at the memory controller, instead of per-line L2 requests.
    mcpu_aggregation: bool = False

    def __post_init__(self) -> None:
        # Config files hand the noc section over as a plain dict.
        if not isinstance(self.noc, NocConfig):
            self.noc = NocConfig.from_value(self.noc)

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent parameters."""
        self.noc.validate()
        if self.num_tiles < 1 or self.cores_per_tile < 1 \
                or self.banks_per_tile < 1:
            raise ValueError("tiles, cores/tile and banks/tile must be >= 1")
        if self.l2_mode not in ("shared", "private"):
            raise ValueError(f"l2_mode must be shared|private, "
                             f"got {self.l2_mode!r}")
        if self.mapping_policy not in policy_names():
            raise ValueError(f"unknown mapping policy "
                             f"{self.mapping_policy!r}")
        if not is_power_of_two(self.num_memory_controllers):
            raise ValueError("number of memory controllers must be a "
                             "power of two")
        total_banks = self.num_tiles * self.banks_per_tile
        if not is_power_of_two(total_banks):
            raise ValueError(f"total bank count must be a power of two, "
                             f"got {total_banks}")
        if self.l2_mode == "private" \
                and not is_power_of_two(self.banks_per_tile):
            raise ValueError("banks per tile must be a power of two for "
                             "private mode")
        if self.l3_enable and not is_power_of_two(self.l3_banks):
            raise ValueError(f"L3 bank count must be a power of two, "
                             f"got {self.l3_banks}")

    @property
    def num_cores(self) -> int:
        return self.num_tiles * self.cores_per_tile

    @property
    def num_banks(self) -> int:
        return self.num_tiles * self.banks_per_tile


class MemoryHierarchy:
    """The modelled L2 + NoC + memory-controller system."""

    def __init__(self, config: MemHierConfig, scheduler: Scheduler):
        config.validate()
        self.config = config
        self.scheduler = scheduler
        self.root = Unit("memhier", scheduler=scheduler)
        self.on_complete: Callable[[MemRequest], None] | None = None
        self.trace_sink: Callable[[MemRequest], None] | None = None
        # Optional observability hook (latency histograms, Chrome trace):
        # fired with each completed request, after trace_sink.
        self.telemetry_sink: Callable[[MemRequest], None] | None = None

        self.noc: CrossbarNoC = make_noc(config.noc, "noc", self.root)
        self.noc.attach(_TILESIDE, self._handle_response)

        # Bank-mapping policy: over all banks (shared) or per tile
        # (private).
        policy_banks = (config.num_banks if config.l2_mode == "shared"
                        else config.banks_per_tile)
        self.policy: MappingPolicy = make_policy(
            config.mapping_policy, policy_banks, config.line_bytes,
            config.page_bytes)

        # Memory controllers, interleaved by line address.
        self._mc_shift = clog2(config.line_bytes)
        self._mc_mask = config.num_memory_controllers - 1
        self.memory_controllers: list[MemoryController] = []
        for index in range(config.num_memory_controllers):
            mc = MemoryController(
                f"mc{index}", self.root, latency=config.mem_latency,
                cycles_per_request=config.mem_cycles_per_request,
                send=self.noc.route, prefetch_depth=config.prefetch_depth,
                line_bytes=config.line_bytes)
            self.noc.attach(mc.endpoint, mc.handle_request)
            self.memory_controllers.append(mc)

        # Optional L3 level between L2 and memory.
        self.l3_banks: list[L2Bank] = []
        if config.l3_enable:
            self._l3_mask = config.l3_banks - 1
            for index in range(config.l3_banks):
                l3_bank = L2Bank(
                    f"l3bank{index}", self.root,
                    size_bytes=config.l3_bank_bytes,
                    associativity=config.l3_associativity,
                    line_bytes=config.line_bytes,
                    hit_latency=config.l3_hit_latency,
                    miss_latency=config.l3_miss_latency,
                    max_in_flight=config.l3_max_in_flight,
                    send=self.noc.route,
                    next_level_of=self._mc_endpoint_of,
                    records_bank_id=False)
                # Request and fill ports share the bank's router.
                self.noc.attach(l3_bank.endpoint, l3_bank.handle_request)
                self.noc.attach(l3_bank.fill_endpoint,
                                l3_bank.handle_fill,
                                station=l3_bank.endpoint)
                self.l3_banks.append(l3_bank)
            l2_next_level = self._l3_endpoint_of
        else:
            l2_next_level = self._mc_endpoint_of

        # Tiles and their L2 banks.
        self.banks: list[L2Bank] = []
        self.tiles: list[Unit] = []
        for tile_index in range(config.num_tiles):
            tile = Unit(f"tile{tile_index}", self.root)
            self.tiles.append(tile)
            for bank_index in range(config.banks_per_tile):
                global_index = (tile_index * config.banks_per_tile
                                + bank_index)
                bank = L2Bank(
                    f"bank{global_index}", tile,
                    size_bytes=config.l2_bank_bytes,
                    associativity=config.l2_associativity,
                    line_bytes=config.line_bytes,
                    hit_latency=config.l2_hit_latency,
                    miss_latency=config.l2_miss_latency,
                    max_in_flight=config.l2_max_in_flight,
                    send=self.noc.route,
                    next_level_of=l2_next_level,
                    cycles_per_request=config.l2_cycles_per_request)
                self.noc.attach(bank.endpoint, bank.handle_request)
                self.noc.attach(bank.fill_endpoint, bank.handle_fill,
                                station=bank.endpoint)
                self.banks.append(bank)

        stats = self.root.stats
        self._stat_submitted = stats.counter(
            "requests_submitted", "L1 misses injected (needing a response)")
        self._stat_aggregated = stats.counter(
            "aggregated_requests",
            "MCPU-aggregated vector requests injected (extension)")
        self._stat_wb_submitted = stats.counter(
            "writebacks_submitted", "fire-and-forget writebacks injected")
        self._stat_completed = stats.counter("requests_completed",
                                             "responses delivered")
        self._stat_total_latency = stats.counter(
            "total_latency", "sum of end-to-end request latencies")

    # -- wiring helpers -------------------------------------------------------

    def _mc_endpoint_of(self, line_address: int) -> str:
        index = (line_address >> self._mc_shift) & self._mc_mask
        return self.memory_controllers[index].endpoint

    def _l3_endpoint_of(self, line_address: int) -> str:
        index = (line_address >> self._mc_shift) & self._l3_mask
        return self.l3_banks[index].endpoint

    def bank_for(self, core_id: int, line_address: int) -> L2Bank:
        """Target bank under the configured sharing mode and policy."""
        local = self.policy.bank_of(line_address)
        if self.config.l2_mode == "shared":
            return self.banks[local]
        tile_id = core_id // self.config.cores_per_tile
        return self.banks[tile_id * self.config.banks_per_tile + local]

    # -- orchestrator API ------------------------------------------------------

    def submit(self, request_id: int, core_id: int, line_address: int,
               kind: RequestKind) -> MemRequest:
        """Inject one L1 miss; returns the in-flight request object."""
        tile_id = core_id // self.config.cores_per_tile
        request = MemRequest(
            request_id=request_id, core_id=core_id, tile_id=tile_id,
            line_address=line_address, kind=kind,
            issue_cycle=self.scheduler.current_cycle)
        request.fill_target = _TILESIDE
        if kind is RequestKind.WRITEBACK:
            self._stat_wb_submitted.increment()
        else:
            self._stat_submitted.increment()
        bank = self.bank_for(core_id, line_address)
        self.noc.route(_TILESIDE, bank.endpoint, request)
        return request

    def submit_aggregate(self, member_ids: tuple, core_id: int,
                         line_addresses: list[int],
                         kind: RequestKind) -> MemRequest:
        """Inject one MCPU-aggregated vector request (extension).

        The whole group travels as a single NoC message straight to the
        memory controller owning the first line (the MCPU), which
        transfers every member line back-to-back; one response releases
        all member scoreboard entries.  Requires
        ``config.mcpu_aggregation``.
        """
        if not self.config.mcpu_aggregation:
            raise RuntimeError("mcpu_aggregation is disabled")
        if len(member_ids) != len(line_addresses) or not member_ids:
            raise ValueError("member_ids/line_addresses mismatch")
        tile_id = core_id // self.config.cores_per_tile
        request = MemRequest(
            request_id=member_ids[0], core_id=core_id, tile_id=tile_id,
            line_address=line_addresses[0], kind=kind,
            issue_cycle=self.scheduler.current_cycle,
            member_ids=tuple(member_ids),
            num_lines=len(line_addresses))
        request.fill_target = _TILESIDE
        self._stat_aggregated.increment()
        self._stat_submitted.increment()
        self.noc.route(_TILESIDE,
                       self._mc_endpoint_of(line_addresses[0]), request)
        return request

    def _handle_response(self, request: MemRequest) -> None:
        request.complete_cycle = self.scheduler.current_cycle
        self._stat_completed.increment()
        self._stat_total_latency.increment(request.latency)
        if self.trace_sink is not None:
            self.trace_sink(request)
        if self.telemetry_sink is not None:
            self.telemetry_sink(request)
        if self.on_complete is None:
            raise RuntimeError("MemoryHierarchy.on_complete is not wired")
        self.on_complete(request)

    # -- reporting ---------------------------------------------------------------

    def all_cache_banks(self) -> list[L2Bank]:
        """Every modelled cache bank: the L2 level plus the optional L3
        (the resilience layer iterates these for fault hardening,
        deadlock snapshots and invariant checks)."""
        return self.banks + self.l3_banks

    def collect_stats(self) -> list[StatSample]:
        """Statistics of every unit in the hierarchy."""
        return self.root.collect_stats()

    def collect_values(self) -> dict[str, float]:
        """Statistics as a flat ``full_name -> value`` mapping (cheap)."""
        return self.root.collect_values()

    def outstanding(self) -> int:
        """Response-needing requests still inside the hierarchy."""
        return self._stat_submitted.value - self._stat_completed.value
