"""Address-to-bank data mapping policies.

The paper implements "two different well-known data mapping policies ...
that use different bits of the address to identify the L2 bank that holds
a certain memory block: page-to-bank and set-interleaving".

* **Set-interleaving** uses the bits just above the line offset, so
  consecutive cache lines round-robin across banks — good for spreading a
  unit-stride stream over every bank.
* **Page-to-bank** uses the bits just above the page offset, so each page
  lives entirely in one bank — good locality per bank, but a dense stream
  hammers a single bank one page at a time.
"""

from __future__ import annotations

from repro.utils.bitops import clog2, is_power_of_two


class MappingPolicy:
    """Base class: maps a line address to a bank index in [0, num_banks)."""

    name = "abstract"

    def __init__(self, num_banks: int, line_bytes: int = 64,
                 page_bytes: int = 4096):
        if not is_power_of_two(num_banks):
            raise ValueError(f"bank count must be a power of two: "
                             f"{num_banks}")
        if not is_power_of_two(line_bytes):
            raise ValueError(f"line size must be a power of two: "
                             f"{line_bytes}")
        if not is_power_of_two(page_bytes) or page_bytes < line_bytes:
            raise ValueError(f"bad page size {page_bytes}")
        self.num_banks = num_banks
        self.line_bytes = line_bytes
        self.page_bytes = page_bytes
        self._bank_mask = num_banks - 1

    def bank_of(self, line_address: int) -> int:
        raise NotImplementedError


class SetInterleaving(MappingPolicy):
    """Consecutive lines map to consecutive banks."""

    name = "set-interleaving"

    def bank_of(self, line_address: int) -> int:
        return (line_address >> clog2(self.line_bytes)) & self._bank_mask


class PageToBank(MappingPolicy):
    """Each page maps wholly to one bank."""

    name = "page-to-bank"

    def bank_of(self, line_address: int) -> int:
        return (line_address >> clog2(self.page_bytes)) & self._bank_mask


_POLICIES = {policy.name: policy for policy in (SetInterleaving, PageToBank)}


def make_policy(name: str, num_banks: int, line_bytes: int = 64,
                page_bytes: int = 4096) -> MappingPolicy:
    """Instantiate a mapping policy by name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown mapping policy {name!r}; "
            f"choose from {sorted(_POLICIES)}") from None
    return cls(num_banks, line_bytes, page_bytes)


def policy_names() -> list[str]:
    """Names of all registered mapping policies."""
    return sorted(_POLICIES)
