"""Network-on-chip models.

The paper models the NoC "as a highly idealized crossbar, that uses fixed,
configurable latencies" and lists more realistic NoC modelling as work in
progress.  We provide both:

* :class:`CrossbarNoC` — the paper's model: every route costs the same
  fixed latency, with unlimited bandwidth.
* :class:`MeshNoC` — the "future work" extension: endpoints placed on a 2D
  mesh, XY routing, latency = ``router_latency`` per hop plus
  ``link_latency`` per link, still without contention (documented
  idealisation).

Endpoints register a handler; units send by endpoint name.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sparta.unit import Unit


class NocError(Exception):
    """Raised for routing mistakes (unknown endpoints, rebinding)."""


class CrossbarNoC(Unit):
    """Idealised full crossbar with a single fixed traversal latency."""

    def __init__(self, name: str, parent: Unit, latency: int = 6):
        super().__init__(name, parent)
        if latency < 0:
            raise ValueError(f"negative NoC latency {latency}")
        self.latency = latency
        self._endpoints: dict[str, Callable[[Any], None]] = {}
        self._messages = self.stats.counter(
            "messages", "payloads routed through the NoC")
        self._link_counts: dict[tuple[str, str], int] = {}
        # Optional observability hook: called with each routed message's
        # traversal latency (telemetry histograms). None = no overhead.
        self.latency_observer: Callable[[int], None] | None = None
        # Optional fault-injection hook (resilience layer): maps one
        # routed message to the deliveries to actually perform, each a
        # ``(latency, payload)`` pair — one for a delayed message, two
        # for a duplicate, zero for a drop.  None = no overhead.
        self.fault_hook: Callable[
            [str, str, Any, int], list[tuple[int, Any]]] | None = None

    def attach(self, endpoint: str, handler: Callable[[Any], None]) -> None:
        """Register a named endpoint."""
        if endpoint in self._endpoints:
            raise NocError(f"endpoint {endpoint!r} already attached")
        self._endpoints[endpoint] = handler

    def route_latency(self, source: str, destination: str) -> int:
        """Cycles to traverse from ``source`` to ``destination``."""
        return self.latency

    def route(self, source: str, destination: str, payload: Any) -> None:
        """Send ``payload``; it arrives after :meth:`route_latency`."""
        endpoints = self._endpoints
        handler = endpoints.get(destination)
        if handler is None:
            raise NocError(f"unknown NoC endpoint {destination!r}")
        if source not in endpoints:
            raise NocError(f"unknown NoC endpoint {source!r}")
        self._messages.value += 1
        link_counts = self._link_counts
        link = (source, destination)
        link_counts[link] = link_counts.get(link, 0) + 1
        latency = self.route_latency(source, destination)
        observer = self.latency_observer
        hook = self.fault_hook
        if hook is None:
            if observer is not None:
                observer(latency)
            self.scheduler.schedule(handler, latency, (payload,))
            return
        for delay, item in hook(source, destination, payload, latency):
            if observer is not None:
                observer(delay)
            self.scheduler.schedule(handler, delay, (item,))

    def link_utilisation(self) -> dict[tuple[str, str], int]:
        """Messages per (source, destination) pair."""
        return dict(self._link_counts)


class MeshNoC(CrossbarNoC):
    """2D mesh with XY routing and per-hop latency (extension).

    Endpoints are assigned coordinates on a ``columns``-wide mesh in
    attachment order (row-major).  Latency between endpoints is
    ``(hops + 1) * router_latency + hops * link_latency`` where hops is
    the Manhattan distance.  Bandwidth/contention is not modelled, as in
    the paper's idealised NoC.
    """

    def __init__(self, name: str, parent: Unit, columns: int = 4,
                 router_latency: int = 1, link_latency: int = 1):
        super().__init__(name, parent, latency=0)
        if columns < 1:
            raise ValueError(f"mesh needs >= 1 column, got {columns}")
        self.columns = columns
        self.router_latency = router_latency
        self.link_latency = link_latency
        self._coordinates: dict[str, tuple[int, int]] = {}

    def attach(self, endpoint: str, handler: Callable[[Any], None]) -> None:
        super().attach(endpoint, handler)
        index = len(self._coordinates)
        self._coordinates[endpoint] = (index % self.columns,
                                       index // self.columns)

    def place(self, endpoint: str, x: int, y: int) -> None:
        """Override the automatic placement of an endpoint."""
        if endpoint not in self._coordinates:
            raise NocError(f"unknown NoC endpoint {endpoint!r}")
        self._coordinates[endpoint] = (x, y)

    def route_latency(self, source: str, destination: str) -> int:
        sx, sy = self._coordinates[source]
        dx, dy = self._coordinates[destination]
        hops = abs(sx - dx) + abs(sy - dy)
        return (hops + 1) * self.router_latency + hops * self.link_latency

    def rows(self) -> int:
        """Current number of occupied mesh rows."""
        if not self._coordinates:
            return 0
        return 1 + max(y for _x, y in self._coordinates.values())


def make_noc(kind: str, name: str, parent: Unit, **kwargs) -> CrossbarNoC:
    """NoC factory: ``kind`` is ``"crossbar"`` or ``"mesh"``."""
    if kind == "crossbar":
        return CrossbarNoC(name, parent, **kwargs)
    if kind == "mesh":
        return MeshNoC(name, parent, **kwargs)
    raise ValueError(f"unknown NoC kind {kind!r}")
