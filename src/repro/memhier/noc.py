"""Network-on-chip models.

The paper models the NoC "as a highly idealized crossbar, that uses fixed,
configurable latencies" and lists more realistic NoC modelling as work in
progress.  We provide both ends of that spectrum:

* :class:`CrossbarNoC` — the paper's model: every route costs the same
  fixed latency, with unlimited bandwidth.
* :class:`MeshNoC` — the "work in progress" extension made real: a 2D
  mesh (or torus, with wrap-around links) of routers with per-hop
  pipelines and **link contention** — a directed router-to-router link
  carries ``link_capacity`` flit-bursts per cycle, and conflicting
  messages queue, so latency is load-dependent instead of the
  closed-form Manhattan formula.  Routing is XY, YX, or a
  deterministically-seeded adaptive policy.

Every knob lives in the frozen :class:`NocConfig` carried by
``MemHierConfig.noc`` and sweepable through ``SimulationConfig.for_cores``
as dotted ``noc.*`` overrides.

Endpoints register a handler; units send by endpoint name.  Endpoints can
share a router ("station") so that e.g. a bank's request and fill ports
sit on one mesh node.

Determinism: link slots are allocated in scheduler event order, the
adaptive policy draws from one ``random.Random(adaptive_seed)`` consumed
in that same order, and all state (including in-flight messages) pickles,
so runs are bit-identical across repeats, checkpoint/restore, and
serial-vs-parallel sweep execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from enum import Enum
from typing import Any, Callable

from repro.sparta.unit import Unit

NOC_KINDS = ("crossbar", "mesh", "torus")


class NocError(Exception):
    """Raised for routing mistakes (unknown endpoints, rebinding)."""


class RoutingPolicy(str, Enum):
    """Mesh/torus routing policies (``NocConfig.routing``).

    ``XY`` resolves the X dimension first, ``YX`` the Y dimension first
    (both dimension-ordered, hence deadlock-free on a mesh), and
    ``ADAPTIVE`` picks the less-congested productive dimension per hop,
    breaking ties with a deterministically-seeded PRNG.
    """

    XY = "xy"
    YX = "yx"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class NocConfig:
    """Every interconnect parameter, as one frozen value object.

    ``kind`` selects the model: ``"crossbar"`` (the paper's idealised
    default, fixed ``latency`` per message), ``"mesh"`` or ``"torus"``
    (the contention model; a torus is a mesh whose rows and columns wrap).
    The remaining fields only matter for mesh/torus, except ``latency``
    which only matters for the crossbar.
    """

    kind: str = "crossbar"
    latency: int = 6           # crossbar: fixed traversal latency
    columns: int = 4           # mesh/torus: grid width in routers
    router_latency: int = 1    # cycles through each router pipeline
    link_latency: int = 1      # cycles on each router-to-router link
    link_capacity: int = 1     # flit-bursts one link carries per cycle
    routing: str = "xy"        # "xy" | "yx" | "adaptive"
    wrap: bool = False         # wrap-around links (forced for torus)
    adaptive_seed: int = 0     # PRNG seed for adaptive tie-breaks

    def __post_init__(self) -> None:
        if isinstance(self.routing, RoutingPolicy):
            object.__setattr__(self, "routing", self.routing.value)
        if self.kind == "torus" and not self.wrap:
            object.__setattr__(self, "wrap", True)
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent parameters."""
        if self.kind not in NOC_KINDS:
            raise ValueError(f"noc kind must be one of {NOC_KINDS}, "
                             f"got {self.kind!r}")
        if self.routing not in tuple(p.value for p in RoutingPolicy):
            raise ValueError(f"noc routing must be xy|yx|adaptive, "
                             f"got {self.routing!r}")
        if self.latency < 0:
            raise ValueError(f"negative NoC latency {self.latency}")
        if self.columns < 1:
            raise ValueError(f"mesh needs >= 1 column, "
                             f"got {self.columns}")
        if self.router_latency < 0 or self.link_latency < 0:
            raise ValueError("router/link latencies must be >= 0")
        if self.link_capacity < 1:
            raise ValueError(f"link capacity must be >= 1, "
                             f"got {self.link_capacity}")
        if not isinstance(self.adaptive_seed, int) \
                or self.adaptive_seed < 0:
            raise ValueError(f"adaptive seed must be a non-negative "
                             f"integer, got {self.adaptive_seed!r}")

    @classmethod
    def from_value(cls, value: "NocConfig | dict | None") -> "NocConfig":
        """Coerce a config-file value (dict / None / NocConfig)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            known = {field.name for field in fields(cls)}
            unknown = set(value) - known
            if unknown:
                raise ValueError(
                    f"unknown noc config keys: {sorted(unknown)}")
            return cls(**value)
        raise ValueError(f"cannot build a NocConfig from {value!r}")


class CrossbarNoC(Unit):
    """Idealised full crossbar with a single fixed traversal latency."""

    def __init__(self, name: str, parent: Unit, latency: int = 6):
        super().__init__(name, parent)
        if latency < 0:
            raise ValueError(f"negative NoC latency {latency}")
        self.latency = latency
        self._endpoints: dict[str, Callable[[Any], None]] = {}
        self._messages = self.stats.counter(
            "messages", "payloads routed through the NoC")
        # Physical-link counters: a crossbar has one ingress and one
        # egress port wire per endpoint, keyed ``(endpoint, "tx"|"rx")``
        # (messages the endpoint sent into / received from the fabric).
        self._link_counts: dict[tuple, int] = {}
        # Optional observability hook: called with each routed message's
        # traversal latency (telemetry histograms). None = no overhead.
        self.latency_observer: Callable[[int], None] | None = None
        # Optional fault-injection hook (resilience layer): maps one
        # routed message to the deliveries to actually perform, each a
        # ``(latency, payload)`` pair — one for a delayed message, two
        # for a duplicate, zero for a drop.  None = no overhead.
        self.fault_hook: Callable[
            [str, str, Any, int], list[tuple[int, Any]]] | None = None

    def attach(self, endpoint: str, handler: Callable[[Any], None],
               station: str | None = None) -> None:
        """Register a named endpoint (``station`` is a placement hint
        used by the mesh; the crossbar ignores it)."""
        if endpoint in self._endpoints:
            raise NocError(f"endpoint {endpoint!r} already attached")
        self._endpoints[endpoint] = handler

    def route_latency(self, source: str, destination: str) -> int:
        """Zero-load cycles to traverse from ``source`` to
        ``destination``."""
        return self.latency

    def route(self, source: str, destination: str, payload: Any) -> None:
        """Send ``payload``; it arrives after :meth:`route_latency`."""
        endpoints = self._endpoints
        handler = endpoints.get(destination)
        if handler is None:
            raise NocError(f"unknown NoC endpoint {destination!r}")
        if source not in endpoints:
            raise NocError(f"unknown NoC endpoint {source!r}")
        self._messages.value += 1
        link_counts = self._link_counts
        tx = (source, "tx")
        rx = (destination, "rx")
        link_counts[tx] = link_counts.get(tx, 0) + 1
        link_counts[rx] = link_counts.get(rx, 0) + 1
        latency = self.route_latency(source, destination)
        observer = self.latency_observer
        hook = self.fault_hook
        if hook is None:
            if observer is not None:
                observer(latency)
            self.scheduler.schedule(handler, latency, (payload,))
            return
        for delay, item in hook(source, destination, payload, latency):
            if observer is not None:
                observer(delay)
            self.scheduler.schedule(handler, delay, (item,))

    def link_utilisation(self) -> dict[tuple, int]:
        """Messages per physical link.

        For the crossbar the physical links are the per-endpoint port
        wires: ``(endpoint, "tx")`` counts messages the endpoint
        injected, ``(endpoint, "rx")`` messages delivered to it.  The
        mesh/torus override keys by directed router-to-router link
        instead — under a mesh one wire serves many endpoint pairs, so
        only link-level counts can show congestion.
        """
        return dict(self._link_counts)


class NocMessage:
    """One payload in flight inside the contention-modelled network.

    A plain module-level class (not a closure or namedtuple) so
    scheduler events holding one pickle for checkpoint/restore.
    """

    __slots__ = ("payload", "destination", "x", "y", "dest_x", "dest_y",
                 "inject_cycle", "hops", "queue_cycles")

    def __init__(self, payload: Any, destination: str, x: int, y: int,
                 dest_x: int, dest_y: int, inject_cycle: int):
        self.payload = payload
        self.destination = destination
        self.x = x
        self.y = y
        self.dest_x = dest_x
        self.dest_y = dest_y
        self.inject_cycle = inject_cycle
        self.hops = 0
        self.queue_cycles = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NocMessage to {self.destination!r} at "
                f"({self.x},{self.y}) dest ({self.dest_x},{self.dest_y}) "
                f"hops={self.hops} queued={self.queue_cycles}>")


class MeshNoC(CrossbarNoC):
    """2D mesh/torus with router pipelines and link contention.

    Endpoints are grouped into *stations* (one router each), assigned
    coordinates on a ``columns``-wide grid in attachment order
    (row-major).  A message traverses one router pipeline
    (``router_latency`` cycles) per node visited and one link
    (``link_latency`` cycles) per hop; a directed link carries at most
    ``link_capacity`` messages per cycle, and later arrivals queue, so
    observed latency grows with load.  At zero load the end-to-end
    latency is exactly the closed form
    ``(hops + 1) * router_latency + hops * link_latency`` that
    :meth:`route_latency` still reports (``hops`` = Manhattan distance,
    wrap-aware on a torus), which is what the differential tests compare
    congested runs against.

    Link arbitration keeps a per-link frontier ``(next_free_cycle,
    slots_used)`` — events allocate slots in deterministic scheduler
    order, so contention resolution is bit-reproducible and the whole
    network state (frontiers, in-flight :class:`NocMessage` objects, the
    adaptive PRNG) survives a checkpoint pickle unchanged.
    """

    def __init__(self, name: str, parent: Unit, columns: int = 4,
                 router_latency: int = 1, link_latency: int = 1, *,
                 config: NocConfig | None = None):
        if config is None:
            config = NocConfig(kind="mesh", columns=columns,
                               router_latency=router_latency,
                               link_latency=link_latency)
        super().__init__(name, parent, latency=0)
        self.noc_config = config
        self.columns = config.columns
        self.router_latency = config.router_latency
        self.link_latency = config.link_latency
        self.link_capacity = config.link_capacity
        self.routing = config.routing
        self.wrap = config.wrap
        self._rng = random.Random(config.adaptive_seed)
        self._coordinates: dict[str, tuple[int, int]] = {}
        self._stations: dict[str, tuple[int, int]] = {}
        self._grid_rows = 1
        # Directed link -> (next free cycle, slots used in that cycle).
        self._link_next: dict[tuple, tuple[int, int]] = {}
        # Traversals through each router, keyed by coordinate.
        self._router_counts: dict[tuple[int, int], int] = {}
        # Optional observability hooks (telemetry; None = no overhead):
        # per-hop queueing delay, and network occupancy after each
        # inject/deliver (Chrome trace counter track).
        self.queue_observer: Callable[[int], None] | None = None
        self.occupancy_sink: Callable[[int, int], None] | None = None
        stats = self.stats
        self._injected = stats.counter(
            "injected", "messages that entered the network")
        self._delivered = stats.counter(
            "delivered", "messages handed to their endpoint")
        self._hops = stats.counter(
            "hops", "router-to-router link traversals")
        self._queue_cycles = stats.counter(
            "queue_cycles", "cycles messages waited for busy links")
        self._in_network = stats.counter(
            "in_network", "messages currently inside the network (gauge)")
        self._total_latency = stats.counter(
            "total_latency", "sum of end-to-end traversal latencies")

    # -- topology ----------------------------------------------------------

    def attach(self, endpoint: str, handler: Callable[[Any], None],
               station: str | None = None) -> None:
        """Register an endpoint; endpoints naming the same ``station``
        share one router (default: one station per endpoint)."""
        super().attach(endpoint, handler)
        station = station if station is not None else endpoint
        coordinate = self._stations.get(station)
        if coordinate is None:
            index = len(self._stations)
            coordinate = (index % self.columns, index // self.columns)
            self._stations[station] = coordinate
            self._grid_rows = max(self._grid_rows, coordinate[1] + 1)
        self._coordinates[endpoint] = coordinate

    def place(self, endpoint: str, x: int, y: int) -> None:
        """Override the automatic placement of an endpoint."""
        if endpoint not in self._coordinates:
            raise NocError(f"unknown NoC endpoint {endpoint!r}")
        self._coordinates[endpoint] = (x, y)
        self._grid_rows = max(self._grid_rows, y + 1)

    def rows(self) -> int:
        """Current number of occupied mesh rows."""
        if not self._coordinates:
            return 0
        return 1 + max(y for _x, y in self._coordinates.values())

    def _distance(self, a: int, b: int, size: int) -> int:
        direct = abs(a - b)
        if self.wrap and size > 1 and a < size and b < size:
            return min(direct, size - direct)
        return direct

    def route_latency(self, source: str, destination: str) -> int:
        """Closed-form zero-load latency (the paper's idealisation;
        the contention model reduces to it on an empty network)."""
        sx, sy = self._coordinates[source]
        dx, dy = self._coordinates[destination]
        hops = (self._distance(sx, dx, self.columns)
                + self._distance(sy, dy, self._grid_rows))
        return (hops + 1) * self.router_latency + hops * self.link_latency

    # -- the event-driven routing core -------------------------------------

    def route(self, source: str, destination: str, payload: Any) -> None:
        """Inject ``payload`` at ``source``'s router; it traverses the
        network hop by hop, queueing on busy links."""
        endpoints = self._endpoints
        if destination not in endpoints:
            raise NocError(f"unknown NoC endpoint {destination!r}")
        if source not in endpoints:
            raise NocError(f"unknown NoC endpoint {source!r}")
        self._messages.value += 1
        sx, sy = self._coordinates[source]
        dx, dy = self._coordinates[destination]
        hook = self.fault_hook
        if hook is None:
            self._inject(destination, payload, sx, sy, dx, dy, 0)
            return
        # The hook sees the same ``(source, destination, payload,
        # zero-load latency)`` contract as on the crossbar; each
        # delivery's extra delay over that latency is served as an
        # injection delay at the source NIC (a blacked-out or delayed
        # message sits at the source, then pays normal network latency).
        latency = self.route_latency(source, destination)
        for delay, item in hook(source, destination, payload, latency):
            self._inject(destination, item, sx, sy, dx, dy,
                         max(0, delay - latency))

    def _inject(self, destination: str, payload: Any, sx: int, sy: int,
                dx: int, dy: int, entry_delay: int) -> None:
        now = self.scheduler.current_cycle
        message = NocMessage(payload, destination, sx, sy, dx, dy, now)
        self._injected.value += 1
        self._in_network.value += 1
        sink = self.occupancy_sink
        if sink is not None:
            sink(now, self._in_network.value)
        if entry_delay:
            self.scheduler.schedule(self._route_step, entry_delay,
                                    (message,))
        else:
            self._route_step(message)

    def _route_step(self, message: NocMessage) -> None:
        """Pass through one router: deliver, or arbitrate for the next
        link and move one hop."""
        now = self.scheduler.current_cycle
        x, y = message.x, message.y
        router_counts = self._router_counts
        router = (x, y)
        router_counts[router] = router_counts.get(router, 0) + 1
        if x == message.dest_x and y == message.dest_y:
            self.scheduler.schedule(self._deliver, self.router_latency,
                                    (message,))
            return
        nx, ny = self._next_hop(message)
        ready = now + self.router_latency
        link = ((x, y), (nx, ny))
        depart = self._allocate(link, ready)
        wait = depart - ready
        if wait:
            message.queue_cycles += wait
            self._queue_cycles.value += wait
        observer = self.queue_observer
        if observer is not None:
            observer(wait)
        message.hops += 1
        self._hops.value += 1
        link_counts = self._link_counts
        link_counts[link] = link_counts.get(link, 0) + 1
        message.x, message.y = nx, ny
        self.scheduler.schedule(self._route_step,
                                depart + self.link_latency - now,
                                (message,))

    def _deliver(self, message: NocMessage) -> None:
        now = self.scheduler.current_cycle
        self._delivered.value += 1
        self._in_network.value -= 1
        latency = now - message.inject_cycle
        self._total_latency.value += latency
        observer = self.latency_observer
        if observer is not None:
            observer(latency)
        sink = self.occupancy_sink
        if sink is not None:
            sink(now, self._in_network.value)
        self._endpoints[message.destination](message.payload)

    # -- link arbitration --------------------------------------------------

    def _allocate(self, link: tuple, ready: int) -> int:
        """Claim the earliest slot on ``link`` at or after ``ready``.

        The frontier only moves forward and is advanced in scheduler
        event order, so allocation is deterministic; a full slot pushes
        the message to the next cycle (load-dependent queueing).
        """
        entry = self._link_next.get(link)
        if entry is None or entry[0] < ready:
            slot = (ready, 1)
        else:
            depart, used = entry
            slot = ((depart, used + 1) if used < self.link_capacity
                    else (depart + 1, 1))
        self._link_next[link] = slot
        return slot[0]

    def _estimate(self, link: tuple, ready: int) -> int:
        """Departure cycle :meth:`_allocate` would grant, without
        claiming the slot (the adaptive policy's congestion probe)."""
        entry = self._link_next.get(link)
        if entry is None or entry[0] < ready:
            return ready
        depart, used = entry
        return depart if used < self.link_capacity else depart + 1

    # -- routing policies --------------------------------------------------

    def _step_coord(self, current: int, target: int, size: int) -> int:
        """Next coordinate moving one hop toward ``target`` (wrap-aware:
        a torus takes the shorter way round, ties going positive)."""
        if not self.wrap or size <= 1 or current >= size or target >= size:
            return current + (1 if target > current else -1)
        forward = (target - current) % size
        if forward <= size - forward:
            return (current + 1) % size
        return (current - 1) % size

    def _next_hop(self, message: NocMessage) -> tuple[int, int]:
        x, y = message.x, message.y
        move_x = x != message.dest_x
        move_y = y != message.dest_y
        routing = self.routing
        if routing == "xy":
            axis_x = move_x
        elif routing == "yx":
            axis_x = not move_y
        elif move_x and move_y:
            # Adaptive: both dimensions are productive; probe each
            # candidate link's frontier and take the less congested,
            # breaking ties with the seeded PRNG (consumed in
            # deterministic event order).
            ready = self.scheduler.current_cycle + self.router_latency
            cx = self._step_coord(x, message.dest_x, self.columns)
            cy = self._step_coord(y, message.dest_y, self._grid_rows)
            est_x = self._estimate(((x, y), (cx, y)), ready)
            est_y = self._estimate(((x, y), (x, cy)), ready)
            if est_x != est_y:
                axis_x = est_x < est_y
            else:
                axis_x = self._rng.random() < 0.5
        else:
            axis_x = move_x
        if axis_x:
            return self._step_coord(x, message.dest_x, self.columns), y
        return x, self._step_coord(y, message.dest_y, self._grid_rows)

    # -- reporting ---------------------------------------------------------

    def link_utilisation(self) -> dict[tuple, int]:
        """Messages per directed router-to-router link, keyed
        ``((x, y), (nx, ny))``."""
        return dict(self._link_counts)

    def router_utilisation(self) -> dict[tuple[int, int], int]:
        """Message traversals through each router, keyed ``(x, y)``."""
        return dict(self._router_counts)

    def congestion_report(self) -> dict:
        """JSON-safe congestion summary (per-link and per-router counts
        plus the aggregate queueing totals)."""
        return {
            "links": {f"({fx},{fy})->({tx},{ty})": count
                      for ((fx, fy), (tx, ty)), count
                      in sorted(self._link_counts.items())},
            "routers": {f"({x},{y})": count for (x, y), count
                        in sorted(self._router_counts.items())},
            "injected": self._injected.value,
            "delivered": self._delivered.value,
            "hops": self._hops.value,
            "queue_cycles": self._queue_cycles.value,
            "in_network": self._in_network.value,
        }

    def check_conservation(self, physically_in_network: int) -> list[dict]:
        """Flit-conservation violations, given an independent count of
        the :class:`NocMessage` objects physically in the scheduler.

        The contention queues must neither lose nor duplicate messages:
        every injection is eventually a delivery, and the occupancy
        gauge must agree with the event queue's ground truth.
        """
        violations: list[dict] = []
        injected = self._injected.value
        delivered = self._delivered.value
        if injected != delivered + physically_in_network:
            violations.append({
                "invariant": "noc_flit_conservation",
                "component": self.path,
                "detail": f"{self.path}: {injected} injected != "
                          f"{delivered} delivered + "
                          f"{physically_in_network} in the network",
            })
        gauge = self._in_network.value
        if gauge != physically_in_network:
            violations.append({
                "invariant": "noc_occupancy_gauge",
                "component": self.path,
                "detail": f"{self.path}: occupancy gauge says {gauge} "
                          f"but {physically_in_network} messages are "
                          f"physically in flight",
            })
        return violations


def make_noc(config: NocConfig | str, name: str, parent: Unit,
             **kwargs) -> CrossbarNoC:
    """NoC factory from a :class:`NocConfig` (or, legacy spelling, a
    kind string plus keyword arguments)."""
    if isinstance(config, str):
        if config not in NOC_KINDS:
            raise ValueError(f"unknown NoC kind {config!r}")
        if config == "crossbar":
            return CrossbarNoC(name, parent, **kwargs)
        config = NocConfig(kind=config, **kwargs)
    elif kwargs:
        raise TypeError("make_noc takes keyword options only with the "
                        "legacy kind-string form")
    if config.kind == "crossbar":
        return CrossbarNoC(name, parent, latency=config.latency)
    return MeshNoC(name, parent, config=config)
