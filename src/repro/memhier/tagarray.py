"""Set-associative tag array used by the modelled L2 banks.

Unlike the L1 model (which allocates on access, since the functional data
is always available), an L2 bank must *not* install a line until its fill
response returns from memory — the lookup/install split here models that.
Replacement is true-LRU; dirty state tracks whether an eventual eviction
must write back.
"""

from __future__ import annotations

from repro.utils.bitops import clog2, is_power_of_two


class TagArray:
    """Tags + LRU + dirty bits for one cache bank."""

    def __init__(self, size_bytes: int, associativity: int, line_bytes: int):
        if not is_power_of_two(line_bytes):
            raise ValueError(f"line size must be a power of two: "
                             f"{line_bytes}")
        num_lines, remainder = divmod(size_bytes, line_bytes)
        if remainder:
            raise ValueError("size must be a multiple of the line size")
        self.num_sets, remainder = divmod(num_lines, associativity)
        if remainder or self.num_sets == 0 \
                or not is_power_of_two(self.num_sets):
            raise ValueError(
                f"bad geometry: {size_bytes}/{associativity}/{line_bytes}")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self._offset_bits = clog2(line_bytes)
        self._index_mask = self.num_sets - 1
        # Insertion-ordered {line_number: dirty}; first key is LRU.
        self._sets: list[dict[int, bool]] = [dict()
                                             for _ in range(self.num_sets)]

    def _locate(self, address: int) -> tuple[dict[int, bool], int]:
        line_number = address >> self._offset_bits
        return self._sets[line_number & self._index_mask], line_number

    def lookup(self, address: int, is_write: bool) -> bool:
        """Probe for ``address``; on hit, touch LRU (and dirty for
        writes)."""
        ways, line_number = self._locate(address)
        if line_number not in ways:
            return False
        dirty = ways.pop(line_number) or is_write
        ways[line_number] = dirty
        return True

    def contains(self, address: int) -> bool:
        """Presence check without LRU side effects."""
        ways, line_number = self._locate(address)
        return line_number in ways

    def install(self, address: int,
                dirty: bool = False) -> tuple[int, bool] | None:
        """Install the line holding ``address``.

        Returns ``(victim_line_address, victim_dirty)`` when an eviction
        was required, else ``None``.  Installing a resident line just
        updates its state.
        """
        ways, line_number = self._locate(address)
        if line_number in ways:
            ways[line_number] = ways.pop(line_number) or dirty
            return None
        victim = None
        if len(ways) >= self.associativity:
            victim_number, victim_dirty = next(iter(ways.items()))
            del ways[victim_number]
            victim = (victim_number << self._offset_bits, victim_dirty)
        ways[line_number] = dirty
        return victim

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(ways) for ways in self._sets)
