"""The Sparta-modelled memory hierarchy: L2 banks, NoC, memory
controllers, bank-mapping policies, and the tiled-system assembly."""

from repro.memhier.hierarchy import MemHierConfig, MemoryHierarchy
from repro.memhier.l2bank import CacheBank, L2Bank
from repro.memhier.mapping import (
    MappingPolicy,
    PageToBank,
    SetInterleaving,
    make_policy,
    policy_names,
)
from repro.memhier.memctrl import MemoryController
from repro.memhier.noc import (
    CrossbarNoC,
    MeshNoC,
    NocConfig,
    NocError,
    NocMessage,
    RoutingPolicy,
    make_noc,
)
from repro.memhier.request import MemRequest, RequestKind
from repro.memhier.tagarray import TagArray

__all__ = [
    "CacheBank",
    "CrossbarNoC",
    "L2Bank",
    "MappingPolicy",
    "MemHierConfig",
    "MemRequest",
    "MemoryController",
    "MemoryHierarchy",
    "MeshNoC",
    "NocConfig",
    "NocError",
    "NocMessage",
    "PageToBank",
    "RequestKind",
    "RoutingPolicy",
    "SetInterleaving",
    "TagArray",
    "make_noc",
    "make_policy",
    "policy_names",
]
