"""A cache bank, modelled as an independent Sparta unit.

"The functionality of each element (e.g. an L2 Bank) is encapsulated as an
independent component" — each bank owns its tag array, MSHR file, and a
pending queue used when the configured maximum number of in-flight misses
is reached (back-pressure).

The class is level-agnostic: the hierarchy instantiates it as L2 banks
(requests from the tile side, fills from memory or from an L3) and — the
paper's "deeper memory hierarchies can currently be modelled" — as an
optional L3 level sitting between the L2 banks and the memory
controllers.  Response routing is carried per-request in
``MemRequest.fill_target`` ("where the response to this request goes"),
so one bank can serve waiters from many different requesters.

Timing: hits respond after ``hit_latency``; misses spend ``miss_latency``
on lookup/MSHR allocation before the fill request leaves for the next
level.  Lines are installed only when the fill response returns, and
dirty victims generate writebacks toward memory.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.memhier.request import MemRequest, RequestKind
from repro.memhier.tagarray import TagArray
from repro.sparta.unit import Unit


class CacheBank(Unit):
    """A single bank of a shared / tile-private cache level."""

    def __init__(self, name: str, parent: Unit, *, size_bytes: int,
                 associativity: int, line_bytes: int, hit_latency: int,
                 miss_latency: int, max_in_flight: int,
                 send: Callable[[str, str, object], None],
                 next_level_of: Callable[[int], str],
                 records_bank_id: bool = True,
                 cycles_per_request: int = 0):
        super().__init__(name, parent)
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got "
                             f"{max_in_flight}")
        if cycles_per_request < 0:
            raise ValueError(f"cycles_per_request must be >= 0, got "
                             f"{cycles_per_request}")
        self.tags = TagArray(size_bytes, associativity, line_bytes)
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.max_in_flight = max_in_flight
        # 0 = the paper's idealised bank (unlimited throughput); N > 0
        # models a single bank port accepting one request every N cycles
        # (bank conflicts appear as queueing delay).
        self.cycles_per_request = cycles_per_request
        self._next_free_cycle = 0
        self._send = send
        self._next_level_of = next_level_of
        self._records_bank_id = records_bank_id
        self.endpoint = self.path              # NoC endpoint for requests
        self.fill_endpoint = self.path + ".fill"  # NoC endpoint for fills
        # Normally a fill without an MSHR is a hard modelling bug and
        # raises.  Under fault injection, duplicate-delivered fills are
        # *expected* to arrive after their MSHR retired; the injector
        # flips this so they are counted and dropped instead.
        self.tolerate_spurious_fills = False

        # line_address -> list of requests waiting on that fill.
        self._mshrs: dict[int, list[MemRequest]] = {}
        self._pending: deque[MemRequest] = deque()

        stats = self.stats
        self._stat_requests = stats.counter("requests",
                                            "requests received")
        self._stat_hits = stats.counter("hits", "bank hits")
        self._stat_misses = stats.counter("misses", "bank misses")
        self._stat_writebacks_in = stats.counter(
            "writebacks_in", "writebacks received from above")
        self._stat_writebacks_out = stats.counter(
            "writebacks_out", "dirty victims written toward memory")
        self._stat_coalesced = stats.counter(
            "coalesced", "misses merged into an existing MSHR")
        self._stat_late_hits = stats.counter(
            "late_hits",
            "misses that found the line installed by an intervening fill")
        self._stat_wb_coalesced = stats.counter(
            "writebacks_coalesced",
            "writebacks merged into an in-flight MSHR for the same line")
        self._stat_stalled = stats.counter(
            "mshr_stalls", "requests queued because the MSHR file was full")
        self._stat_occupancy = stats.gauge("mshr_occupancy",
                                           "in-flight misses")
        self._stat_queue = stats.gauge(
            "pending_queue", "requests waiting for a free MSHR")
        self._stat_conflicts = stats.counter(
            "port_conflict_cycles",
            "cycles requests waited for the bank port")
        self._stat_spurious = stats.counter(
            "spurious_fills",
            "fills with no waiting MSHR, dropped (fault injection)")

    # -- NoC-facing entry points ---------------------------------------------

    def handle_request(self, request: MemRequest) -> None:
        """A request arrived from the level above."""
        if self._records_bank_id:
            request.bank_id = _bank_index_of(self.name)
        self._stat_requests.increment()
        port_wait = self._claim_port()
        if request.kind is RequestKind.WRITEBACK:
            if port_wait:
                self.scheduler.schedule(self._handle_writeback,
                                        port_wait, (request,))
            else:
                self._handle_writeback(request)
            return
        if self.tags.lookup(request.line_address,
                            request.kind is RequestKind.STORE):
            self._stat_hits.increment()
            if self._records_bank_id:
                request.l2_hit = True
            self.scheduler.schedule(self._respond,
                                    port_wait + self.hit_latency,
                                    (request,))
            return
        self._stat_misses.increment()
        if self._records_bank_id:
            request.l2_hit = False
        self.scheduler.schedule(self._start_miss,
                                port_wait + self.miss_latency,
                                (request,))

    def _claim_port(self) -> int:
        """Cycles this request must wait for the bank port (0 when the
        port is idealised)."""
        if not self.cycles_per_request:
            return 0
        now = self.scheduler.current_cycle
        start = max(now, self._next_free_cycle)
        self._next_free_cycle = start + self.cycles_per_request
        wait = start - now
        if wait:
            self._stat_conflicts.increment(wait)
        return wait

    def handle_fill(self, request: MemRequest) -> None:
        """A fill response arrived from the level below."""
        line = request.line_address
        waiters = self._mshrs.pop(line, None)
        if waiters is None:
            if self.tolerate_spurious_fills:
                self._stat_spurious.increment()
                return
            raise RuntimeError(
                f"{self.path}: fill for {line:#x} without an MSHR")
        # A coalesced WRITEBACK waiter means the level above evicted its
        # dirty copy while the fill was in flight: the line must be
        # installed dirty, and the writeback itself gets no response.
        dirty = any(waiter.kind is RequestKind.STORE
                    or waiter.kind is RequestKind.WRITEBACK
                    for waiter in waiters)
        victim = self.tags.install(line, dirty=dirty)
        if victim is not None:
            victim_line, victim_dirty = victim
            if victim_dirty:
                self._write_toward_memory(victim_line)
        for waiter in waiters:
            if waiter.kind is RequestKind.WRITEBACK:
                continue
            self._respond(waiter)
        self._stat_occupancy.add(-1)
        self._drain_pending()

    # -- internals ------------------------------------------------------------

    def _handle_writeback(self, request: MemRequest) -> None:
        self._stat_writebacks_in.increment()
        if self.tags.lookup(request.line_address, is_write=True):
            return  # absorbed: line resident, now dirty
        waiters = self._mshrs.get(request.line_address)
        if waiters is not None:
            # The line's fill is already in flight.  Forwarding the
            # writeback toward memory here would let the fill install
            # the line *clean*, silently dropping the dirtiness the
            # level above just handed us; coalesce into the MSHR so the
            # install is dirty instead.
            waiters.append(request)
            self._stat_wb_coalesced.increment()
            return
        # Not resident: forward toward memory without allocating.
        self._write_toward_memory(request.line_address)

    def _write_toward_memory(self, line_address: int) -> None:
        self._stat_writebacks_out.increment()
        writeback = MemRequest(
            request_id=-1, core_id=-1, tile_id=-1,
            line_address=line_address, kind=RequestKind.WRITEBACK,
            issue_cycle=self.scheduler.current_cycle)
        self._send(self.endpoint,
                   self._next_level_of(line_address), writeback)

    def _start_miss(self, request: MemRequest) -> None:
        line = request.line_address
        waiters = self._mshrs.get(line)
        if waiters is not None:
            waiters.append(request)
            self._stat_coalesced.increment()
            return
        if self._late_hit(request):
            return
        if len(self._mshrs) >= self.max_in_flight:
            self._stat_stalled.increment()
            self._pending.append(request)
            self._stat_queue.set(len(self._pending))
            return
        self._allocate_mshr(request)

    def _late_hit(self, request: MemRequest) -> bool:
        """Re-check the tags before allocating an MSHR.

        ``miss_latency`` cycles pass between :meth:`handle_request`
        classifying a request as a miss and the MSHR allocation; a fill
        for the same line (raised by an earlier miss whose MSHR has
        since retired) can install the line in that window.  Without
        this re-check the bank would fetch a line it already holds —
        double-counting memory traffic and, worse, the redundant fill's
        install could evict the very line an in-flight response is
        about to be served from.
        """
        if not self.tags.lookup(request.line_address,
                                request.kind is RequestKind.STORE):
            return False
        self._stat_late_hits.increment()
        if self._records_bank_id:
            request.l2_hit = True
        self._respond(request)
        return True

    def _allocate_mshr(self, request: MemRequest) -> None:
        self._mshrs[request.line_address] = [request]
        self._stat_occupancy.add(1)
        # Forward a distinct fill request: the waiter keeps its own
        # fill_target (where *its* response must go), while the fill's
        # response comes back to this bank.
        fill = MemRequest(
            request_id=-2, core_id=request.core_id,
            tile_id=request.tile_id, line_address=request.line_address,
            kind=RequestKind.LOAD,
            issue_cycle=self.scheduler.current_cycle)
        fill.fill_target = self.fill_endpoint
        self._send(self.endpoint,
                   self._next_level_of(request.line_address), fill)

    def _drain_pending(self) -> None:
        drained = False
        while self._pending and len(self._mshrs) < self.max_in_flight:
            drained = True
            request = self._pending.popleft()
            waiters = self._mshrs.get(request.line_address)
            if waiters is not None:
                waiters.append(request)
                self._stat_coalesced.increment()
                continue
            if self._late_hit(request):
                continue
            self._allocate_mshr(request)
        if drained:
            self._stat_queue.set(len(self._pending))

    def _respond(self, request: MemRequest) -> None:
        self._send(self.endpoint, request.fill_target, request)

    # -- introspection ---------------------------------------------------------

    def in_flight(self) -> int:
        """Currently outstanding fills."""
        return len(self._mshrs)

    def queued(self) -> int:
        """Requests waiting for a free MSHR."""
        return len(self._pending)


# The hierarchy's L2 level is built from CacheBank instances; the old name
# remains for callers that speak in the paper's terms.
L2Bank = CacheBank


def _bank_index_of(name: str) -> int:
    """Extract the numeric suffix of a bank unit name like ``bank12``."""
    digits = "".join(ch for ch in name if ch.isdigit())
    return int(digits) if digits else -1
