"""Memory controller + HBM-like channel model.

The paper lists memory-controller modelling as work in progress and uses
fixed latencies; we implement a simple but useful model: each controller
has a fixed access ``latency`` plus a bandwidth limit expressed as
``cycles_per_request`` (the initiation interval of its single channel).
Requests that arrive while the channel is busy queue up and are served in
order — so bank-conflict-like pressure on one controller shows up as
queueing delay, which is exactly the first-order effect design-space
exploration needs.

An optional stream prefetcher (extension; the paper calls prefetching a
"next step") watches fill addresses per controller and preloads the
next sequential line into the requesting bank's MSHR stream.
"""

from __future__ import annotations

from typing import Callable

from repro.memhier.request import MemRequest, RequestKind
from repro.sparta.unit import Unit


class MemoryController(Unit):
    """One memory channel: fixed latency + initiation-interval bandwidth."""

    def __init__(self, name: str, parent: Unit, *, latency: int = 100,
                 cycles_per_request: int = 2,
                 send: Callable[[str, str, object], None] | None = None,
                 prefetch_depth: int = 0, line_bytes: int = 64):
        super().__init__(name, parent)
        if latency < 1:
            raise ValueError(f"latency must be >= 1, got {latency}")
        if cycles_per_request < 1:
            raise ValueError(
                f"cycles_per_request must be >= 1, got {cycles_per_request}")
        if prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be >= 0, got {prefetch_depth}")
        self.latency = latency
        self.cycles_per_request = cycles_per_request
        self.prefetch_depth = prefetch_depth
        self.line_bytes = line_bytes
        self._send = send
        self.endpoint = self.path
        self._next_free_cycle = 0
        self._prefetched: set[int] = set()

        stats = self.stats
        self._stat_reads = stats.counter("reads", "fill requests served")
        self._stat_writes = stats.counter("writes", "writebacks absorbed")
        self._stat_queue_cycles = stats.counter(
            "queue_cycles", "total cycles requests waited for the channel")
        self._stat_busy_cycles = stats.counter(
            "busy_cycles", "cycles the channel transferred data")
        self._stat_prefetches = stats.counter(
            "prefetches", "sequential lines prefetched (extension)")
        self._stat_queue = stats.gauge(
            "queue_depth",
            "requests queued behind the busy channel (at arrival)")

    def handle_request(self, request: MemRequest) -> None:
        """A fill request or writeback arrived from an L2 bank."""
        now = self.scheduler.current_cycle
        start = max(now, self._next_free_cycle)
        self._stat_queue_cycles.increment(start - now)
        # Backlog seen by this request, in whole requests-ahead-of-us.
        self._stat_queue.set((start - now) // self.cycles_per_request)
        # An MCPU-aggregated request transfers all its member lines
        # back-to-back on the channel.
        transfer_cycles = self.cycles_per_request * request.num_lines
        self._next_free_cycle = start + transfer_cycles
        self._stat_busy_cycles.increment(transfer_cycles)

        if request.kind is RequestKind.WRITEBACK:
            self._stat_writes.increment()
            return  # absorbed; no response needed
        self._stat_reads.increment()
        request.mc_id = _mc_index_of(self.name)

        # Stream-prefetch extension: a read of a previously prefetched line
        # is served at channel speed (its DRAM access already happened);
        # each demand read triggers prefetches of the next sequential lines.
        access_latency = self.latency
        if self.prefetch_depth:
            if request.line_address in self._prefetched:
                self._prefetched.discard(request.line_address)
                access_latency = self.cycles_per_request
            for depth in range(1, self.prefetch_depth + 1):
                next_line = request.line_address + depth * self.line_bytes
                if next_line not in self._prefetched:
                    self._prefetched.add(next_line)
                    self._stat_prefetches.increment()
                    self._next_free_cycle += self.cycles_per_request
                    self._stat_busy_cycles.increment(self.cycles_per_request)

        # The (single) response leaves once the last member line has
        # transferred.
        respond_at = (start + access_latency
                      + (request.num_lines - 1) * self.cycles_per_request)
        self.scheduler.schedule(self._respond, respond_at - now, (request,))

    def _respond(self, request: MemRequest) -> None:
        if self._send is None:
            raise RuntimeError(f"{self.path}: no send function wired")
        self._send(self.endpoint, request.fill_target, request)

    @property
    def busy_until(self) -> int:
        """First cycle the channel is free again (diagnostics: a value
        far in the future means a deep backlog behind this controller)."""
        return self._next_free_cycle

    def utilisation(self, total_cycles: int) -> float:
        """Fraction of cycles the channel was transferring data."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self._stat_busy_cycles.value / total_cycles)


def _mc_index_of(name: str) -> int:
    digits = "".join(ch for ch in name if ch.isdigit())
    return int(digits) if digits else -1
