"""Request objects flowing through the modelled memory hierarchy."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RequestKind(enum.Enum):
    """What a hierarchy request represents."""

    IFETCH = "ifetch"
    LOAD = "load"
    STORE = "store"
    WRITEBACK = "writeback"

    @property
    def is_write(self) -> bool:
        return self in (RequestKind.STORE, RequestKind.WRITEBACK)

    @property
    def needs_response(self) -> bool:
        """Writebacks are fire-and-forget; everything else completes."""
        return self is not RequestKind.WRITEBACK


@dataclass(slots=True)
class MemRequest:
    """One L1-miss request travelling through L2 / NoC / memory.

    ``request_id`` correlates the eventual completion with the scoreboard
    entry created when the miss left the core.
    """

    request_id: int
    core_id: int
    tile_id: int
    line_address: int
    kind: RequestKind
    issue_cycle: int
    bank_id: int = -1
    mc_id: int = -1
    complete_cycle: int = -1
    l2_hit: bool | None = None
    fill_target: str = ""  # NoC endpoint the memory fill returns to
    # MCPU aggregation (extension): one NoC message standing for several
    # scoreboard entries / cache lines of a single vector instruction.
    member_ids: tuple = ()
    num_lines: int = 1
    # Resilience layer: True on the second copy of a duplicate-delivered
    # message, so receivers and diagnostics can tell it apart.
    duplicate: bool = False

    @property
    def latency(self) -> int:
        """End-to-end cycles, valid once completed."""
        if self.complete_cycle < 0:
            raise ValueError(f"request {self.request_id} not complete")
        return self.complete_cycle - self.issue_cycle
