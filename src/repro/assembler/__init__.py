"""A two-pass RV64 assembler producing loadable program images."""

from repro.assembler.assembler import Assembler, assemble
from repro.assembler.encoder import EncodeError
from repro.assembler.lexer import AsmSyntaxError
from repro.assembler.program import DEFAULT_TEXT_BASE, Program, Segment

__all__ = [
    "AsmSyntaxError",
    "Assembler",
    "DEFAULT_TEXT_BASE",
    "EncodeError",
    "Program",
    "Segment",
    "assemble",
]
