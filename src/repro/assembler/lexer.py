"""Line-level tokenisation for the RISC-V assembler.

Each source line is split into an optional label, an optional statement
(mnemonic or directive) and its operand list.  Operands are split on commas
at the top level only, so memory operands like ``8(a0)`` and parenthesised
expressions stay intact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class AsmSyntaxError(Exception):
    """Raised for malformed assembly source."""

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None):
        self.line_number = line_number
        self.line = line
        location = f" (line {line_number}: {line!r})" if line_number else ""
        super().__init__(message + location)


_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


@dataclass
class Statement:
    """One tokenised source statement."""

    line_number: int
    source: str
    label: str | None = None
    mnemonic: str | None = None
    operands: list[str] = field(default_factory=list)

    @property
    def is_directive(self) -> bool:
        return bool(self.mnemonic) and self.mnemonic.startswith(".")


def strip_comment(line: str) -> str:
    """Remove ``#`` and ``//`` comments, respecting double-quoted strings."""
    result = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_string:
            result.append(ch)
            if ch == "\\" and i + 1 < len(line):
                result.append(line[i + 1])
                i += 2
                continue
            if ch == '"':
                in_string = False
            i += 1
            continue
        if ch == '"':
            in_string = True
            result.append(ch)
            i += 1
            continue
        if ch == "#" or line.startswith("//", i):
            break
        result.append(ch)
        i += 1
    return "".join(result)


def split_operands(text: str) -> list[str]:
    """Split an operand string on top-level commas.

    >>> split_operands("a0, 8(sp), 3")
    ['a0', '8(sp)', '3']
    """
    operands = []
    depth = 0
    in_string = False
    current = []
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "\\" and i + 1 < len(text):
                current.append(text[i + 1])
                i += 2
                continue
            if ch == '"':
                in_string = False
            i += 1
            continue
        if ch == '"':
            in_string = True
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def tokenize_line(line: str, line_number: int) -> list[Statement]:
    """Tokenise one source line into zero or more statements.

    Multiple labels may precede a statement; each becomes its own
    :class:`Statement` with only the label set, followed by one statement
    holding the mnemonic (if any).
    """
    stripped = strip_comment(line)
    statements: list[Statement] = []
    rest = stripped
    while True:
        match = _LABEL_RE.match(rest)
        if not match:
            break
        statements.append(Statement(line_number, line, label=match.group(1)))
        rest = rest[match.end():]
    rest = rest.strip()
    if rest:
        parts = rest.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        statements.append(
            Statement(line_number, line, mnemonic=mnemonic,
                      operands=split_operands(operand_text)))
    return statements


def tokenize(source: str) -> list[Statement]:
    """Tokenise a full assembly source string."""
    statements: list[Statement] = []
    for number, line in enumerate(source.splitlines(), start=1):
        statements.extend(tokenize_line(line, number))
    return statements


def unescape_string(token: str, line_number: int | None = None) -> bytes:
    """Decode a quoted assembler string literal into bytes."""
    match = _STRING_RE.match(token.strip())
    if not match:
        raise AsmSyntaxError(f"expected string literal, got {token!r}",
                             line_number)
    body = match.group(1)
    return body.encode("utf-8").decode("unicode_escape").encode("latin-1")
