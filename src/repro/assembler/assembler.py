"""The two-pass assembler driver.

Pass 1 tokenises, expands pseudo-instructions, lays out sections and
collects the symbol table; pass 2 resolves expressions and encodes.  The
result is a :class:`~repro.assembler.program.Program` ready to be loaded
into simulated memory.

Supported directives: ``.text .data .section .globl .global .align
.balign .byte .half .short .word .long .dword .quad .float .double
.zero .space .ascii .asciz .string .equ .set``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.assembler.encoder import EncodeContext, EncodeError, encode
from repro.assembler.expr import ExprError, evaluate
from repro.assembler.lexer import (
    AsmSyntaxError,
    Statement,
    tokenize,
    unescape_string,
)
from repro.assembler.program import DEFAULT_TEXT_BASE, Program, Segment
from repro.assembler.pseudo import PseudoError, expand, is_pseudo
from repro.utils.bitops import align_up, is_power_of_two

_DATA_SIZES = {
    ".byte": 1, ".half": 2, ".short": 2, ".word": 4, ".long": 4,
    ".dword": 8, ".quad": 8,
}
_FLOAT_SIZES = {".float": 4, ".double": 8}


@dataclass
class _PendingInstruction:
    offset: int            # section-relative
    mnemonic: str
    operands: list[str]
    statement: Statement


@dataclass
class _PendingData:
    offset: int
    size: int
    expressions: list[str]
    statement: Statement
    kind: str = "int"       # "int", "float", or "bytes"
    raw: bytes = b""


@dataclass
class _Section:
    name: str
    cursor: int = 0
    instructions: list[_PendingInstruction] = field(default_factory=list)
    data_items: list[_PendingData] = field(default_factory=list)
    base: int = 0


class Assembler:
    """Assemble RISC-V source text into a loadable :class:`Program`."""

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE,
                 data_base: int | None = None):
        self._text_base = text_base
        self._data_base = data_base
        self._constants: dict[str, int] = {}
        self._symbols: dict[str, int] = {}
        self._globals: set[str] = set()
        self._section_of: dict[str, str] = {}

    # -- public API ---------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Run both passes over ``source`` and return the program image."""
        sections = self._pass_one(tokenize(source))
        self._layout(sections)
        return self._pass_two(sections)

    # -- pass 1: layout -----------------------------------------------------

    def _pass_one(self, statements: list[Statement]) -> list[_Section]:
        text = _Section("text")
        data = _Section("data")
        sections = {"text": text, "data": data}
        current = text
        pending_labels: list[tuple[str, _Section, Statement]] = []

        for statement in statements:
            if statement.label is not None:
                pending_labels.append((statement.label, current, statement))
                continue
            mnemonic = statement.mnemonic
            assert mnemonic is not None
            if mnemonic.startswith("."):
                current = self._directive_pass_one(
                    statement, current, sections, pending_labels)
                continue
            # A real statement: bind any pending labels to the current
            # cursor of the *current* section.
            self._bind_labels(pending_labels, current, statement)
            self._add_instruction(statement, current)

        # Labels at end-of-file bind to the section end.
        for name, section, stmt in pending_labels:
            self._define_label(name, section, section.cursor, stmt)
        pending_labels.clear()
        return [text, data]

    def _bind_labels(self, pending, section: _Section,
                     statement: Statement) -> None:
        for name, _original_section, stmt in pending:
            self._define_label(name, section, section.cursor, stmt)
        pending.clear()

    def _define_label(self, name: str, section: _Section, offset: int,
                      statement: Statement) -> None:
        if name in self._symbols or name in self._constants:
            raise AsmSyntaxError(f"duplicate symbol {name!r}",
                                 statement.line_number, statement.source)
        # Store section-relative for now; fixed up in _layout.
        self._symbols[name] = offset
        self._section_of[name] = section.name

    def _add_instruction(self, statement: Statement,
                         section: _Section) -> None:
        if section.name != "text":
            raise AsmSyntaxError("instructions outside .text",
                                 statement.line_number, statement.source)
        mnemonic = statement.mnemonic
        operands = statement.operands
        if is_pseudo(mnemonic):
            try:
                expansion = expand(mnemonic, operands, self._resolve_const)
            except PseudoError as exc:
                raise AsmSyntaxError(str(exc), statement.line_number,
                                     statement.source) from exc
        else:
            expansion = [(mnemonic, operands)]
        for real_mnemonic, real_operands in expansion:
            section.instructions.append(
                _PendingInstruction(section.cursor, real_mnemonic,
                                    list(real_operands), statement))
            section.cursor += 4

    def _directive_pass_one(self, statement: Statement, current: _Section,
                            sections: dict[str, _Section],
                            pending_labels) -> _Section:
        name = statement.mnemonic
        operands = statement.operands

        if name == ".text" or (name == ".section" and operands
                               and operands[0].lstrip(".") == "text"):
            return sections["text"]
        if name == ".data" or (name == ".section" and operands
                               and operands[0].lstrip(".") == "data"):
            return sections["data"]
        if name in (".globl", ".global"):
            self._globals.update(operands)
            return current
        if name in (".equ", ".set"):
            if len(operands) != 2:
                raise AsmSyntaxError(f"{name} expects name, value",
                                     statement.line_number, statement.source)
            self._constants[operands[0]] = self._resolve_const(operands[1])
            return current

        # Everything below emits bytes: bind labels first.
        self._bind_labels(pending_labels, current, statement)

        if name in (".align", ".balign", ".p2align"):
            amount = self._resolve_const(operands[0])
            alignment = amount if name == ".balign" else (1 << amount)
            if not is_power_of_two(alignment):
                raise AsmSyntaxError(f"bad alignment {alignment}",
                                     statement.line_number, statement.source)
            new_cursor = align_up(current.cursor, alignment)
            if new_cursor != current.cursor:
                pad = new_cursor - current.cursor
                current.data_items.append(_PendingData(
                    current.cursor, pad, [], statement, kind="bytes",
                    raw=bytes(pad)))
                current.cursor = new_cursor
            return current
        if name in _DATA_SIZES:
            size = _DATA_SIZES[name]
            current.data_items.append(_PendingData(
                current.cursor, size * len(operands), list(operands),
                statement, kind="int"))
            current.cursor += size * len(operands)
            return current
        if name in _FLOAT_SIZES:
            size = _FLOAT_SIZES[name]
            current.data_items.append(_PendingData(
                current.cursor, size * len(operands), list(operands),
                statement, kind="float"))
            current.cursor += size * len(operands)
            return current
        if name in (".zero", ".space"):
            count = self._resolve_const(operands[0])
            current.data_items.append(_PendingData(
                current.cursor, count, [], statement, kind="bytes",
                raw=bytes(count)))
            current.cursor += count
            return current
        if name in (".ascii", ".asciz", ".string"):
            blob = b"".join(
                unescape_string(operand, statement.line_number)
                for operand in operands)
            if name in (".asciz", ".string"):
                blob += b"\x00"
            current.data_items.append(_PendingData(
                current.cursor, len(blob), [], statement, kind="bytes",
                raw=blob))
            current.cursor += len(blob)
            return current
        raise AsmSyntaxError(f"unknown directive {name!r}",
                             statement.line_number, statement.source)

    # -- layout -------------------------------------------------------------

    def _layout(self, sections: list[_Section]) -> None:
        text, data = sections
        text.base = self._text_base
        if self._data_base is not None:
            data.base = self._data_base
        else:
            data.base = align_up(text.base + text.cursor, 0x1000)
        text_end = text.base + text.cursor
        data_end = data.base + data.cursor
        if text.cursor and data.cursor \
                and data.base < text_end and data_end > text.base:
            raise AsmSyntaxError(
                f"data [{data.base:#x}, {data_end:#x}) overlaps text "
                f"[{text.base:#x}, {text_end:#x})")
        bases = {"text": text.base, "data": data.base}
        for name in list(self._symbols):
            section_name = self._section_of.get(name, "text")
            self._symbols[name] += bases[section_name]

    # -- pass 2: encoding ---------------------------------------------------

    def _pass_two(self, sections: list[_Section]) -> Program:
        all_symbols = {**self._constants, **self._symbols}

        def resolve(expression: str) -> int:
            return evaluate(expression, all_symbols)

        segments = []
        for section in sections:
            if section.cursor == 0:
                continue
            blob = bytearray(section.cursor)
            for item in section.data_items:
                self._emit_data(item, blob, resolve)
            for pending in section.instructions:
                ctx = EncodeContext(pc=section.base + pending.offset,
                                    resolve=resolve)
                try:
                    word = encode(pending.mnemonic, pending.operands, ctx)
                except (EncodeError, ExprError) as exc:
                    raise AsmSyntaxError(
                        str(exc), pending.statement.line_number,
                        pending.statement.source) from exc
                blob[pending.offset:pending.offset + 4] = \
                    word.to_bytes(4, "little")
            segments.append(Segment(section.base, blob))

        entry = self._symbols.get("_start", self._text_base)
        return Program(segments=segments, symbols=dict(all_symbols),
                       entry=entry)

    def _emit_data(self, item: _PendingData, blob: bytearray,
                   resolve) -> None:
        if item.kind == "bytes":
            blob[item.offset:item.offset + len(item.raw)] = item.raw
            return
        size = item.size // max(1, len(item.expressions))
        cursor = item.offset
        for expression in item.expressions:
            if item.kind == "float":
                value = float(expression)
                packed = struct.pack("<f" if size == 4 else "<d", value)
            else:
                try:
                    value = resolve(expression)
                except ExprError as exc:
                    raise AsmSyntaxError(
                        str(exc), item.statement.line_number,
                        item.statement.source) from exc
                packed = (value & ((1 << (8 * size)) - 1)).to_bytes(
                    size, "little")
            blob[cursor:cursor + size] = packed
            cursor += size

    # -- helpers ------------------------------------------------------------

    def _resolve_const(self, expression: str) -> int:
        return evaluate(expression, self._constants)


def assemble(source: str, text_base: int = DEFAULT_TEXT_BASE,
             data_base: int | None = None) -> Program:
    """Convenience wrapper: assemble ``source`` with default layout."""
    return Assembler(text_base=text_base, data_base=data_base) \
        .assemble(source)
