"""A small expression evaluator for assembler operands.

Supports integer literals (decimal, ``0x``, ``0b``, ``0o``, character
constants), symbol references, unary ``+``/``-``/``~``, and binary
``+ - * / % << >> & | ^`` with conventional precedence, plus parentheses.
Symbols are resolved through a caller-provided mapping.
"""

from __future__ import annotations

import re
from collections.abc import Mapping


class ExprError(Exception):
    """Raised for malformed or unresolvable expressions."""


_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|0[oO][0-7]+|\d+)
      | (?P<char>'(?:[^'\\]|\\.)')
      | (?P<sym>[A-Za-z_.$][\w.$]*)
      | (?P<op><<|>>|[-+*/%&|^~()])
    )""", re.VERBOSE)

_BINARY_PRECEDENCE = {
    "|": 1, "^": 2, "&": 3, "<<": 4, ">>": 4,
    "+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}


def _tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ExprError(f"bad token at {remainder!r} in {text!r}")
        tokens.append(match.group().strip())
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], symbols: Mapping[str, int]):
        self._tokens = tokens
        self._symbols = symbols
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise ExprError("unexpected end of expression")
        self._index += 1
        return token

    def parse(self) -> int:
        value = self._parse_binary(0)
        if self._peek() is not None:
            raise ExprError(f"trailing tokens: {self._tokens[self._index:]}")
        return value

    def _parse_binary(self, min_precedence: int) -> int:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token not in _BINARY_PRECEDENCE:
                return left
            precedence = _BINARY_PRECEDENCE[token]
            if precedence < min_precedence:
                return left
            self._next()
            right = self._parse_binary(precedence + 1)
            left = self._apply(token, left, right)

    def _apply(self, op: str, left: int, right: int) -> int:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExprError("division by zero")
            return int(left / right) if (left < 0) != (right < 0) \
                else left // right
        if op == "%":
            if right == 0:
                raise ExprError("modulo by zero")
            return left % right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        raise ExprError(f"unknown operator {op!r}")

    def _parse_unary(self) -> int:
        token = self._next()
        if token == "-":
            return -self._parse_unary()
        if token == "+":
            return self._parse_unary()
        if token == "~":
            return ~self._parse_unary()
        if token == "(":
            value = self._parse_binary(0)
            closing = self._next()
            if closing != ")":
                raise ExprError(f"expected ')', got {closing!r}")
            return value
        if token.startswith("'"):
            body = token[1:-1].encode().decode("unicode_escape")
            if len(body) != 1:
                raise ExprError(f"bad character constant {token!r}")
            return ord(body)
        if re.fullmatch(r"0[xX][0-9a-fA-F]+|0[bB][01]+|0[oO][0-7]+|\d+",
                        token):
            return int(token, 0)
        if token in self._symbols:
            return self._symbols[token]
        raise ExprError(f"undefined symbol {token!r}")


def evaluate(text: str, symbols: Mapping[str, int] | None = None) -> int:
    """Evaluate an assembler expression to an integer."""
    tokens = _tokenize(text)
    if not tokens:
        raise ExprError("empty expression")
    return _Parser(tokens, symbols or {}).parse()
