"""Pseudo-instruction expansion.

``expand(mnemonic, operands, resolve_const)`` rewrites one assembler
statement into a list of concrete ``(mnemonic, operands)`` pairs.  The
expansion length must be known in pass 1, so ``li`` evaluates its constant
eagerly via ``resolve_const`` (which only sees ``.equ`` constants, not
labels); address materialisation uses ``la``, whose expansion length is
fixed at two instructions.
"""

from __future__ import annotations

from typing import Callable

from repro.utils.bitops import sign_extend

Expansion = list[tuple[str, list[str]]]


class PseudoError(Exception):
    """Raised when a pseudo-instruction cannot be expanded."""


def li_sequence(rd: str, value: int) -> Expansion:
    """Materialise a 64-bit constant using lui/addiw/slli/addi.

    The returned sequence is minimal for 12-bit and 32-bit constants and at
    most eight instructions for arbitrary 64-bit values.
    """
    value = sign_extend(value & 0xFFFF_FFFF_FFFF_FFFF, 64)
    if -2048 <= value < 2048:
        return [("addi", [rd, "zero", str(value)])]
    if -(1 << 31) <= value < (1 << 31):
        hi = (value + 0x800) >> 12
        lo = value - (hi << 12)
        sequence: Expansion = [("lui", [rd, str(hi & 0xFFFFF)])]
        if lo:
            sequence.append(("addiw", [rd, rd, str(lo)]))
        return sequence
    lo12 = sign_extend(value & 0xFFF, 12)
    rest = (value - lo12) >> 12
    sequence = li_sequence(rd, rest)
    sequence.append(("slli", [rd, rd, "12"]))
    if lo12:
        sequence.append(("addi", [rd, rd, str(lo12)]))
    return sequence


def _one(mnemonic: str, *operands: str) -> Expansion:
    return [(mnemonic, list(operands))]


_BRANCH_ZERO = {
    "beqz": ("beq", False), "bnez": ("bne", False),
    "bgez": ("bge", False), "bltz": ("blt", False),
    "blez": ("bge", True), "bgtz": ("blt", True),
}

_BRANCH_SWAP = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}

_FP_MOVES = {
    "fmv.d": "fsgnj.d", "fabs.d": "fsgnjx.d", "fneg.d": "fsgnjn.d",
    "fmv.s": "fsgnj.s", "fabs.s": "fsgnjx.s", "fneg.s": "fsgnjn.s",
}

PSEUDO_MNEMONICS = frozenset(
    {"li", "la", "mv", "not", "neg", "negw", "sext.w", "seqz", "snez",
     "sltz", "sgtz", "j", "jr", "ret", "call", "tail", "csrr", "csrw",
     "csrs", "csrc", "csrwi", "csrsi", "csrci", "rdcycle", "rdinstret",
     "rdtime"}
    | set(_BRANCH_ZERO) | set(_BRANCH_SWAP) | set(_FP_MOVES))


def is_pseudo(mnemonic: str) -> bool:
    """True when ``mnemonic`` is expanded rather than directly encoded."""
    return mnemonic in PSEUDO_MNEMONICS


def expand(mnemonic: str, operands: list[str],
           resolve_const: Callable[[str], int]) -> Expansion:
    """Expand one pseudo-instruction; raises :class:`PseudoError`."""

    def need(count: int) -> None:
        if len(operands) != count:
            raise PseudoError(
                f"{mnemonic} expects {count} operands, got {len(operands)}")

    if mnemonic == "li":
        need(2)
        try:
            value = resolve_const(operands[1])
        except Exception as exc:
            raise PseudoError(
                f"li operand must be a constant expression "
                f"(use 'la' for addresses): {exc}") from exc
        return li_sequence(operands[0], value)
    if mnemonic == "la":
        need(2)
        return [("la.hi", [operands[0], operands[1]]),
                ("la.lo", [operands[0], operands[1]])]
    if mnemonic == "mv":
        need(2)
        return _one("addi", operands[0], operands[1], "0")
    if mnemonic == "not":
        need(2)
        return _one("xori", operands[0], operands[1], "-1")
    if mnemonic == "neg":
        need(2)
        return _one("sub", operands[0], "zero", operands[1])
    if mnemonic == "negw":
        need(2)
        return _one("subw", operands[0], "zero", operands[1])
    if mnemonic == "sext.w":
        need(2)
        return _one("addiw", operands[0], operands[1], "0")
    if mnemonic == "seqz":
        need(2)
        return _one("sltiu", operands[0], operands[1], "1")
    if mnemonic == "snez":
        need(2)
        return _one("sltu", operands[0], "zero", operands[1])
    if mnemonic == "sltz":
        need(2)
        return _one("slt", operands[0], operands[1], "zero")
    if mnemonic == "sgtz":
        need(2)
        return _one("slt", operands[0], "zero", operands[1])
    if mnemonic in _BRANCH_ZERO:
        need(2)
        real, swapped = _BRANCH_ZERO[mnemonic]
        if swapped:
            return _one(real, "zero", operands[0], operands[1])
        return _one(real, operands[0], "zero", operands[1])
    if mnemonic in _BRANCH_SWAP:
        need(3)
        return _one(_BRANCH_SWAP[mnemonic], operands[1], operands[0],
                    operands[2])
    if mnemonic == "j":
        need(1)
        return _one("jal", "zero", operands[0])
    if mnemonic == "jr":
        need(1)
        return _one("jalr", "zero", f"0({operands[0]})")
    if mnemonic == "ret":
        need(0)
        return _one("jalr", "zero", "0(ra)")
    if mnemonic == "call":
        need(1)
        return _one("jal", "ra", operands[0])
    if mnemonic == "tail":
        need(1)
        return _one("jal", "zero", operands[0])
    if mnemonic in _FP_MOVES:
        need(2)
        return _one(_FP_MOVES[mnemonic], operands[0], operands[1],
                    operands[1])
    if mnemonic == "csrr":
        need(2)
        return _one("csrrs", operands[0], operands[1], "zero")
    if mnemonic == "csrw":
        need(2)
        return _one("csrrw", "zero", operands[0], operands[1])
    if mnemonic == "csrs":
        need(2)
        return _one("csrrs", "zero", operands[0], operands[1])
    if mnemonic == "csrc":
        need(2)
        return _one("csrrc", "zero", operands[0], operands[1])
    if mnemonic == "csrwi":
        need(2)
        return _one("csrrwi", "zero", operands[0], operands[1])
    if mnemonic == "csrsi":
        need(2)
        return _one("csrrsi", "zero", operands[0], operands[1])
    if mnemonic == "csrci":
        need(2)
        return _one("csrrci", "zero", operands[0], operands[1])
    if mnemonic == "rdcycle":
        need(1)
        return _one("csrrs", operands[0], "cycle", "zero")
    if mnemonic == "rdinstret":
        need(1)
        return _one("csrrs", operands[0], "instret", "zero")
    if mnemonic == "rdtime":
        need(1)
        return _one("csrrs", operands[0], "time", "zero")
    raise PseudoError(f"unknown pseudo-instruction {mnemonic!r}")
