"""The output artefact of the assembler: a loadable program image.

A :class:`Program` is a set of byte segments at absolute addresses plus a
symbol table and entry point — the moral equivalent of a statically linked
bare-metal ELF, without the container format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_TEXT_BASE = 0x8000_0000
DEFAULT_DATA_ALIGN = 0x1000


@dataclass
class Segment:
    """A contiguous run of initialised bytes at an absolute address."""

    base: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + len(self.data)


@dataclass
class Program:
    """A fully assembled, loadable program."""

    segments: list[Segment] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = DEFAULT_TEXT_BASE

    def symbol(self, name: str) -> int:
        """Address of a symbol; raises ``KeyError`` if undefined."""
        return self.symbols[name]

    def load_into(self, memory) -> None:
        """Copy every segment into a memory object with ``store_bytes``."""
        for segment in self.segments:
            memory.store_bytes(segment.base, bytes(segment.data))

    def total_bytes(self) -> int:
        """Total initialised bytes across all segments."""
        return sum(len(segment.data) for segment in self.segments)

    def bounds(self) -> tuple[int, int]:
        """(lowest, highest) address covered by any segment."""
        if not self.segments:
            return (0, 0)
        return (min(s.base for s in self.segments),
                max(s.end for s in self.segments))
